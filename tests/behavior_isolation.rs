//! §5.1 behaviour-isolation spot checks: groups of modules run concurrently
//! on one pipeline and every module behaves exactly as it would alone.

use menshen::prelude::*;
use menshen_programs::{
    calc::Calc, firewall::Firewall, load_balancing::LoadBalancing, netcache::NetCache,
    netchain::NetChain, source_routing::SourceRouting,
};

/// Loads the given programs, interleaves their workloads and checks every
/// verdict against the owning program's oracle.
fn run_isolation_check_on(
    params: PipelineParams,
    tenants: Vec<(u16, Box<dyn EvaluatedProgram>)>,
    rounds: usize,
) {
    let mut pipeline = MenshenPipeline::new(params);
    for (module_id, program) in &tenants {
        program.configure_system(pipeline.system_mut());
        pipeline
            .load_module(&program.build(*module_id).expect("tenant compiles"))
            .expect("tenant loads");
    }
    let workloads: Vec<Vec<_>> = tenants
        .iter()
        .map(|(module_id, program)| program.packets(*module_id, rounds, 0xFEED))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for round in 0..rounds {
        for (index, (_, program)) in tenants.iter().enumerate() {
            let packet = workloads[index][round].clone();
            let verdict = pipeline.process(packet.clone());
            assert!(
                program.check_output(&packet, &verdict),
                "behaviour isolation violated for {} on round {round}: {verdict:?}",
                program.name()
            );
        }
    }
}

/// Isolation check on the prototype-sized (Table 5) pipeline.
fn run_isolation_check(tenants: Vec<(u16, Box<dyn EvaluatedProgram>)>, rounds: usize) {
    run_isolation_check_on(TABLE5, tenants, rounds)
}

#[test]
fn calc_firewall_netcache_run_concurrently() {
    // The first trio of §5.1.
    run_isolation_check(
        vec![
            (1, Box::new(Calc) as Box<dyn EvaluatedProgram>),
            (2, Box::new(Firewall)),
            (3, Box::new(NetCache::new())),
        ],
        60,
    );
}

#[test]
fn load_balancing_source_routing_netchain_run_concurrently() {
    // The second trio of §5.1.
    run_isolation_check(
        vec![
            (4, Box::new(LoadBalancing) as Box<dyn EvaluatedProgram>),
            (5, Box::new(SourceRouting)),
            (6, Box::new(NetChain::new())),
        ],
        60,
    );
}

#[test]
fn concurrent_output_identical_to_solo_output() {
    // Stronger check: byte-for-byte identical outputs in the solo and shared
    // configurations for a stateless tenant (Firewall) even while two other
    // tenants churn state around it.
    let firewall = Firewall;
    let workload = firewall.packets(2, 80, 0xBEEF);

    // Solo run.
    let mut solo = MenshenPipeline::new(TABLE5);
    solo.load_module(&firewall.build(2).unwrap()).unwrap();
    let solo_outputs: Vec<_> = workload
        .iter()
        .map(|p| match solo.process(p.clone()) {
            Verdict::Forwarded { packet, ports, .. } => Some((packet.into_bytes(), ports)),
            Verdict::Dropped { .. } => None,
        })
        .collect();

    // Shared run with two noisy neighbours interleaved.
    let mut shared = MenshenPipeline::new(TABLE5);
    shared.load_module(&firewall.build(2).unwrap()).unwrap();
    let calc = Calc;
    let chain = NetChain::new();
    shared.load_module(&calc.build(7).unwrap()).unwrap();
    shared.load_module(&chain.build(8).unwrap()).unwrap();
    let calc_packets = calc.packets(7, workload.len(), 3);
    let chain_packets = chain.packets(8, workload.len(), 4);

    for (index, packet) in workload.iter().enumerate() {
        shared.process(calc_packets[index].clone());
        let shared_output = match shared.process(packet.clone()) {
            Verdict::Forwarded { packet, ports, .. } => Some((packet.into_bytes(), ports)),
            Verdict::Dropped { .. } => None,
        };
        shared.process(chain_packets[index].clone());
        assert_eq!(
            shared_output, solo_outputs[index],
            "packet {index}: shared-pipeline output differs from solo output"
        );
    }
}

#[test]
fn all_eight_programs_coexist() {
    // Every Table 3 module loaded at once. Together they need more stage-0
    // match entries than the prototype's 16-deep CAM provides (the packing
    // limit of §5.2), so this test provisions a deeper table — the paper's
    // point that the module count is purely a function of how much hardware
    // one pays for.
    let programs = all_programs();
    let tenants: Vec<(u16, Box<dyn EvaluatedProgram>)> = programs
        .into_iter()
        .enumerate()
        .map(|(index, program)| ((index + 1) as u16, program))
        .collect();
    run_isolation_check_on(TABLE5.with_table_depth(64), tenants, 25);
}
