//! Resource-isolation and module-packing integration tests (§2.1 requirement
//! 2, §5.2 "how many modules can be packed?").

use menshen::prelude::*;
use menshen_compiler::FieldRef;
use menshen_core::CoreError;
use menshen_programs::netcache::NetCache;
use menshen_rmt::action::VliwAction;
use menshen_rmt::match_table::LookupKey;

/// A module with `rules` match entries in stage 0 and `stateful` words.
fn synthetic_module(module_id: u16, rules: usize, stateful: usize) -> ModuleConfig {
    let mut config = ModuleConfig::empty(ModuleId::new(module_id), "synthetic", 5);
    for i in 0..rules {
        config.stages[0].rules.push(MatchRule {
            key: LookupKey::from_slots(
                [(0, 6), (0, 6), (i as u64 + 1, 4), (0, 4), (0, 2), (0, 2)],
                false,
            ),
            action: VliwAction::nop(),
        });
    }
    config.stages[0].stateful_words = stateful;
    config
}

#[test]
fn packing_matches_section_5_2() {
    // One match entry per stage per module → at most 16 modules (CAM depth).
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let loaded = (1..=40u16)
        .filter(|&id| pipeline.load_module(&synthetic_module(id, 1, 0)).is_ok())
        .count();
    assert_eq!(loaded, 16);

    // No match entries → the 32 overlay slots are the limit.
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let loaded = (1..=40u16)
        .filter(|&id| pipeline.load_module(&synthetic_module(id, 0, 0)).is_ok())
        .count();
    assert_eq!(loaded, 32);

    // More hardware (deeper tables) packs more modules — the §5.2 point that
    // the limit is purely a provisioning choice.
    let bigger = TABLE5.with_table_depth(64).with_overlay_depth(64);
    let mut pipeline = MenshenPipeline::new(bigger);
    let loaded = (1..=100u16)
        .filter(|&id| pipeline.load_module(&synthetic_module(id, 1, 0)).is_ok())
        .count();
    assert_eq!(loaded, 64);
}

#[test]
fn admission_control_enforces_the_sharing_policy() {
    let mut control = ControlPlane::new(TABLE5, SharingPolicy::EqualShare { max_modules: 8 });
    // Each module may use 16/8 = 2 entries per stage under equal sharing.
    assert!(control.load_module(&synthetic_module(1, 2, 0)).is_ok());
    let err = control.load_module(&synthetic_module(2, 3, 0)).unwrap_err();
    assert!(matches!(err, CoreError::AllocationExceeded { .. }));
}

#[test]
fn stateful_memory_cannot_be_reached_across_modules() {
    // Two NetCache instances hammer the *same* module-local addresses; their
    // counters must stay independent because the segment table maps them to
    // disjoint physical ranges.
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let cache_a = NetCache::new();
    let cache_b = NetCache::new();
    pipeline.load_module(&cache_a.build(1).unwrap()).unwrap();
    pipeline.load_module(&cache_b.build(2).unwrap()).unwrap();

    for packet in cache_a.packets(1, 40, 1) {
        pipeline.process(packet);
    }
    // Module 2 has not sent anything: all of its counters must still be zero.
    for slot in 0..4 {
        assert_eq!(pipeline.read_stateful(ModuleId::new(2), 0, slot), Some(0));
    }
    // Module 1's counters did move.
    let total: u64 = (0..4)
        .map(|slot| pipeline.read_stateful(ModuleId::new(1), 0, slot).unwrap())
        .sum();
    assert!(total > 0);
}

#[test]
fn over_quota_runtime_insertions_are_refused() {
    let mut control = ControlPlane::new(TABLE5, SharingPolicy::FirstComeFirstServed);
    // Fill the whole stage-0 CAM with one module…
    control.load_module(&synthetic_module(1, 16, 0)).unwrap();
    // …then a second module cannot even load with a single entry…
    assert!(matches!(
        control.load_module(&synthetic_module(2, 1, 0)),
        Err(CoreError::InsufficientResource { .. })
    ));
    // …and runtime insertion for module 1 itself fails cleanly when full.
    let compiled = menshen_compiler::compile_source(
        menshen_programs::qos::SOURCE,
        &menshen_compiler::CompileOptions::new(1),
    )
    .unwrap();
    let dst_port = FieldRef::new("udp", "dst_port");
    let rule = compiled
        .rule("classify", &[(&dst_port, 1234)], "low_priority")
        .unwrap();
    assert!(control.insert_entry(ModuleId::new(1), 0, &rule).is_err());
}

#[test]
fn stateful_exhaustion_is_rejected_at_load_time() {
    let mut pipeline = MenshenPipeline::new(TABLE5);
    // The prototype stage has 4096 stateful words; a second module asking for
    // the remainder plus one is refused, and the refusal leaves no residue.
    pipeline.load_module(&synthetic_module(1, 0, 4000)).unwrap();
    let err = pipeline
        .load_module(&synthetic_module(2, 0, 200))
        .unwrap_err();
    assert!(matches!(err, CoreError::InsufficientResource { .. }));
    assert_eq!(pipeline.loaded_modules(), vec![ModuleId::new(1)]);
    // A right-sized module still fits afterwards.
    assert!(pipeline.load_module(&synthetic_module(3, 0, 96)).is_ok());
}
