//! End-to-end integration: DSL source → compiler → control plane → pipeline →
//! packets, for every evaluated program, plus equivalence between the
//! baseline RMT pipeline and a single-module Menshen pipeline.

use menshen::prelude::*;
use menshen_compiler::FieldRef;
use menshen_programs::figure8_program_sources;
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::match_table::LookupKey;
use menshen_rmt::phv::ContainerRef as C;
use menshen_rmt::stage::StageConfig;
use menshen_rmt::{RmtPipeline, RmtProgram};

#[test]
fn every_figure8_program_compiles_loads_and_forwards() {
    for (index, (name, source)) in figure8_program_sources().into_iter().enumerate() {
        let module_id = (index + 1) as u16;
        let compiled = compile_source(
            source,
            &CompileOptions::new(module_id).with_initial_entries(4),
        )
        .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let mut control = ControlPlane::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        control
            .load_module(&compiled.config)
            .unwrap_or_else(|e| panic!("{name} failed to load: {e}"));
        // Generic traffic flows through (forwarded or dropped, never an error).
        let packet = PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1111,
            2222,
            &[0u8; 32],
        );
        let _ = control.send(packet);
        assert_eq!(
            control.pipeline().loaded_modules(),
            vec![ModuleId::new(module_id)]
        );
    }
}

#[test]
fn menshen_with_one_module_matches_baseline_rmt() {
    // The same forwarding program expressed twice: once installed on the
    // baseline RMT pipeline, once compiled and loaded as a Menshen module.
    // Outputs must be identical packet for packet — isolation costs nothing
    // in behaviour.
    let parser = ParserEntry::new(vec![
        ParseAction::new(34, C::h4(1)).unwrap(), // dst IP
        ParseAction::new(40, C::h2(0)).unwrap(), // UDP dst port
    ])
    .unwrap();
    let key_extract = KeyExtractEntry {
        slots_4b: [1, 0],
        ..Default::default()
    };
    let key_mask = KeyMask::for_slots([false, false, true, false, false, false], false);
    let key = LookupKey::from_slots(
        [(0, 6), (0, 6), (0x0a00_0002, 4), (0, 4), (0, 2), (0, 2)],
        false,
    );
    let action = VliwAction::nop()
        .with(C::h2(0), AluInstruction::set(4242))
        .with_metadata(AluInstruction::port(9));

    // Baseline RMT.
    let mut rmt = RmtPipeline::new(TABLE5);
    rmt.load_program(RmtProgram {
        parser: parser.clone(),
        deparser: ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap(),
        stages: vec![StageConfig {
            key_extract,
            key_mask,
        }],
    })
    .unwrap();
    rmt.stage_mut(0)
        .unwrap()
        .install_rule(0, key, 0, action.clone())
        .unwrap();

    // Menshen, via the DSL.
    let source = r#"
module rewrite {
    parser { extract ethernet; extract vlan; extract ipv4; extract udp; }
    table route { key = { ipv4.dst_addr; } actions = { rewrite_and_route; } }
    action rewrite_and_route() { udp.dst_port = 4242; set_port(9); }
    apply { route.apply(); }
}
"#;
    let compiled = compile_source(source, &CompileOptions::new(5)).unwrap();
    let dst = FieldRef::new("ipv4", "dst_addr");
    let mut config = compiled.config.clone();
    config.stages[0].rules.push(
        compiled
            .rule("route", &[(&dst, 0x0a00_0002)], "rewrite_and_route")
            .unwrap(),
    );
    let mut menshen = MenshenPipeline::new(TABLE5);
    menshen.load_module(&config).unwrap();

    for last_octet in [2u8, 3, 7, 2, 2, 100] {
        let packet = PacketBuilder::new().with_vlan(5).build_udp(
            [192, 168, 0, 1],
            [10, 0, 0, last_octet],
            1000,
            80,
            &[0xaa; 16],
        );
        let rmt_out = rmt.process(packet.clone()).unwrap();
        let menshen_out = menshen.process(packet);
        match menshen_out {
            Verdict::Forwarded {
                packet: m_pkt, phv, ..
            } => {
                let r_pkt = rmt_out.packet.expect("baseline forwarded too");
                assert_eq!(m_pkt.bytes(), r_pkt.bytes(), "packet bytes differ");
                assert_eq!(phv.metadata.dst_port, rmt_out.phv.metadata.dst_port);
            }
            Verdict::Dropped { .. } => panic!("Menshen dropped a packet the baseline forwarded"),
        }
    }
}

#[test]
fn performance_isolation_counters_track_each_module_separately() {
    // Each module's counters reflect only its own traffic (the accounting the
    // paper's performance-isolation argument relies on).
    let mut pipeline = MenshenPipeline::new(TABLE5);
    for module_id in 1..=3u16 {
        pipeline
            .load_module(&ModuleConfig::empty(ModuleId::new(module_id), "fwd", 5))
            .unwrap();
    }
    let counts = [30usize, 20, 10];
    for (index, &count) in counts.iter().enumerate() {
        let module_id = (index + 1) as u16;
        for _ in 0..count {
            let packet = PacketBuilder::new().with_vlan(module_id).build_udp(
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                1,
                2,
                &[0u8; 100],
            );
            pipeline.process(packet);
        }
    }
    for (index, &count) in counts.iter().enumerate() {
        let module_id = (index + 1) as u16;
        let counters = pipeline.module_counters(ModuleId::new(module_id)).unwrap();
        assert_eq!(counters.packets_in, count as u64);
        assert_eq!(counters.packets_out, count as u64);
        assert_eq!(counters.packets_dropped, 0);
    }
}

#[test]
fn malformed_traffic_never_panics_the_pipeline() {
    // Failure injection: truncated frames, garbage bytes, untagged packets.
    let mut pipeline = MenshenPipeline::new(TABLE5);
    pipeline
        .load_module(&ModuleConfig::empty(ModuleId::new(1), "fwd", 5))
        .unwrap();
    let inputs = vec![
        Packet::from_bytes(vec![]),
        Packet::from_bytes(vec![0xff; 7]),
        Packet::from_bytes(vec![0x00; 13]),
        Packet::from_bytes((0u16..200).map(|b| b as u8).collect()),
        {
            // VLAN tag claims IPv4 but the IP header is garbage.
            let mut bytes = PacketBuilder::new()
                .with_vlan(1)
                .build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 8])
                .into_bytes();
            bytes[18] = 0x00; // destroy version/IHL
            Packet::from_bytes(bytes)
        },
    ];
    for packet in inputs {
        // Any verdict is fine; the pipeline just must not panic.
        let _ = pipeline.process(packet);
    }
}
