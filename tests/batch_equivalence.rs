//! Batch/single equivalence: for every evaluated program of Table 3,
//! `MenshenPipeline::process_batch` must yield verdict-for-verdict identical
//! results to sequential `process` — same forwarded bytes, ports, final PHV
//! and module attribution; same drop reasons; same per-module counters and
//! stateful memory afterwards — including across an interleaved
//! reconfiguration between bursts.

use menshen::prelude::*;
use menshen_programs::all_programs;
use menshen_testbed::TrafficGenerator;

/// Structural equality of verdicts (`Verdict` itself is deliberately not
/// `PartialEq`: packets compare by bytes).
fn assert_verdicts_match(context: &str, sequential: &[Verdict], batched: &[Verdict]) {
    assert_eq!(
        sequential.len(),
        batched.len(),
        "{context}: length mismatch"
    );
    for (i, (a, b)) in sequential.iter().zip(batched).enumerate() {
        let equivalent = match (a, b) {
            (
                Verdict::Forwarded {
                    packet: pa,
                    ports: na,
                    phv: va,
                    module_id: ma,
                },
                Verdict::Forwarded {
                    packet: pb,
                    ports: nb,
                    phv: vb,
                    module_id: mb,
                },
            ) => pa.bytes() == pb.bytes() && na == nb && va == vb && ma == mb,
            (
                Verdict::Dropped {
                    reason: ra,
                    module_id: ma,
                },
                Verdict::Dropped {
                    reason: rb,
                    module_id: mb,
                },
            ) => ra == rb && ma == mb,
            _ => false,
        };
        assert!(
            equivalent,
            "{context}: verdict {i} diverged:\n  sequential: {a:?}\n  batched:    {b:?}"
        );
    }
}

/// Two pipelines loaded with the same set of modules.
fn twin_pipelines(
    programs: &[Box<dyn menshen_programs::EvaluatedProgram>],
) -> (MenshenPipeline, MenshenPipeline) {
    let mut sequential = MenshenPipeline::new(TABLE5.with_table_depth(64));
    let mut batched = sequential.clone();
    for (index, program) in programs.iter().enumerate() {
        let module_id = (index + 1) as u16;
        let config = program.build(module_id).expect("program builds");
        for pipeline in [&mut sequential, &mut batched] {
            program.configure_system(pipeline.system_mut());
            pipeline.load_module(&config).expect("program loads");
        }
    }
    (sequential, batched)
}

fn run_both(
    sequential: &mut MenshenPipeline,
    batched: &mut MenshenPipeline,
    packets: Vec<menshen_packet::Packet>,
    context: &str,
) {
    let sequential_verdicts: Vec<Verdict> = packets
        .iter()
        .map(|p| sequential.process(p.clone()))
        .collect();
    let batched_verdicts: Vec<Verdict> = packets
        .chunks(BURST_SIZE)
        .flat_map(|burst| batched.process_batch(burst.to_vec()))
        .collect();
    assert_verdicts_match(context, &sequential_verdicts, &batched_verdicts);
}

#[test]
fn every_program_is_batch_equivalent_alone() {
    for (index, program) in all_programs().into_iter().enumerate() {
        let module_id = (index + 1) as u16;
        let config = program.build(module_id).expect("program builds");
        let mut sequential = MenshenPipeline::new(TABLE5);
        program.configure_system(sequential.system_mut());
        sequential.load_module(&config).expect("program loads");
        let mut batched = MenshenPipeline::new(TABLE5);
        program.configure_system(batched.system_mut());
        batched.load_module(&config).expect("program loads");

        let packets = program.packets(module_id, 120, 0xbeef ^ u64::from(module_id));
        run_both(&mut sequential, &mut batched, packets, program.name());

        assert_eq!(
            sequential.module_counters(ModuleId::new(module_id)),
            batched.module_counters(ModuleId::new(module_id)),
            "{}: counters diverged",
            program.name()
        );
        // Per-module stateful memory ended up identical too.
        for stage in 0..TABLE5.num_stages {
            for word in 0..8u32 {
                assert_eq!(
                    sequential.read_stateful(ModuleId::new(module_id), stage, word),
                    batched.read_stateful(ModuleId::new(module_id), stage, word),
                    "{}: stateful word {word} in stage {stage} diverged",
                    program.name()
                );
            }
        }
    }
}

#[test]
fn all_programs_together_are_batch_equivalent() {
    let programs = all_programs();
    let (mut sequential, mut batched) = twin_pipelines(&programs);

    // An interleaved multi-tenant workload, shuffled across modules.
    let mut workload = Vec::new();
    for (index, program) in programs.iter().enumerate() {
        let module_id = (index + 1) as u16;
        for (i, packet) in program
            .packets(module_id, 30, 0x1234)
            .into_iter()
            .enumerate()
        {
            workload.insert((i * (index + 1)) % (workload.len() + 1), packet);
        }
    }
    run_both(
        &mut sequential,
        &mut batched,
        workload,
        "eight tenants mixed",
    );

    for index in 0..programs.len() {
        let module_id = ModuleId::new((index + 1) as u16);
        assert_eq!(
            sequential.module_counters(module_id),
            batched.module_counters(module_id),
            "module {} counters diverged",
            (index + 1)
        );
    }
}

#[test]
fn equivalence_holds_across_interleaved_reconfiguration() {
    let programs = all_programs();
    let (mut sequential, mut batched) = twin_pipelines(&programs);
    let mut generator = TrafficGenerator::new(42);

    let mixed = |generator: &mut TrafficGenerator| {
        let mut burst = Vec::new();
        for module in 1..=8u16 {
            burst.extend(generator.burst(module, 128, 8));
        }
        burst
    };

    // Burst 1 with the original configuration.
    run_both(
        &mut sequential,
        &mut batched,
        mixed(&mut generator),
        "before reconfig",
    );

    // Reconfigure module 3 (rebuild it under the same ID) on both pipelines,
    // then keep processing: the batch path must observe the new overlay
    // configuration on its next burst.
    let updated = programs[2].build(3).expect("program rebuilds");
    sequential
        .update_module(&updated)
        .expect("sequential update");
    batched.update_module(&updated).expect("batched update");
    run_both(
        &mut sequential,
        &mut batched,
        mixed(&mut generator),
        "after update",
    );

    // Mark module 5 as being reconfigured: both paths must drop exactly its
    // packets while forwarding everyone else's.
    sequential.begin_reconfiguration(ModuleId::new(5)).unwrap();
    batched.begin_reconfiguration(ModuleId::new(5)).unwrap();
    run_both(
        &mut sequential,
        &mut batched,
        mixed(&mut generator),
        "during reconfig",
    );
    sequential.end_reconfiguration(ModuleId::new(5)).unwrap();
    batched.end_reconfiguration(ModuleId::new(5)).unwrap();
    run_both(
        &mut sequential,
        &mut batched,
        mixed(&mut generator),
        "after reconfig",
    );
}
