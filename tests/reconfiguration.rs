//! Disruption-free reconfiguration and secure-reconfiguration integration
//! tests (§2.1 requirements 5 and 6, §3.1 secure reconfiguration, Figure 10).

use menshen::prelude::*;
use menshen_core::reconfig::{ReconfigCommand, ResourceKind, WritePayload};
use menshen_core::SegmentEntry;
use menshen_programs::{calc::Calc, firewall::Firewall, qos::Qos};

#[test]
fn updating_one_module_never_disturbs_another() {
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let firewall = Firewall;
    let qos = Qos;
    pipeline.load_module(&firewall.build(1).unwrap()).unwrap();
    pipeline.load_module(&qos.build(2).unwrap()).unwrap();

    let qos_workload = qos.packets(2, 40, 5);
    // Repeatedly update module 1 while module 2's traffic flows; module 2
    // must pass its oracle on every single packet.
    for (round, packet) in qos_workload.iter().enumerate() {
        if round % 5 == 0 {
            pipeline.update_module(&firewall.build(1).unwrap()).unwrap();
        }
        let verdict = pipeline.process(packet.clone());
        assert!(
            qos.check_output(packet, &verdict),
            "QoS disturbed while firewall was being updated (round {round})"
        );
    }
    // And module 1 still works after all those updates.
    for packet in firewall.packets(1, 20, 9) {
        let verdict = pipeline.process(packet.clone());
        assert!(firewall.check_output(&packet, &verdict));
    }
}

#[test]
fn packets_of_a_module_under_reconfiguration_are_dropped_not_misprocessed() {
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let calc = Calc;
    pipeline.load_module(&calc.build(1).unwrap()).unwrap();
    pipeline.begin_reconfiguration(ModuleId::new(1)).unwrap();
    for packet in calc.packets(1, 10, 1) {
        assert!(matches!(
            pipeline.process(packet),
            Verdict::Dropped {
                reason: DropReason::BeingReconfigured,
                ..
            }
        ));
    }
    pipeline.end_reconfiguration(ModuleId::new(1)).unwrap();
    for packet in calc.packets(1, 10, 2) {
        let verdict = pipeline.process(packet.clone());
        assert!(calc.check_output(&packet, &verdict));
    }
}

#[test]
fn data_path_cannot_reconfigure_the_pipeline() {
    // A malicious tenant crafts reconfiguration packets for every resource
    // kind and sends them on the data path; none may take effect and the
    // victim module must keep behaving correctly.
    let mut pipeline = MenshenPipeline::new(TABLE5);
    let firewall = Firewall;
    pipeline.load_module(&firewall.build(1).unwrap()).unwrap();
    let counter_before = pipeline.filter().reconfig_counter();

    let attacks = vec![
        ReconfigCommand::clear(ResourceKind::Parser, 0, 0),
        ReconfigCommand::clear(ResourceKind::KeyMask, 0, 0),
        ReconfigCommand::clear(ResourceKind::MatchTable, 0, 0),
        ReconfigCommand::write(
            ResourceKind::SegmentTable,
            0,
            0,
            WritePayload::Segment(SegmentEntry::new(0, 4096)),
        ),
    ];
    for attack in attacks {
        let verdict = pipeline.process(attack.to_packet());
        assert!(matches!(
            verdict,
            Verdict::Dropped {
                reason: DropReason::UntrustedReconfiguration,
                ..
            }
        ));
    }
    assert_eq!(
        pipeline.filter().reconfig_counter(),
        counter_before,
        "no configuration write went through"
    );
    for packet in firewall.packets(1, 30, 3) {
        let verdict = pipeline.process(packet.clone());
        assert!(firewall.check_output(&packet, &verdict));
    }
}

#[test]
fn trusted_daisy_chain_reconfiguration_round_trips() {
    let mut pipeline = MenshenPipeline::new(TABLE5);
    pipeline.load_module(&Calc.build(1).unwrap()).unwrap();
    // The software path (PCIe → daisy chain) can rewrite a segment entry.
    let command = ReconfigCommand::write(
        ResourceKind::SegmentTable,
        1,
        0,
        WritePayload::Segment(SegmentEntry::new(64, 32)),
    );
    let packet = command.to_packet();
    pipeline.apply_reconfiguration_packet(&packet).unwrap();
    assert!(pipeline.filter().reconfig_counter() > 0);
    // Malformed packets are rejected with an error, not applied silently.
    let data =
        PacketBuilder::new()
            .with_vlan(1)
            .build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 8]);
    assert!(pipeline.apply_reconfiguration_packet(&data).is_err());
}
