//! The chaos suite: deterministic fault injection against the sharded
//! runtime and the network-attached service.
//!
//! Every scenario drives a seeded, replayable [`FaultPlan`] — worker panics
//! and stalls at exact burst indices, wire-level packet faults at exact
//! stream positions, control-connection aborts at exact request indices —
//! and then holds the plane to the conservation contract: every failure is
//! detected and recovered by `supervise()`, and afterwards
//!
//! ```text
//! forwarded + dropped + lost_to_failure == submitted      (in_flight == 0)
//! ```
//!
//! with the per-tenant ledgers independently retelling the same story.

use menshen::core::{MenshenPipeline, ModuleId};
use menshen::io::{control_request, InProcessIo, Service, ServiceConfig, UdpSocketIo};
use menshen::packet::{Packet, PacketBuilder};
use menshen::runtime::{
    ControlEventKind, FaultPlan, FaultSpec, RuntimeError, RuntimeOptions, ShardedRuntime,
    SteeringMode,
};
use menshen::trace::synth::{synthesize, WorkloadSpec};
use menshen_bench::workloads::{flow_rule_tenant, flow_rule_tenant_with_port, flow_workload};
use menshen_rmt::action::AluInstruction;
use menshen_rmt::phv::ContainerRef as C;
use std::time::{Duration, Instant};

const TENANTS: u16 = 4;
const RULES: usize = 64;

fn template() -> MenshenPipeline {
    let params = menshen::rmt::TABLE5.with_table_depth(1024);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }
    pipeline
}

fn trace(packets: usize) -> Vec<Packet> {
    let mut spec = WorkloadSpec::heavy_tailed(TENANTS, 96, packets);
    spec.rules_per_tenant = RULES;
    spec.mean_rate_pps = 50_000_000.0;
    synthesize(&spec).unwrap()
}

/// Like [`template`], but tenant 1 `store`s its dst IP into stateful word
/// 2 — non-mergeable, so it classifies Replicated under 5-tuple steering
/// and every shard replica replays its digest stream.
fn storing_template() -> MenshenPipeline {
    let params = menshen::rmt::TABLE5.with_table_depth(1024);
    let mut pipeline = MenshenPipeline::new(params);
    let mut storing = flow_rule_tenant_with_port(1, RULES, 1001);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    pipeline.load_module(&storing).unwrap();
    for module_id in 2..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }
    pipeline
}

/// `n` packets all carrying `tenant`'s VLAN tag — single-shard traffic
/// under tenant-affine steering.
fn tenant_frames(tenant: u16, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let seq = (i as u32).to_be_bytes();
            PacketBuilder::udp_data(tenant, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, &seq)
        })
        .collect()
}

/// Which shard `tenant`'s traffic lands on under tenant-affine steering
/// with `shards` shards. Probed through a deterministic replica, which the
/// shard-equivalence suite pins to the exact same steering as the threaded
/// plane.
fn tenant_shard(tenant: u16, shards: usize) -> usize {
    let mut probe =
        ShardedRuntime::from_pipeline(&template(), RuntimeOptions::deterministic(shards));
    probe.process_batch(tenant_frames(tenant, 32)).unwrap();
    let stats = probe.shard_stats();
    stats
        .iter()
        .position(|s| s.packets > 0)
        .expect("the probe batch landed on some shard")
}

/// The shards that see any of the synthetic 4-tenant trace.
fn trafficked_shards(shards: usize) -> Vec<usize> {
    let mut probe =
        ShardedRuntime::from_pipeline(&template(), RuntimeOptions::deterministic(shards));
    probe.process_batch(trace(512)).unwrap();
    probe
        .shard_stats()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.packets > 0)
        .map(|(i, _)| i)
        .collect()
}

/// Asserts the ISSUE's headline identity on a finished audit.
fn assert_conserved(audit: &menshen::runtime::ConservationAudit) {
    assert!(audit.is_balanced(), "books do not balance: {audit:?}");
    assert_eq!(
        audit.forwarded + audit.dropped + audit.lost_to_failure,
        audit.submitted,
        "forwarded + dropped + lost_to_failure must partition submitted: {audit:?}"
    );
    assert_eq!(audit.in_flight, 0, "{audit:?}");
}

/// A scheduled worker panic is contained, detected by the supervisor,
/// routed around, and the shard respawned from a standby replica — across
/// the full dispatcher-threaded path — with every packet accounted for.
#[test]
fn seeded_panics_are_detected_recovered_and_accounted() {
    let victims = trafficked_shards(4);
    assert!(!victims.is_empty());
    let mut runtime = ShardedRuntime::from_pipeline(
        &template(),
        RuntimeOptions::threaded(4)
            .with_dispatchers(2)
            .with_submit_wait(Duration::from_millis(100))
            .with_wedge_threshold(Duration::from_secs(30)),
    );
    // Kill up to two distinct trafficked shards, early in their burst
    // streams so a handful of waves reaches the coordinates.
    let mut plan = FaultPlan::new();
    let targets: Vec<usize> = victims.iter().copied().take(2).collect();
    for (i, shard) in targets.iter().enumerate() {
        plan = plan.with_worker_panic(*shard, 2 + i as u64);
    }
    runtime.arm_faults(plan);

    let mut recovered = std::collections::BTreeSet::new();
    let mut reports = Vec::new();
    for _ in 0..200 {
        runtime.submit_owned(trace(256)).unwrap();
        for report in runtime.supervise() {
            recovered.insert(report.shard);
            reports.push(report);
        }
        if targets.iter().all(|s| recovered.contains(s)) {
            break;
        }
        // Death is not instantaneous: the casualty still has to post its
        // final snapshot and unwind off its thread before the supervisor
        // can see the body.
        std::thread::sleep(Duration::from_millis(2));
    }
    // Stop the plan re-firing on respawned workers (their burst counters
    // restart at zero). A worker that re-entered the armed window just
    // before the disarm may still be mid-death — give any such straggler
    // time to land, sweep the plane quiet, then prove the recovered shards
    // carry traffic.
    runtime.disarm_faults();
    std::thread::sleep(Duration::from_millis(50));
    loop {
        let late = runtime.supervise();
        if late.is_empty() {
            break;
        }
        for report in late {
            recovered.insert(report.shard);
            reports.push(report);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    runtime.submit_owned(trace(512)).unwrap();
    runtime.flush();
    assert!(
        runtime.supervise().is_empty(),
        "plane is quiet after disarm"
    );

    assert_eq!(
        recovered,
        targets
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>(),
        "every scheduled casualty was detected and recovered"
    );
    assert!(runtime.failures() >= targets.len() as u64);
    for report in &reports {
        assert!(report.pause > Duration::ZERO, "{report:?}");
        assert!(report.detection < Duration::from_secs(30), "{report:?}");
    }

    let events = runtime.control_events();
    let failed = events
        .iter()
        .filter(|e| matches!(e.kind, ControlEventKind::ShardFailed { .. }))
        .count();
    let respawned = events
        .iter()
        .filter(|e| matches!(e.kind, ControlEventKind::ShardRecovered { .. }))
        .count();
    assert!(
        failed >= targets.len() && respawned == failed,
        "{failed} failures, {respawned} recoveries"
    );

    let audit = runtime.conservation_audit().unwrap();
    assert_conserved(&audit);
    assert!(
        audit.lost_to_failure > 0,
        "a mid-burst panic loses its burst"
    );
    // Reports carry the shard-side losses (in-flight burst + sealed-ring
    // residue). A dispatcher refused by a ring in the seal window adds its
    // burst straight to the audit's column, so the audit may exceed the
    // report sum — never the other way around.
    let reported: u64 = reports.iter().map(|r| r.lost_packets).sum();
    assert!(
        reported <= audit.lost_to_failure,
        "reports claim {reported} lost but the audit only carries {}",
        audit.lost_to_failure
    );

    // The failure counter is on the metrics plane too.
    let snapshot = runtime.metrics_snapshot().unwrap();
    let text = snapshot.to_prometheus();
    assert!(
        text.contains("menshen_runtime_failures_total"),
        "failures counter missing from the exposition"
    );
}

/// After a kill and recovery the respawned shard pulls its weight: the
/// plane's post-recovery throughput is within 10% of its pre-failure
/// throughput (best-of-N waves on both sides, to de-noise scheduling).
#[test]
fn post_recovery_throughput_is_within_ten_percent() {
    let victims = trafficked_shards(2);
    let mut runtime = ShardedRuntime::from_pipeline(
        &template(),
        RuntimeOptions::threaded(2).with_submit_wait(Duration::from_millis(200)),
    );
    let wave = trace(8192);
    let time_wave = |rt: &mut ShardedRuntime| {
        let start = Instant::now();
        rt.submit_owned(wave.clone()).unwrap();
        rt.flush();
        start.elapsed()
    };
    // Warm-up, then best-of-7 before the failure.
    time_wave(&mut runtime);
    let before = (0..7).map(|_| time_wave(&mut runtime)).min().unwrap();

    // Kill one trafficked shard at its *next* burst and recover it.
    let victim = victims[0];
    let next_burst = runtime.shard_stats()[victim].bursts + 1;
    runtime.arm_faults(FaultPlan::new().with_worker_panic(victim, next_burst));
    let mut recovered = Vec::new();
    for _ in 0..200 {
        runtime.submit_owned(trace(256)).unwrap();
        recovered.extend(runtime.supervise());
        if !recovered.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    runtime.disarm_faults();
    assert_eq!(recovered.len(), 1, "exactly the scheduled casualty");
    assert_eq!(recovered[0].shard, victim);

    runtime.flush();
    // A genuinely degraded plane stays slow across remeasures; debug-build
    // scheduling noise does not. Remeasure before believing a bad ratio.
    let mut after = (0..7).map(|_| time_wave(&mut runtime)).min().unwrap();
    let mut ratio = after.as_secs_f64() / before.as_secs_f64();
    for _ in 0..4 {
        if ratio <= 1.0 / 0.9 {
            break;
        }
        after = (0..7).map(|_| time_wave(&mut runtime)).min().unwrap();
        ratio = after.as_secs_f64() / before.as_secs_f64();
    }
    assert!(
        ratio <= 1.0 / 0.9,
        "post-recovery throughput degraded beyond 10%: before {before:?}, after {after:?} \
         ({:.1}% of pre-failure)",
        100.0 / ratio
    );
    assert_conserved(&runtime.conservation_audit().unwrap());
}

/// The chaos plane is replayable: the same seed derives the same fault
/// schedule, and driving that schedule against the same traffic kills the
/// same shards — with the books conserved on every run. (How often a
/// respawned shard is re-killed before the plan is disarmed is wall-clock
/// timing, so the replay contract is the schedule and the casualty set,
/// not the kill count.)
#[test]
fn same_seed_replays_the_same_failure_schedule() {
    const SEED: u64 = 1984;
    let spec = FaultSpec {
        shards: 4,
        burst_horizon: 8,
        worker_panics: 2,
        worker_stalls: 1,
        stall: Duration::from_millis(1),
        packet_horizon: 1,
        packet_faults: 0,
    };
    // The schedule itself is bit-identical across derivations.
    let schedule: Vec<_> = FaultPlan::randomized(SEED, &spec).worker_faults().collect();
    assert_eq!(
        schedule,
        FaultPlan::randomized(SEED, &spec)
            .worker_faults()
            .collect::<Vec<_>>(),
        "one seed, one schedule"
    );
    assert!(!schedule.is_empty());

    fn run(seed: u64, spec: &FaultSpec) -> std::collections::BTreeSet<u64> {
        let mut runtime = ShardedRuntime::from_pipeline(
            &template(),
            RuntimeOptions::threaded(4).with_submit_wait(Duration::from_secs(5)),
        );
        runtime.arm_faults(FaultPlan::randomized(seed, spec));
        for _ in 0..24 {
            runtime.submit_owned(trace(256)).unwrap();
            runtime.supervise();
            std::thread::sleep(Duration::from_millis(2));
        }
        // Let every casualty finish dying, recover it, then disarm and
        // prove the books.
        for _ in 0..50 {
            runtime.supervise();
            let stuck = runtime
                .control_events()
                .iter()
                .filter(|e| matches!(e.kind, ControlEventKind::ShardFailed { .. }))
                .count()
                == 0;
            if !stuck {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        runtime.disarm_faults();
        runtime.flush();
        runtime.supervise();
        runtime.flush();
        let audit = runtime.conservation_audit().unwrap();
        assert_conserved(&audit);
        runtime
            .control_events()
            .iter()
            .filter_map(|e| match e.kind {
                ControlEventKind::ShardFailed { shard, .. } => Some(shard),
                _ => None,
            })
            .collect()
    }
    let a = run(SEED, &spec);
    let b = run(SEED, &spec);
    assert!(
        !a.is_empty(),
        "seed {SEED} schedules at least one reachable panic"
    );
    assert_eq!(a, b, "same seed, same traffic — same casualties");
}

/// Graceful degradation: when one shard backs up, the bounded submission
/// wait sheds the *overloaded tenant's* packets as typed backpressure drops
/// — the neighbour tenant on the healthy shard never loses a packet and
/// never stalls behind the hot one.
#[test]
fn an_overloaded_tenant_sheds_without_blocking_its_neighbours() {
    // Find two tenants that land on different shards of a 2-shard plane.
    let (hot, cold) = {
        let shard_of: Vec<(u16, usize)> = (1..=TENANTS).map(|t| (t, tenant_shard(t, 2))).collect();
        let (hot, hot_shard) = shard_of[0];
        let cold = shard_of
            .iter()
            .find(|(_, s)| *s != hot_shard)
            .map(|(t, _)| *t)
            .expect("four tenants cover both shards");
        (hot, cold)
    };
    let hot_shard = tenant_shard(hot, 2);

    let mut options = RuntimeOptions::threaded(2).with_submit_wait(Duration::from_millis(20));
    options.ring_capacity = 2;
    let mut runtime = ShardedRuntime::from_pipeline(&template(), options);
    // The hot tenant's shard sleeps through its first burst while its tiny
    // rings fill behind it.
    runtime.arm_faults(FaultPlan::new().with_worker_stall(
        hot_shard,
        0,
        Duration::from_millis(500),
    ));

    let mut hot_submitted = 0u64;
    let mut cold_submitted = 0u64;
    for _ in 0..8 {
        runtime.submit_owned(tenant_frames(hot, 32)).unwrap();
        hot_submitted += 32;
        runtime.submit_owned(tenant_frames(cold, 32)).unwrap();
        cold_submitted += 32;
    }
    runtime.disarm_faults();
    runtime.flush();

    let shed = runtime.shed_by_tenant();
    let hot_shed = shed.get(&hot).copied().unwrap_or(0);
    let cold_shed = shed.get(&cold).copied().unwrap_or(0);
    assert!(
        hot_shed > 0,
        "the stalled shard's tenant pays in shed packets: {shed:?}"
    );
    assert_eq!(cold_shed, 0, "the healthy tenant never sheds: {shed:?}");

    let audit = runtime.conservation_audit().unwrap();
    assert_conserved(&audit);
    assert_eq!(audit.shed, hot_shed, "{audit:?}");
    assert_eq!(audit.lost_to_failure, 0, "nothing died: {audit:?}");
    assert_eq!(
        audit.submitted,
        hot_submitted + cold_submitted,
        "shed packets still count as submitted"
    );

    // The ledgers tell the same story, per tenant: the hot tenant's losses
    // are *typed* backpressure drops, the cold tenant has none.
    let tenants = runtime.aggregated_tenants().unwrap();
    assert_eq!(tenants[&hot].ledger.dropped_backpressure, hot_shed);
    assert_eq!(tenants[&cold].ledger.dropped_backpressure, 0);
    let cold_ledger = &tenants[&cold].ledger;
    assert_eq!(
        cold_ledger.forwarded
            + cold_ledger
                .drop_reasons()
                .iter()
                .map(|(_, n)| n)
                .sum::<u64>(),
        cold_submitted,
        "every cold-tenant packet got a verdict"
    );
}

/// Satellite (c): a stalled shard turns a synchronous control op into a
/// typed `EpochTimeout` under traffic — and once the stall clears, later
/// epochs publish normally (the timeout wedges nothing).
#[test]
fn a_stalled_shard_times_out_the_control_op_without_wedging_later_epochs() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &template(),
        RuntimeOptions::threaded(2).with_wedge_threshold(Duration::from_secs(30)),
    );
    runtime.set_control_timeout(Some(Duration::from_millis(100)));
    // Whichever shard the trace hits first sleeps well past the control
    // deadline; stall both coordinates so the fault fires regardless of the
    // tenant→shard map.
    runtime.arm_faults(
        FaultPlan::new()
            .with_worker_stall(0, 0, Duration::from_millis(600))
            .with_worker_stall(1, 0, Duration::from_millis(600)),
    );
    runtime.submit_owned(trace(256)).unwrap();

    let err = runtime
        .load_module(&flow_rule_tenant(9, 8))
        .expect_err("a stalled shard must fail the sync op, not hang it");
    match err {
        RuntimeError::EpochTimeout { waited, .. } => {
            assert_eq!(waited, Duration::from_millis(100));
        }
        other => panic!("expected EpochTimeout, got {other:?}"),
    }

    // The stall passes; the plane is not wedged: the next sync op flushes,
    // publishes and applies cleanly, and traffic keeps balancing.
    runtime.disarm_faults();
    runtime.flush();
    runtime
        .load_module(&flow_rule_tenant(9, 8))
        .expect("later epochs publish normally after the stall clears");
    runtime.submit_owned(trace(256)).unwrap();
    runtime.flush();
    assert_eq!(runtime.failures(), 0, "a stall is not a failure");
    assert!(runtime.supervise().is_empty(), "nothing to recover");
    assert_conserved(&runtime.conservation_audit().unwrap());
}

/// Submissions against a plane whose workers have all died return within
/// the bounded wait (shed, typed per tenant) instead of parking forever —
/// and supervision then rebuilds the whole plane.
#[test]
fn submissions_against_dead_shards_return_bounded_never_park() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &template(),
        RuntimeOptions::threaded(2)
            .with_submit_wait(Duration::from_millis(30))
            .with_wedge_threshold(Duration::from_secs(30)),
    );
    // Both workers die on their very first burst.
    runtime.arm_faults(
        FaultPlan::new()
            .with_worker_panic(0, 0)
            .with_worker_panic(1, 0),
    );
    let start = Instant::now();
    for _ in 0..10 {
        // Rings of dead workers stay open (failure containment), so pushes
        // land until the rings fill, then shed after the bounded wait; the
        // call must always come back.
        runtime.submit_owned(trace(128)).unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "bounded-wait submission never parks forever"
    );

    // Poll until both corpses surface — the plan stays armed until then,
    // so even a worker the scheduler was slow to run still meets its
    // burst-0 fault. No traffic flows here, so a respawned worker (fresh
    // burst counter) cannot re-fire before the disarm below.
    let mut reports = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while reports.len() < 2 {
        assert!(
            Instant::now() < deadline,
            "corpses never surfaced: {reports:?}"
        );
        reports.extend(runtime.supervise());
        std::thread::sleep(Duration::from_millis(2));
    }
    runtime.disarm_faults();
    assert_eq!(reports.len(), 2, "both casualties recovered: {reports:?}");
    runtime.submit_owned(trace(512)).unwrap();
    runtime.flush();
    let audit = runtime.conservation_audit().unwrap();
    assert_conserved(&audit);
    assert!(audit.lost_to_failure > 0);
}

/// Digest traffic is control metadata, not packets: a replicated tenant's
/// digest broadcast must leave the conservation identity untouched —
/// `forwarded + dropped + lost_to_failure == submitted` counts data packets
/// only, on a plane that demonstrably carried digests the whole time.
#[test]
fn digest_traffic_never_perturbs_the_conservation_audit() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &storing_template(),
        RuntimeOptions::threaded(4)
            .with_steering(SteeringMode::FiveTuple)
            .with_submit_wait(Duration::from_millis(200)),
    );
    assert_eq!(runtime.replicated_modules(), vec![1]);
    let submitted = 8 * 512u64;
    for _ in 0..8 {
        runtime
            .submit_owned(flow_workload(TENANTS, RULES, 512))
            .unwrap();
    }
    runtime.flush();

    let (digest_packets, digest_bytes) = runtime.digest_totals();
    assert!(
        digest_packets > 0 && digest_bytes > 0,
        "replication on a 4-shard plane must broadcast digests"
    );
    let audit = runtime.conservation_audit().unwrap();
    assert_conserved(&audit);
    assert_eq!(
        audit.submitted, submitted,
        "digests must not inflate the submitted column: {audit:?}"
    );
    assert_eq!(audit.lost_to_failure, 0, "nothing died: {audit:?}");
    // The per-tenant ledgers retell it: every data packet got exactly one
    // verdict, replayed digests got none.
    let tenants = runtime.aggregated_tenants().unwrap();
    let verdicts: u64 = tenants
        .values()
        .map(|t| t.ledger.forwarded + t.ledger.drop_reasons().iter().map(|(_, n)| n).sum::<u64>())
        .sum();
    assert_eq!(verdicts, submitted, "one verdict per data packet, exactly");
}

/// SCR under fire: a shard killed mid-digest-stream loses its replica of
/// the storing tenant's words; `supervise()` respawns it and reseeds the
/// replica from a live peer's snapshot. Afterwards every shard holds
/// bit-identical copies again — traffic after the rebuild keeps them in
/// lockstep — and the books balance.
#[test]
fn a_replica_killed_mid_digest_stream_is_rebuilt_from_a_live_peer() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &storing_template(),
        RuntimeOptions::threaded(4)
            .with_steering(SteeringMode::FiveTuple)
            .with_submit_wait(Duration::from_millis(100))
            .with_wedge_threshold(Duration::from_secs(30)),
    );
    assert_eq!(runtime.replicated_modules(), vec![1]);
    // Seed every replica with digest-carried state, then kill one shard at
    // its next burst — mid-stream, with digests still in flight.
    runtime
        .submit_owned(flow_workload(TENANTS, RULES, 1024))
        .unwrap();
    runtime.flush();
    let victim = 1usize;
    let next_burst = runtime.shard_stats()[victim].bursts + 1;
    runtime.arm_faults(FaultPlan::new().with_worker_panic(victim, next_burst));

    let mut recovered = Vec::new();
    for _ in 0..200 {
        runtime
            .submit_owned(flow_workload(TENANTS, RULES, 256))
            .unwrap();
        recovered.extend(runtime.supervise());
        if !recovered.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    runtime.disarm_faults();
    std::thread::sleep(Duration::from_millis(50));
    loop {
        let late = runtime.supervise();
        if late.is_empty() {
            break;
        }
        recovered.extend(late);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        recovered.iter().any(|r| r.shard == victim),
        "the scheduled casualty was recovered: {recovered:?}"
    );

    // Post-rebuild traffic: the respawned replica must replay digests in
    // lockstep with its peers from its reseeded baseline.
    runtime
        .submit_owned(flow_workload(TENANTS, RULES, 1024))
        .unwrap();
    runtime.flush();

    let storing = [ModuleId::new(1)];
    let reference = runtime
        .export_shard_state(0, &storing)
        .unwrap()
        .pop()
        .expect("shard 0 holds the replicated module");
    assert!(
        reference.stages.iter().any(|s| s.iter().any(|&w| w != 0)),
        "the storing tenant's words advanced"
    );
    for shard in 1..runtime.shard_count() {
        let replica = runtime
            .export_shard_state(shard, &storing)
            .unwrap()
            .pop()
            .unwrap_or_else(|| panic!("shard {shard} holds the replicated module"));
        assert_eq!(
            replica.stages, reference.stages,
            "shard {shard}'s replica diverged from shard 0 after the rebuild"
        );
    }
    assert_conserved(&runtime.conservation_audit().unwrap());
}

/// Wire-level chaos: a seeded schedule of drops, duplicates, reorders and
/// TPID corruption applied in front of the real UDP socket backend. The
/// service's books balance against what actually arrived — a hostile wire
/// can change *what* the plane sees, never make the accounting lie.
#[test]
fn wire_level_packet_faults_keep_the_service_books_balanced() {
    use menshen::runtime::PacketFault;
    let clean: Vec<Vec<u8>> = tenant_frames(3, 64)
        .iter()
        .map(|p| p.bytes().to_vec())
        .collect();
    let plan = FaultPlan::new()
        .with_packet_fault(3, PacketFault::Drop)
        .with_packet_fault(9, PacketFault::Duplicate)
        .with_packet_fault(17, PacketFault::Reorder)
        .with_packet_fault(30, PacketFault::Corrupt)
        .with_packet_fault(31, PacketFault::Duplicate)
        .with_packet_fault(50, PacketFault::Drop);
    let wire = plan.apply_to_frames(&clean);
    assert_eq!(wire.len(), clean.len(), "2 dropped, 2 duplicated");

    let io = UdpSocketIo::bind(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), 2).unwrap();
    let addrs = io.local_addrs();
    let mut service = Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
    let feeder = std::net::UdpSocket::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
    for (i, frame) in wire.iter().enumerate() {
        feeder.send_to(frame, addrs[i % addrs.len()]).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.packets_received() < wire.len() as u64 {
        assert!(
            Instant::now() < deadline,
            "service never saw the faulted stream: {} of {}",
            service.packets_received(),
            wire.len()
        );
        service.poll().unwrap();
    }
    let report = service.graceful_drain().unwrap();
    assert!(
        report.balanced,
        "faulted wire unbalanced the books: {report:?}"
    );
    assert_eq!(report.link.rx_packets, wire.len() as u64);
    assert_eq!(
        report.audit.submitted + report.rx_discarded,
        report.link.rx_packets,
        "every arrived frame is either in the audit or counted discarded"
    );
    assert_conserved(&report.audit);
}

/// Control-plane chaos: clients that tear their connection down
/// mid-exchange, at seeded request indices, never take the service with
/// them — the surviving requests are answered and the drain still balances.
#[test]
fn control_disconnects_mid_exchange_leave_the_service_serving() {
    let plan = FaultPlan::new()
        .with_control_disconnect(1)
        .with_control_disconnect(3)
        .with_control_disconnect(4);
    let (io, handle) = InProcessIo::new();
    let mut service = Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
    let addr = service.control_addr().expect("control listener");

    let client = std::thread::spawn(move || {
        let timeout = Duration::from_secs(10);
        let mut replies = Vec::new();
        for request in 0..6u64 {
            if plan.control_disconnect(request) {
                // The scheduled abort: write the request, slam the
                // connection shut before reading the reply.
                use std::io::Write;
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream.write_all(b"STATS\n").unwrap();
                drop(stream);
            } else {
                replies.push(control_request(addr, "PING", timeout).unwrap());
            }
        }
        replies.push(control_request(addr, "DRAIN", timeout).unwrap());
        replies
    });

    let mut injected = 0usize;
    while !service.drain_requested() {
        if injected < 4_096 {
            handle.inject(tenant_frames(3, 32));
            injected += 32;
        }
        service.poll().unwrap();
    }
    let replies = client.join().unwrap();
    assert_eq!(replies.len(), 4, "three PINGs and the DRAIN all answered");
    assert!(replies[..3].iter().all(|r| r == "ok pong"), "{replies:?}");
    assert_eq!(replies[3], "ok draining");

    let report = service.graceful_drain().unwrap();
    assert!(
        report.balanced,
        "aborted control clients cost packets: {report:?}"
    );
    assert_eq!(report.audit.submitted, injected as u64);
}
