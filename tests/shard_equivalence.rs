//! Shard/single equivalence: for any shard count 1..=8, the sharded runtime
//! in deterministic mode must be indistinguishable from one big
//! `MenshenPipeline` fed the same packets and the same control-plane
//! operations — same per-position verdict projections (and therefore the
//! same per-tenant verdict multisets), same per-tenant counter totals after
//! cross-shard aggregation, same stateful-memory evolution, same device
//! statistics — including across randomly interleaved reconfigurations
//! (module updates, unload/reload cycles, begin/end reconfiguration marks).
//!
//! The verdict projection compares forwarded bytes, egress ports, module
//! attribution and drop reasons. The final PHV is deliberately excluded: it
//! carries hardware-local artefacts (the per-filter buffer-tag round robin,
//! the per-pipeline cycle stamp) that legitimately differ between one filter
//! instance and N replicated ones without being tenant-observable in the
//! packet or its forwarding.
//!
//! In the style of this repository's other property tests, these are seeded
//! randomized loops (the workspace has no proptest): every failure is
//! reproducible from the printed seed.

use menshen::prelude::*;
use menshen_bench::workloads::{flow_dst_ip, flow_rule_tenant_with_port};
use menshen_core::{ModuleConfig, ModuleCounters};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::action::AluInstruction;
use menshen_rmt::config::KeyMask;
use menshen_rmt::phv::ContainerRef as C;
use menshen_runtime::{DispatchSpray, ShardedRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const TENANTS: u16 = 6;
const FLOWS_PER_TENANT: usize = 4;

/// The canonical tenant-observable projection of a verdict.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum VerdictKey {
    Forwarded {
        module_id: u16,
        bytes: Vec<u8>,
        ports: Vec<u16>,
    },
    Dropped {
        module_id: Option<u16>,
        reason: String,
    },
}

fn project(verdict: &Verdict) -> VerdictKey {
    match verdict {
        Verdict::Forwarded {
            packet,
            ports,
            module_id,
            ..
        } => VerdictKey::Forwarded {
            module_id: *module_id,
            bytes: packet.bytes().to_vec(),
            ports: ports.clone(),
        },
        Verdict::Dropped { reason, module_id } => VerdictKey::Dropped {
            module_id: *module_id,
            reason: format!("{reason:?}"),
        },
    }
}

/// The shared flow-rule tenant shape (`menshen_bench::workloads`): match on
/// dst IP, rewrite the UDP dst port, count packets in stateful word 0.
fn tenant_module(module_id: u16, rewrite_port: u16) -> ModuleConfig {
    flow_rule_tenant_with_port(module_id, FLOWS_PER_TENANT, rewrite_port)
}

/// A random packet: mostly tenant hits, plus misses, unknown modules,
/// untagged frames and data-path reconfiguration attempts.
fn random_packet(rng: &mut StdRng) -> Packet {
    let roll: u32 = rng.gen_range(0..100u32);
    if roll < 70 {
        // A hit for a random tenant (one of its flow-rule IPs), random
        // flow fields.
        let module = rng.gen_range(1..=TENANTS);
        let ip = flow_dst_ip(module, rng.gen_range(0..FLOWS_PER_TENANT));
        PacketBuilder::udp_data(
            module,
            [10, 0, 0, rng.gen_range(1..250u8)],
            [
                ((ip >> 24) & 0xff) as u8,
                ((ip >> 16) & 0xff) as u8,
                ((ip >> 8) & 0xff) as u8,
                (ip & 0xff) as u8,
            ],
            rng.gen_range(1024..65000u16),
            80,
            &[0u8; 8],
        )
    } else if roll < 85 {
        // A miss for a random tenant (wrong dst IP): forwarded un-rewritten.
        let module = rng.gen_range(1..=TENANTS);
        PacketBuilder::udp_data(
            module,
            [10, 0, 0, 1],
            [10, 9, 9, rng.gen_range(1..250u8)],
            5000,
            80,
            &[0u8; 8],
        )
    } else if roll < 92 {
        // Unknown module ID.
        PacketBuilder::udp_data(
            900 + rng.gen_range(0..50u16),
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            1,
            2,
            &[],
        )
    } else if roll < 96 {
        // Untagged frame.
        let mut builder = PacketBuilder::new();
        builder.vlan = None;
        builder.build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[])
    } else {
        // Data-path reconfiguration attempt (must drop without applying).
        menshen_core::ReconfigCommand::write(
            menshen_core::ResourceKind::KeyMask,
            0,
            0,
            menshen_core::WritePayload::KeyMask(KeyMask::default()),
        )
        .to_packet()
    }
}

/// One random control-plane event, applied identically to both sides.
fn random_control(
    rng: &mut StdRng,
    single: &mut MenshenPipeline,
    sharded: &mut ShardedRuntime,
    marked: &mut Vec<u16>,
) {
    let module = rng.gen_range(1..=TENANTS);
    match rng.gen_range(0..5u32) {
        0 => {
            // Update with a fresh rewrite port.
            let port = rng.gen_range(10000..60000u16);
            let config = tenant_module(module, port);
            single.update_module(&config).expect("single update");
            sharded.update_module(&config).expect("sharded update");
        }
        1 => {
            // Unload + reload (slot churn).
            let port = rng.gen_range(10000..60000u16);
            let config = tenant_module(module, port);
            single
                .unload_module(ModuleId::new(module))
                .expect("single unload");
            sharded
                .unload_module(ModuleId::new(module))
                .expect("sharded unload");
            single.load_module(&config).expect("single reload");
            sharded.load_module(&config).expect("sharded reload");
        }
        2 => {
            // Mark as being reconfigured (drops its packets until cleared).
            single
                .begin_reconfiguration(ModuleId::new(module))
                .expect("single begin");
            sharded
                .begin_reconfiguration(ModuleId::new(module))
                .expect("sharded begin");
            marked.push(module);
        }
        3 => {
            // Clear a pending mark, if any.
            if let Some(module) = marked.pop() {
                single
                    .end_reconfiguration(ModuleId::new(module))
                    .expect("single end");
                sharded
                    .end_reconfiguration(ModuleId::new(module))
                    .expect("sharded end");
            }
        }
        _ => {
            // System-module routing change.
            let ip = menshen_packet::Ipv4Address::new(10, 9, 9, rng.gen_range(1..250u8));
            let port = rng.gen_range(1..64u16);
            single.system_mut().add_route(ip, port);
            sharded.add_route(ip, port).expect("sharded route");
        }
    }
}

struct RunOutcome {
    /// Per-tenant verdict multisets (None = packets with no attributed module).
    multisets: HashMap<Option<u16>, Vec<VerdictKey>>,
}

/// Runs the randomized equivalence experiment.
///
/// With `dispatchers == 0` (the classic inline dispatcher) the sharded
/// runtime must match the lone pipeline *per position*. With dispatcher
/// threads modeled (`dispatchers ≥ 1`) packets of different tenants
/// interleave differently per shard — exactly as with parallel NIC queues —
/// so the guarantee is the per-burst verdict *multiset* (and therefore the
/// per-tenant multisets), which this function asserts instead.
fn run_equivalence_with(
    shards: usize,
    dispatchers: usize,
    spray: DispatchSpray,
    seed: u64,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    // A CAM deep enough for TENANTS × FLOWS_PER_TENANT rules per stage.
    let params = TABLE5.with_table_depth(64);
    let mut single = MenshenPipeline::new(params);
    let mut sharded = ShardedRuntime::new(
        params,
        RuntimeOptions::deterministic(shards)
            .with_dispatchers(dispatchers)
            .with_spray(spray),
    );
    for module in 1..=TENANTS {
        let config = tenant_module(module, 1000 + module);
        single.load_module(&config).expect("single load");
        sharded.load_module(&config).expect("sharded load");
    }

    let mut marked = Vec::new();
    let mut multisets: HashMap<Option<u16>, Vec<VerdictKey>> = HashMap::new();
    let bursts = 40;
    for burst_index in 0..bursts {
        // Interleave control-plane changes between bursts, exactly where the
        // single pipeline applies them too.
        if burst_index > 0 && rng.gen_bool(0.4) {
            random_control(&mut rng, &mut single, &mut sharded, &mut marked);
        }
        let burst: Vec<Packet> = (0..rng.gen_range(1..64usize))
            .map(|_| random_packet(&mut rng))
            .collect();
        let expected = single.process_batch(burst.clone());
        let got = sharded.process_batch(burst).expect("deterministic mode");
        assert_eq!(expected.len(), got.len());
        if dispatchers == 0 {
            for (position, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    project(a),
                    project(b),
                    "seed {seed}, {shards} shards, burst {burst_index}, packet {position}"
                );
            }
        } else {
            // Parallel dispatch reorders across tenants within a burst; the
            // burst-level verdict multiset must still be identical.
            let mut a: Vec<VerdictKey> = expected.iter().map(project).collect();
            let mut b: Vec<VerdictKey> = got.iter().map(project).collect();
            a.sort();
            b.sort();
            assert_eq!(
                a, b,
                "seed {seed}, {shards} shards × {dispatchers} dispatchers ({spray:?}), \
                 burst {burst_index}: verdict multisets diverged"
            );
        }
        for verdict in &expected {
            let key = project(verdict);
            let bucket = match &key {
                VerdictKey::Forwarded { module_id, .. } => Some(*module_id),
                VerdictKey::Dropped { module_id, .. } => *module_id,
            };
            multisets.entry(bucket).or_default().push(key);
        }
    }
    for module in marked.drain(..) {
        single
            .end_reconfiguration(ModuleId::new(module))
            .expect("single end");
        sharded
            .end_reconfiguration(ModuleId::new(module))
            .expect("sharded end");
    }

    // Counter totals: aggregation across shards equals the single pipeline.
    let aggregated = sharded.aggregated_counters().expect("snapshot applies");
    for module in 1..=TENANTS {
        let expected = single
            .module_counters(ModuleId::new(module))
            .expect("module loaded");
        let got = aggregated
            .get(&module)
            .copied()
            .unwrap_or(ModuleCounters::default());
        assert_eq!(
            expected, got,
            "seed {seed}, {shards} shards: module {module} counters diverged"
        );
        // Stateful evolution (the per-flow `loadd` counter in word 0).
        assert_eq!(
            single.read_stateful(ModuleId::new(module), 0, 0),
            sharded.read_stateful_aggregate(ModuleId::new(module), 0, 0),
            "seed {seed}, {shards} shards: module {module} stateful word diverged"
        );
    }
    // Device statistics: the link observed the same admitted traffic.
    let system = sharded.aggregated_system_stats().expect("snapshot applies");
    assert_eq!(
        single.system().stats().link_packets,
        system.link_packets,
        "seed {seed}, {shards} shards: link packet counts diverged"
    );

    RunOutcome { multisets }
}

#[test]
fn sharded_runtime_is_equivalent_for_every_shard_count() {
    let mut reference: Option<HashMap<Option<u16>, Vec<VerdictKey>>> = None;
    for shards in 1..=8 {
        // Same seed for every shard count: the verdict multisets must also
        // agree *across* shard counts, since steering only redistributes
        // work and never changes per-tenant semantics.
        let mut outcome = run_equivalence_with(shards, 0, DispatchSpray::RoundRobin, 0xE0_0001);
        for bucket in outcome.multisets.values_mut() {
            bucket.sort();
        }
        match &reference {
            None => reference = Some(outcome.multisets),
            Some(reference) => {
                assert_eq!(
                    reference, &outcome.multisets,
                    "{shards} shards produced different per-tenant multisets"
                );
            }
        }
    }
}

#[test]
fn randomized_interleavings_hold_across_seeds() {
    for (index, seed) in [3u64, 0xBEEF, 0x1234_5678, 0xDEAD_0042]
        .into_iter()
        .enumerate()
    {
        // Vary the shard count with the seed to cover odd counts too.
        let shards = 2 + (index * 2 + 1) % 7; // 3, 5, 7, 2 → odd-heavy mix
        run_equivalence_with(shards, 0, DispatchSpray::RoundRobin, seed);
    }
}

#[test]
fn multi_dispatcher_grid_is_equivalent_to_the_lone_pipeline() {
    // The acceptance grid: 2–4 dispatchers × 1–8 shards, interleaved
    // reconfigurations throughout (run_equivalence_with mixes control-plane
    // events between bursts). Per-tenant verdict multisets, counter totals,
    // stateful words and link statistics must match the lone pipeline at
    // every point — and, with the shared seed, agree across the whole grid.
    let mut reference: Option<HashMap<Option<u16>, Vec<VerdictKey>>> = None;
    for dispatchers in [2usize, 3, 4] {
        for shards in [1usize, 3, 8] {
            let mut outcome =
                run_equivalence_with(shards, dispatchers, DispatchSpray::RoundRobin, 0xD15_0001);
            for bucket in outcome.multisets.values_mut() {
                bucket.sort();
            }
            match &reference {
                None => reference = Some(outcome.multisets),
                Some(reference) => assert_eq!(
                    reference, &outcome.multisets,
                    "{dispatchers} dispatchers × {shards} shards diverged"
                ),
            }
        }
    }
}

#[test]
fn flow_affine_spray_holds_the_same_equivalence() {
    // The RETA-partitioned (flow-affine) spray preserves per-flow order end
    // to end; the equivalence contract is identical.
    for (dispatchers, shards) in [(2usize, 4usize), (4, 5), (3, 1)] {
        run_equivalence_with(shards, dispatchers, DispatchSpray::FlowAffine, 0x00AF_F14E);
    }
}

/// The elastic variant of the equivalence experiment: a fixed grow/shrink
/// resize schedule (plus the usual random control-plane churn) interleaves
/// with the bursts, and the sharded runtime must stay indistinguishable from
/// the lone pipeline throughout — per-position verdicts with the inline
/// dispatcher, per-burst multisets with dispatcher threads, and counter
/// totals / stateful words / link statistics at the end.
///
/// `resize_plan` names the shard counts visited after every third burst;
/// `None` entries perform a custom `set_reta` rewrite instead (all entries
/// to shard 0), exercising tenant moves without a count change.
#[allow(clippy::too_many_arguments)]
fn run_elastic_equivalence(
    initial_shards: usize,
    dispatchers: usize,
    spray: DispatchSpray,
    steering: SteeringMode,
    resize_plan: &[Option<usize>],
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TABLE5.with_table_depth(64);
    let mut single = MenshenPipeline::new(params);
    let mut sharded = ShardedRuntime::new(
        params,
        RuntimeOptions::deterministic(initial_shards)
            .with_dispatchers(dispatchers)
            .with_spray(spray)
            .with_steering(steering),
    );
    for module in 1..=TENANTS {
        let config = tenant_module(module, 1000 + module);
        single.load_module(&config).expect("single load");
        sharded.load_module(&config).expect("sharded load");
    }
    let mut marked = Vec::new();
    let mut resizes = resize_plan.iter();
    let bursts = 3 * resize_plan.len() + 3;
    for burst_index in 0..bursts {
        if burst_index % 3 == 2 {
            match resizes.next() {
                Some(Some(target)) => {
                    let report = sharded.resize(*target).expect("resize");
                    assert_eq!(report.to_shards, *target, "seed {seed}");
                    assert_eq!(sharded.shard_count(), *target);
                }
                Some(None) => {
                    // Concentrate every RETA entry on shard 0: all tenants
                    // move there, no shard count change.
                    let reta = [0u16; menshen_runtime::RETA_SIZE];
                    sharded.set_reta(reta).expect("set_reta");
                }
                None => {}
            }
        } else if burst_index > 0 && rng.gen_bool(0.35) {
            random_control(&mut rng, &mut single, &mut sharded, &mut marked);
        }
        let burst: Vec<Packet> = (0..rng.gen_range(1..64usize))
            .map(|_| random_packet(&mut rng))
            .collect();
        let expected = single.process_batch(burst.clone());
        let got = sharded.process_batch(burst).expect("deterministic mode");
        assert_eq!(expected.len(), got.len());
        if dispatchers == 0 {
            for (position, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    project(a),
                    project(b),
                    "seed {seed}, burst {burst_index}, packet {position} \
                     ({steering:?}, {} shards)",
                    sharded.shard_count()
                );
            }
        } else {
            let mut a: Vec<VerdictKey> = expected.iter().map(project).collect();
            let mut b: Vec<VerdictKey> = got.iter().map(project).collect();
            a.sort();
            b.sort();
            assert_eq!(
                a, b,
                "seed {seed}, burst {burst_index}: multisets diverged after resize"
            );
        }
    }
    // End-state equivalence: counters, stateful words, link statistics all
    // survived every migration.
    let aggregated = sharded.aggregated_counters().expect("snapshot applies");
    for module in 1..=TENANTS {
        assert_eq!(
            single.module_counters(ModuleId::new(module)).unwrap(),
            aggregated.get(&module).copied().unwrap_or_default(),
            "seed {seed}: module {module} counters diverged across resizes"
        );
        assert_eq!(
            single.read_stateful(ModuleId::new(module), 0, 0),
            sharded.read_stateful_aggregate(ModuleId::new(module), 0, 0),
            "seed {seed}: module {module} stateful word diverged across resizes"
        );
    }
    assert_eq!(
        single.system().stats().link_packets,
        sharded
            .aggregated_system_stats()
            .expect("snapshot applies")
            .link_packets,
        "seed {seed}: link history lost in a resize"
    );
}

#[test]
fn interleaved_resizes_preserve_equivalence_across_the_grid() {
    // Grow and shrink through 1..=8 (extremes included), both sprays, both
    // steering modes, with and without dispatcher threads modeled.
    let plan = [Some(8), Some(3), None, Some(1), Some(5), Some(2)];
    for &(dispatchers, spray) in &[
        (0usize, DispatchSpray::RoundRobin),
        (2, DispatchSpray::RoundRobin),
        (3, DispatchSpray::FlowAffine),
    ] {
        for steering in [SteeringMode::TenantAffine, SteeringMode::FiveTuple] {
            run_elastic_equivalence(2, dispatchers, spray, steering, &plan, 0xE1A5_71C0);
        }
    }
}

#[test]
fn resize_equivalence_holds_across_seeds_and_starts() {
    for (index, seed) in [7u64, 0xFEED_BEEF, 0x0DD5_EED5].into_iter().enumerate() {
        let start = [4usize, 7, 1][index];
        let plan = [Some(start + 1), Some(2), Some(6), Some(1)];
        run_elastic_equivalence(
            start,
            index % 2,
            DispatchSpray::RoundRobin,
            SteeringMode::TenantAffine,
            &plan,
            seed,
        );
    }
}

/// The pin-hint scenario: a stateful program whose state is NOT mergeable
/// (it `store`s packet-derived values) opts OUT of state-compute
/// replication with the load-time pin hint, runs under 5-tuple steering as
/// a pinned single owner, and its state migrates across grow and shrink
/// resizes, staying equivalent to the lone pipeline throughout.
#[test]
fn non_mergeable_program_migrates_under_five_tuple_resizes() {
    let mut rng = StdRng::seed_from_u64(0x57_0BE5);
    let params = TABLE5.with_table_depth(64);
    let mut single = MenshenPipeline::new(params);
    let mut sharded = ShardedRuntime::new(
        params,
        RuntimeOptions::deterministic(2).with_steering(SteeringMode::FiveTuple),
    );
    // Tenant 1: a storing (non-mergeable) program — match its flow-rule dst
    // IPs, rewrite the port AND store the dst-IP container into stateful
    // word 2 — with the pin hint set, so it stays single-owner instead of
    // replicating. Tenants 2..: the usual mergeable flow-rule programs.
    let mut storing = tenant_module(1, 1001).with_pinned(true);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    single.load_module(&storing).expect("single load");
    sharded.load_module(&storing).expect("sharded load");
    assert_eq!(
        sharded.pinned_modules(),
        vec![1],
        "the pin hint must force single ownership"
    );
    assert!(
        sharded.replicated_modules().is_empty(),
        "a pin-hinted program must not replicate"
    );
    for module in 2..=TENANTS {
        let config = tenant_module(module, 1000 + module);
        single.load_module(&config).expect("single load");
        sharded.load_module(&config).expect("sharded load");
    }

    let mut migrations = 0usize;
    for (round, plan) in [8usize, 2, 5, 1, 3].into_iter().enumerate() {
        for _ in 0..4 {
            let burst: Vec<Packet> = (0..48).map(|_| random_packet(&mut rng)).collect();
            let expected = single.process_batch(burst.clone());
            let got = sharded.process_batch(burst).expect("deterministic mode");
            for (a, b) in expected.iter().zip(&got) {
                assert_eq!(project(a), project(b), "round {round}");
            }
        }
        let before = sharded
            .read_stateful_aggregate(ModuleId::new(1), 0, 2)
            .unwrap();
        let report = sharded.resize(plan).expect("resize");
        migrations += report.migrated_modules;
        // The pinned tenant's stored word survived the move bit-for-bit —
        // and only one replica holds it.
        assert_eq!(
            sharded.read_stateful_aggregate(ModuleId::new(1), 0, 2),
            Some(before),
            "round {round}: stored word lost in migration"
        );
        let live_copies = (0..sharded.shard_count())
            .filter(|&shard| {
                sharded
                    .shard_pipeline(shard)
                    .and_then(|p| p.read_stateful(ModuleId::new(1), 0, 2))
                    .is_some_and(|word| word != 0)
            })
            .count();
        assert!(
            live_copies <= 1,
            "round {round}: non-mergeable state replicated ({live_copies} copies)"
        );
    }
    assert!(migrations > 0, "the schedule must actually move tenants");

    // Final totals: the storing word equals the single pipeline's, counters
    // and mergeable words aggregate exactly.
    assert_eq!(
        single.read_stateful(ModuleId::new(1), 0, 2),
        sharded.read_stateful_aggregate(ModuleId::new(1), 0, 2),
        "stored (non-mergeable) state diverged from the lone pipeline"
    );
    let aggregated = sharded.aggregated_counters().expect("snapshot applies");
    for module in 1..=TENANTS {
        assert_eq!(
            single.module_counters(ModuleId::new(module)).unwrap(),
            aggregated.get(&module).copied().unwrap_or_default(),
            "module {module}"
        );
        assert_eq!(
            single.read_stateful(ModuleId::new(module), 0, 0),
            sharded.read_stateful_aggregate(ModuleId::new(module), 0, 0),
            "module {module} mergeable total"
        );
    }
}

#[test]
fn five_tuple_steering_preserves_mergeable_state_totals() {
    // Under 5-tuple steering one tenant's flows spread over shards; the
    // rewrite action is stateless and the `loadd` counter is additive, so
    // forwarded bytes and aggregated counter totals must still match the
    // single pipeline even though per-shard state diverges.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let params = TABLE5.with_table_depth(64);
    let mut single = MenshenPipeline::new(params);
    let mut sharded = ShardedRuntime::new(
        params,
        RuntimeOptions::deterministic(4).with_steering(SteeringMode::FiveTuple),
    );
    for module in 1..=TENANTS {
        let config = tenant_module(module, 2000 + module);
        single.load_module(&config).expect("single load");
        sharded.load_module(&config).expect("sharded load");
    }
    for _ in 0..20 {
        let burst: Vec<Packet> = (0..48).map(|_| random_packet(&mut rng)).collect();
        let expected = single.process_batch(burst.clone());
        let got = sharded.process_batch(burst).expect("deterministic mode");
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(project(a), project(b));
        }
    }
    let aggregated = sharded.aggregated_counters().expect("snapshot applies");
    for module in 1..=TENANTS {
        assert_eq!(
            single.module_counters(ModuleId::new(module)).unwrap(),
            aggregated.get(&module).copied().unwrap_or_default(),
            "module {module}"
        );
        assert_eq!(
            single.read_stateful(ModuleId::new(module), 0, 0),
            sharded.read_stateful_aggregate(ModuleId::new(module), 0, 0),
            "module {module} merged stateful total"
        );
    }
}

/// Builds the storing (non-mergeable) tenant used by the replication tests:
/// the shared flow-rule shape plus a `store` of the dst-IP container into
/// stateful word 2. Without a pin hint it classifies as Replicated.
fn storing_tenant(module_id: u16, rewrite_port: u16) -> ModuleConfig {
    let mut storing = tenant_module(module_id, rewrite_port);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    storing
}

/// The state-compute-replication acceptance scenario: a storing
/// (non-mergeable) program runs UNPINNED under 5-tuple steering for every
/// shard count 1..=8. Each shard owns only the flows hashed to it and
/// rebuilds the rest of the program's state from dispatcher digests, so
/// per-position verdicts, aggregated counter totals and — on EVERY replica —
/// the stateful words must stay bit-identical to the lone pipeline.
#[test]
fn replicated_storing_program_matches_the_lone_pipeline_across_shard_counts() {
    for shards in 1..=8usize {
        let mut rng = StdRng::seed_from_u64(0x5C2_0001 + shards as u64);
        let params = TABLE5.with_table_depth(64);
        let mut single = MenshenPipeline::new(params);
        let mut sharded = ShardedRuntime::new(
            params,
            RuntimeOptions::deterministic(shards).with_steering(SteeringMode::FiveTuple),
        );
        let storing = storing_tenant(1, 1001);
        single.load_module(&storing).expect("single load");
        sharded.load_module(&storing).expect("sharded load");
        assert_eq!(
            sharded.replicated_modules(),
            vec![1],
            "the storing program must replicate, not pin"
        );
        assert!(
            sharded.pinned_modules().is_empty(),
            "no program asked for the pin hint"
        );
        for module in 2..=TENANTS {
            let config = tenant_module(module, 1000 + module);
            single.load_module(&config).expect("single load");
            sharded.load_module(&config).expect("sharded load");
        }

        for burst_index in 0..12 {
            let burst: Vec<Packet> = (0..48).map(|_| random_packet(&mut rng)).collect();
            let expected = single.process_batch(burst.clone());
            let got = sharded.process_batch(burst).expect("deterministic mode");
            for (position, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(
                    project(a),
                    project(b),
                    "{shards} shards, burst {burst_index}, packet {position}"
                );
            }
        }

        // EVERY replica holds the complete stored word and the complete
        // per-flow counter word, bit-identical to the lone pipeline: digest
        // replay advanced the state for every packet a replica never saw.
        let stored = single.read_stateful(ModuleId::new(1), 0, 2);
        let counted = single.read_stateful(ModuleId::new(1), 0, 0);
        assert!(stored.is_some(), "the workload must have hit tenant 1");
        for shard in 0..shards {
            let replica = sharded.shard_pipeline(shard).expect("shard pipeline");
            assert_eq!(
                replica.read_stateful(ModuleId::new(1), 0, 2),
                stored,
                "{shards} shards: replica {shard} stored word diverged"
            );
            assert_eq!(
                replica.read_stateful(ModuleId::new(1), 0, 0),
                counted,
                "{shards} shards: replica {shard} counter word diverged"
            );
        }
        assert_eq!(
            sharded.read_stateful_aggregate(ModuleId::new(1), 0, 2),
            stored,
            "{shards} shards: the aggregate read must surface the replica word"
        );

        // Counter totals still aggregate exactly: digest replay bumps no
        // traffic counters, so replication never double-counts.
        let aggregated = sharded.aggregated_counters().expect("snapshot applies");
        for module in 1..=TENANTS {
            assert_eq!(
                single.module_counters(ModuleId::new(module)).unwrap(),
                aggregated.get(&module).copied().unwrap_or_default(),
                "{shards} shards: module {module} counters diverged"
            );
        }
        for module in 2..=TENANTS {
            assert_eq!(
                single.read_stateful(ModuleId::new(module), 0, 0),
                sharded.read_stateful_aggregate(ModuleId::new(module), 0, 0),
                "{shards} shards: module {module} mergeable total diverged"
            );
        }

        // Digest traffic flowed exactly when there were peers to inform.
        let (digest_packets, digest_bytes) = sharded.digest_totals();
        if shards > 1 {
            assert!(
                digest_packets > 0,
                "{shards} shards: replication must generate digests"
            );
            assert!(digest_bytes >= digest_packets, "digests carry wire bytes");
        } else {
            assert_eq!(digest_packets, 0, "a lone shard has no peers to inform");
        }
    }
}

/// Elastic resizes of a replicated program: growing seeds the new replicas
/// with a whole copy of the state (not a partition of it), shrinking
/// preserves counter totals while retiring surplus replicas, and the
/// program stays equivalent to the lone pipeline across the whole schedule.
#[test]
fn replicated_program_survives_elastic_resizes() {
    let mut rng = StdRng::seed_from_u64(0x5C2_E1A5);
    let params = TABLE5.with_table_depth(64);
    let mut single = MenshenPipeline::new(params);
    let mut sharded = ShardedRuntime::new(
        params,
        RuntimeOptions::deterministic(2).with_steering(SteeringMode::FiveTuple),
    );
    let storing = storing_tenant(1, 1001);
    single.load_module(&storing).expect("single load");
    sharded.load_module(&storing).expect("sharded load");
    assert_eq!(sharded.replicated_modules(), vec![1]);
    for module in 2..=TENANTS {
        let config = tenant_module(module, 1000 + module);
        single.load_module(&config).expect("single load");
        sharded.load_module(&config).expect("sharded load");
    }

    for (round, plan) in [5usize, 3, 8, 1, 4].into_iter().enumerate() {
        for _ in 0..4 {
            let burst: Vec<Packet> = (0..48).map(|_| random_packet(&mut rng)).collect();
            let expected = single.process_batch(burst.clone());
            let got = sharded.process_batch(burst).expect("deterministic mode");
            for (position, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(project(a), project(b), "round {round}, packet {position}");
            }
        }
        let stored = single.read_stateful(ModuleId::new(1), 0, 2);
        sharded.resize(plan).expect("resize");
        assert_eq!(sharded.shard_count(), plan);
        // Every replica on the NEW layout holds the whole stored word:
        // grow-seeding copied it to the fresh shards, shrinking kept it on
        // the survivors.
        for shard in 0..plan {
            let replica = sharded.shard_pipeline(shard).expect("shard pipeline");
            assert_eq!(
                replica.read_stateful(ModuleId::new(1), 0, 2),
                stored,
                "round {round}: replica {shard} lost the stored word in the resize"
            );
        }
        // Counter totals survived the resize exactly (retired replicas hand
        // their partial counters to a survivor; fresh seeds start at zero).
        let aggregated = sharded.aggregated_counters().expect("snapshot applies");
        assert_eq!(
            single.module_counters(ModuleId::new(1)).unwrap(),
            aggregated.get(&1).copied().unwrap_or_default(),
            "round {round}: storing tenant counters diverged across the resize"
        );
    }

    // Final totals for every tenant.
    let aggregated = sharded.aggregated_counters().expect("snapshot applies");
    for module in 1..=TENANTS {
        assert_eq!(
            single.module_counters(ModuleId::new(module)).unwrap(),
            aggregated.get(&module).copied().unwrap_or_default(),
            "module {module}"
        );
    }
    assert_eq!(
        single.read_stateful(ModuleId::new(1), 0, 2),
        sharded.read_stateful_aggregate(ModuleId::new(1), 0, 2),
        "stored word diverged from the lone pipeline after the schedule"
    );
}
