//! Digest determinism: for one fixed packet trace, the per-shard digest
//! streams — the (module, field-values) sequences each replica replays —
//! and the final stateful words are invariant in the number of dispatchers
//! that carry the trace. Per-module dispatcher affinity pins a replicated
//! module's packets to one dispatcher, so no interleaving of 1..=4
//! dispatcher queues can reorder its digest stream. The `before` stamps ARE
//! allowed to differ (they are scatter-relative positions), so the
//! comparison here is field-level and state-level, not byte-level:
//!
//! * a digest-only replica that replays the module's packets in trace order
//!   via [`MenshenPipeline::apply_state_digest`] must land on the same
//!   stateful words as every runtime replica, for every dispatcher count —
//!   if any runtime dropped, duplicated or reordered a digest, its storing
//!   word (last-writer-wins) or counting word (occurrence count) would
//!   diverge;
//! * the digest packet/byte totals must be identical across dispatcher
//!   counts (same stream, different carriage);
//! * the final stateful words must be bit-identical across dispatcher
//!   counts, sprays, and the lone reference pipeline.
//!
//! In the style of the repository's other property tests this is a seeded
//! randomized loop: every failure reproduces from the printed seed.

use menshen::prelude::*;
use menshen_bench::workloads::{flow_dst_ip, flow_rule_tenant_with_port};
use menshen_core::ModuleConfig;
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::action::AluInstruction;
use menshen_rmt::phv::ContainerRef as C;
use menshen_runtime::{DispatchSpray, ShardedRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TENANTS: u16 = 4;
const FLOWS_PER_TENANT: usize = 4;
const STORING: u16 = 1;

/// The storing (non-mergeable) tenant: the shared flow-rule shape plus a
/// `store` of the dst-IP container into stateful word 2. Classifies as
/// Replicated under 5-tuple steering.
fn storing_tenant(module_id: u16, rewrite_port: u16) -> ModuleConfig {
    let mut storing = flow_rule_tenant_with_port(module_id, FLOWS_PER_TENANT, rewrite_port);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    storing
}

/// A random tenant packet, tagged with the module it belongs to: mostly
/// flow-rule hits, some misses. No untagged or reconfiguration frames —
/// module membership must be decidable by construction so the test can
/// rebuild the digest stream independently of the runtime.
fn random_packet(rng: &mut StdRng) -> (u16, Packet) {
    let module = rng.gen_range(1..=TENANTS);
    let dst = if rng.gen_bool(0.8) {
        let ip = flow_dst_ip(module, rng.gen_range(0..FLOWS_PER_TENANT));
        [
            ((ip >> 24) & 0xff) as u8,
            ((ip >> 16) & 0xff) as u8,
            ((ip >> 8) & 0xff) as u8,
            (ip & 0xff) as u8,
        ]
    } else {
        [10, 9, 9, rng.gen_range(1..250u8)]
    };
    let packet = PacketBuilder::udp_data(
        module,
        [10, 0, 0, rng.gen_range(1..250u8)],
        dst,
        rng.gen_range(1024..65000u16),
        80,
        &[0u8; 8],
    );
    (module, packet)
}

#[test]
fn digest_streams_are_invariant_in_the_dispatcher_count() {
    for seed in [0xD16_0001u64, 0xD16_0BEE, 0xD16_5EED] {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace: Vec<Vec<(u16, Packet)>> = (0..10)
            .map(|_| {
                (0..rng.gen_range(8..48usize))
                    .map(|_| random_packet(&mut rng))
                    .collect()
            })
            .collect();
        let params = TABLE5.with_table_depth(64);
        let storing = storing_tenant(STORING, 1001);

        // Reference 1: the lone pipeline processing the whole trace.
        let mut single = MenshenPipeline::new(params);
        single.load_module(&storing).expect("single load");
        for module in 2..=TENANTS {
            let config = flow_rule_tenant_with_port(module, FLOWS_PER_TENANT, 1000 + module);
            single.load_module(&config).expect("single load");
        }
        for burst in &trace {
            single.process_batch(burst.iter().map(|(_, p)| p.clone()).collect());
        }

        // Reference 2: a digest-only replica that never sees a packet. It
        // replays the storing module's packets in trace order, rebuilt from
        // the same digest recipe the dispatchers use. Any runtime replica
        // whose stream was reordered, duplicated or truncated must diverge
        // from it in the storing word (last-writer-wins) or the counting
        // word (occurrence count).
        let mut replayer = MenshenPipeline::new(params);
        replayer.load_module(&storing).expect("replayer load");
        let spec = replayer
            .module_digest_spec(ModuleId::new(STORING))
            .expect("the storing parser must be digestible");
        for burst in &trace {
            for (module, packet) in burst {
                if *module == STORING {
                    replayer.apply_state_digest(&spec.extract(packet, 0));
                }
            }
        }
        let stored = single.read_stateful(ModuleId::new(STORING), 0, 2);
        let counted = single.read_stateful(ModuleId::new(STORING), 0, 0);
        assert!(stored.is_some(), "seed {seed}: trace never hit the tenant");
        assert_eq!(
            replayer.read_stateful(ModuleId::new(STORING), 0, 2),
            stored,
            "seed {seed}: digest replay itself diverged from packet processing"
        );
        assert_eq!(
            replayer.read_stateful(ModuleId::new(STORING), 0, 0),
            counted,
            "seed {seed}: digest replay miscounted"
        );

        // The property: every dispatcher count (and both sprays) carries
        // the same per-shard digest streams, so every replica's words and
        // the runtime-wide digest totals are invariant.
        let shards = 4usize;
        let mut totals: Option<(u64, u64)> = None;
        for dispatchers in 0..=4usize {
            for spray in [DispatchSpray::RoundRobin, DispatchSpray::FlowAffine] {
                let mut sharded = ShardedRuntime::new(
                    params,
                    RuntimeOptions::deterministic(shards)
                        .with_dispatchers(dispatchers)
                        .with_spray(spray)
                        .with_steering(SteeringMode::FiveTuple),
                );
                sharded.load_module(&storing).expect("sharded load");
                assert_eq!(sharded.replicated_modules(), vec![STORING]);
                for module in 2..=TENANTS {
                    let config =
                        flow_rule_tenant_with_port(module, FLOWS_PER_TENANT, 1000 + module);
                    sharded.load_module(&config).expect("sharded load");
                }
                for burst in &trace {
                    sharded
                        .process_batch(burst.iter().map(|(_, p)| p.clone()).collect())
                        .expect("deterministic mode");
                }
                for shard in 0..shards {
                    let replica = sharded.shard_pipeline(shard).expect("shard pipeline");
                    assert_eq!(
                        replica.read_stateful(ModuleId::new(STORING), 0, 2),
                        stored,
                        "seed {seed}, {dispatchers} dispatchers ({spray:?}): \
                         replica {shard} stored word diverged"
                    );
                    assert_eq!(
                        replica.read_stateful(ModuleId::new(STORING), 0, 0),
                        counted,
                        "seed {seed}, {dispatchers} dispatchers ({spray:?}): \
                         replica {shard} counting word diverged"
                    );
                }
                let observed = sharded.digest_totals();
                assert!(
                    observed.0 > 0,
                    "seed {seed}: replication must generate digests"
                );
                match totals {
                    None => totals = Some(observed),
                    Some(expected) => assert_eq!(
                        expected, observed,
                        "seed {seed}, {dispatchers} dispatchers ({spray:?}): \
                         digest totals diverged — the stream is not the same stream"
                    ),
                }
            }
        }
    }
}
