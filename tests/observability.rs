//! End-to-end tests of the observability plane: the control-plane event
//! trace must round-trip through the Chrome trace-event exporter, the
//! metrics snapshot must emit parseable Prometheus text exposition, and the
//! packet-conservation audit must balance after real traffic.

use menshen::core::{validate_prometheus, MenshenPipeline, MetricValue, MetricsSnapshot};
use menshen::runtime::{
    chrome_trace_to_events, ControlEventKind, RuntimeOptions, ShardedRuntime, SteeringMode,
};
use menshen::trace::replay::{replay_sharded, Pacing};
use menshen::trace::synth::{synthesize, WorkloadSpec};
use menshen_bench::workloads::{flow_rule_tenant, flow_rule_tenant_with_port, flow_workload};
use menshen_json::Json;
use menshen_rmt::action::AluInstruction;
use menshen_rmt::phv::ContainerRef as C;

const TENANTS: u16 = 4;
const RULES: usize = 64;

fn template() -> MenshenPipeline {
    let params = menshen::rmt::TABLE5.with_table_depth(1024);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }
    pipeline
}

fn trace(packets: usize) -> Vec<menshen::packet::Packet> {
    let mut spec = WorkloadSpec::heavy_tailed(TENANTS, 96, packets);
    spec.rules_per_tenant = RULES;
    spec.mean_rate_pps = 50_000_000.0;
    synthesize(&spec).unwrap()
}

/// A resize leaves its whole life cycle in the event trace, and the trace
/// survives the Chrome trace-event JSON exporter *exactly* — every event
/// comes back with the same timestamp and payload after a full
/// serialise → pretty-print → parse → import round trip.
#[test]
fn reshard_event_trace_round_trips_through_chrome_json() {
    let mut runtime = ShardedRuntime::from_pipeline(&template(), RuntimeOptions::threaded(2));
    // A control-plane load after construction, so the trace also carries a
    // module life-cycle event (template modules predate the runtime).
    runtime
        .load_module(&flow_rule_tenant(TENANTS + 1, RULES))
        .unwrap();
    runtime.submit_owned(trace(512)).unwrap();
    runtime.flush();
    runtime.resize(4).unwrap();
    runtime.submit_owned(trace(256)).unwrap();
    runtime.flush();
    runtime.resize(2).unwrap();

    let events = runtime.control_events();
    assert_eq!(runtime.control_events_dropped(), 0);
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    // Both resizes ran their full life cycle; the scale-in also retired
    // shards and both rewrote the RETA.
    for expected in [
        "module_loaded",
        "epoch_published",
        "epoch_applied",
        "resize_started",
        "state_exported",
        "state_injected",
        "shards_retired",
        "reta_rewritten",
        "resize_completed",
    ] {
        assert!(
            names.contains(&expected),
            "event trace is missing {expected:?}; got {names:?}"
        );
    }
    assert_eq!(
        names.iter().filter(|n| **n == "resize_completed").count(),
        2,
        "both resizes must complete"
    );
    // The span event carries the measured pause, and it matches a real
    // start-before-end interval.
    let completed = events
        .iter()
        .filter_map(|e| match e.kind {
            ControlEventKind::ResizeCompleted {
                from_shards,
                to_shards,
                start_ns,
                pause_ns,
                ..
            } => Some((from_shards, to_shards, start_ns, pause_ns, e.ts_ns)),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(completed[0].0, 2);
    assert_eq!(completed[0].1, 4);
    assert_eq!(completed[1].0, 4);
    assert_eq!(completed[1].1, 2);
    for (_, _, start_ns, pause_ns, ts_ns) in completed {
        assert!(start_ns <= ts_ns);
        assert!(pause_ns > 0);
    }

    // Exact round trip through the Chrome trace-event exposition.
    let exported = runtime.export_chrome_trace();
    let reparsed = Json::parse(&exported.pretty()).unwrap();
    let restored = chrome_trace_to_events(&reparsed).unwrap();
    assert_eq!(restored, events);
}

/// The metrics snapshot of a runtime that has seen traffic and a resize is
/// a valid Prometheus text exposition and carries the headline series.
#[test]
fn metrics_snapshot_exports_valid_prometheus_and_json() {
    let mut runtime = ShardedRuntime::from_pipeline(&template(), RuntimeOptions::deterministic(2));
    let verdicts = runtime.process_batch(trace(512)).unwrap();
    assert_eq!(verdicts.len(), 512);

    let snapshot = runtime.metrics_snapshot().unwrap();
    let text = snapshot.to_prometheus();
    let series = validate_prometheus(&text).expect("exposition must parse");
    assert!(series >= 8, "expected a rich exposition, got:\n{text}");
    for name in [
        "menshen_control_epoch",
        "menshen_shard_packets_total",
        "menshen_packet_sojourn_ns",
        "menshen_tenant_forwarded_total",
    ] {
        assert!(text.contains(name), "missing series {name} in:\n{text}");
    }
    // Every tenant that forwarded traffic has a labelled sample.
    assert!(text.contains("tenant=\"1\""));

    // The JSON export carries the same number of series.
    let json = snapshot.to_json();
    let rendered = json.pretty();
    assert!(rendered.contains("menshen_shard_packets_total"));
}

/// The digest counters ride the metrics plane: every snapshot reports
/// exactly its runtime's [`ShardedRuntime::digest_totals`], a single-shard
/// runtime reports zero (no replication peers → no digest traffic), and two
/// runtimes' snapshots fold by [`MetricsSnapshot::merge`] into the exact
/// sum — so a fleet-level scrape can aggregate digest overhead without
/// double counting or loss.
#[test]
fn digest_counters_ride_and_merge_in_the_metrics_snapshot() {
    let params = menshen::rmt::TABLE5.with_table_depth(1024);
    let mut template = MenshenPipeline::new(params);
    let mut storing = flow_rule_tenant_with_port(1, RULES, 1001);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    template.load_module(&storing).unwrap();
    for module_id in 2..=TENANTS {
        template
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }

    let counter = |snapshot: &MetricsSnapshot, name: &str| -> u64 {
        match snapshot.get(name, &[]) {
            Some(MetricValue::Counter(value)) => *value,
            other => panic!("{name} must be a bare counter, got {other:?}"),
        }
    };
    let run = |shards: usize, packets: usize| -> (MetricsSnapshot, (u64, u64)) {
        let mut runtime = ShardedRuntime::from_pipeline(
            &template,
            RuntimeOptions::deterministic(shards).with_steering(SteeringMode::FiveTuple),
        );
        assert_eq!(runtime.replicated_modules(), vec![1]);
        runtime
            .process_batch(flow_workload(TENANTS, RULES, packets))
            .unwrap();
        let snapshot = runtime.metrics_snapshot().unwrap();
        (snapshot, runtime.digest_totals())
    };

    // Each snapshot reports its own runtime's totals, byte for byte.
    let (alone, totals_alone) = run(1, 256);
    let (small, totals_small) = run(2, 256);
    let (wide, totals_wide) = run(4, 512);
    for (snapshot, (packets, bytes)) in [
        (&alone, totals_alone),
        (&small, totals_small),
        (&wide, totals_wide),
    ] {
        assert_eq!(
            counter(snapshot, "menshen_runtime_digest_packets_total"),
            packets
        );
        assert_eq!(
            counter(snapshot, "menshen_runtime_digest_bytes_total"),
            bytes
        );
    }
    assert_eq!(totals_alone, (0, 0), "one shard has no replication peers");
    assert!(totals_small.0 > 0, "two shards must exchange digests");
    assert!(
        totals_wide.0 > totals_small.0,
        "more peers, more digest fan-out"
    );

    // Merging folds the counters into the exact sum and the merged
    // exposition still parses.
    let mut fleet = small.clone();
    fleet.merge(&wide);
    fleet.merge(&alone);
    assert_eq!(
        counter(&fleet, "menshen_runtime_digest_packets_total"),
        totals_small.0 + totals_wide.0
    );
    assert_eq!(
        counter(&fleet, "menshen_runtime_digest_bytes_total"),
        totals_small.1 + totals_wide.1
    );
    validate_prometheus(&fleet.to_prometheus()).expect("merged exposition must parse");
}

/// After a replay through the threaded runtime the conservation audit
/// balances: submitted = processed = forwarded + dropped = ledger total,
/// with nothing left in flight.
#[test]
fn conservation_audit_balances_after_threaded_replay() {
    let mut runtime = ShardedRuntime::from_pipeline(&template(), RuntimeOptions::threaded(2));
    let packets = trace(1024);
    let report = replay_sharded(&mut runtime, &packets, Pacing::Unpaced).unwrap();
    assert!(report.all_packets_accounted());

    let audit = runtime.conservation_audit().unwrap();
    assert!(audit.is_balanced(), "audit must balance: {audit:?}");
    assert_eq!(audit.submitted, 1024);
    assert_eq!(audit.processed, 1024);
    assert_eq!(audit.ledger_total, 1024);
    assert_eq!(audit.in_flight, 0);
    assert!(!audit.lossy);
    assert_eq!(audit.forwarded + audit.dropped, 1024);
}
