//! End-to-end test of the trace subsystem: synthesise a heavy-tailed trace,
//! round-trip it through a real pcap file, replay it through the threaded
//! sharded runtime, and check that every packet is accounted for and the
//! latency/balance telemetry is consistent.

use menshen::core::{MenshenPipeline, ModuleId};
use menshen::runtime::{RuntimeOptions, ShardedRuntime, SteeringMode};
use menshen::trace::pcap::{read_pcap, write_pcap, Endianness, TimestampPrecision};
use menshen::trace::replay::{replay_pipeline, replay_sharded, Pacing};
use menshen::trace::synth::{synthesize, WorkloadSpec};
use menshen_bench::workloads::flow_rule_tenant;
use menshen_rmt::TABLE5;

const TENANTS: u16 = 4;
const RULES: usize = 64;

fn template() -> MenshenPipeline {
    let params = TABLE5.with_table_depth(1024);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES))
            .unwrap();
    }
    pipeline
}

fn trace() -> Vec<menshen::packet::Packet> {
    let mut spec = WorkloadSpec::heavy_tailed(TENANTS, 96, 1536);
    spec.rules_per_tenant = RULES;
    spec.mean_rate_pps = 20_000_000.0;
    synthesize(&spec).unwrap()
}

#[test]
fn synthesised_trace_survives_pcap_and_replays_with_full_accounting() {
    let original = trace();

    // Through the wire format and back, byte-identical.
    for (precision, lossless) in [
        (TimestampPrecision::Nanos, true),
        (TimestampPrecision::Micros, false),
    ] {
        let mut capture = Vec::new();
        write_pcap(&mut capture, &original, precision, Endianness::Little).unwrap();
        let restored = read_pcap(&capture).unwrap();
        assert_eq!(restored.len(), original.len());
        for (got, want) in restored.iter().zip(&original) {
            assert_eq!(got.bytes(), want.bytes());
            if lossless {
                assert_eq!(got.timestamp_ns, want.timestamp_ns);
            } else {
                assert_eq!(got.timestamp_ns / 1_000, want.timestamp_ns / 1_000);
            }
        }
    }

    // Replay the restored packets through the real threaded runtime.
    let mut capture = Vec::new();
    write_pcap(
        &mut capture,
        &original,
        TimestampPrecision::Nanos,
        Endianness::Big,
    )
    .unwrap();
    let restored = read_pcap(&capture).unwrap();
    let template = template();
    let mut runtime = ShardedRuntime::from_pipeline(
        &template,
        RuntimeOptions::threaded(3).with_steering(SteeringMode::FiveTuple),
    );
    let report = replay_sharded(&mut runtime, &restored, Pacing::Unpaced).unwrap();

    // Every packet accounted for by the device's own tallies, and the
    // workload is all-hits, so nothing drops either.
    assert!(report.all_packets_accounted(), "{report:?}");
    assert_eq!(report.submitted, 1536);
    assert_eq!(report.forwarded, 1536);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.shard_packets.iter().sum::<u64>(), 1536);

    // Latency telemetry: one sample per packet, recorded per shard, merged
    // on snapshot; percentiles are monotone.
    assert_eq!(report.latency.count(), 1536);
    let p = report.latency.percentiles();
    assert!(p.p50_ns > 0);
    assert!(p.p50_ns <= p.p90_ns && p.p90_ns <= p.p99_ns && p.p999_ns <= p.max_ns);

    // Per-tenant counters aggregate correctly across shards under 5-tuple
    // steering (additive state — the mergeable regime).
    let counters = runtime.aggregated_counters().unwrap();
    let total_in: u64 = counters.values().map(|c| c.packets_in).sum();
    assert_eq!(total_in, 1536);
    for module_id in 1..=TENANTS {
        let tenant_packets = restored
            .iter()
            .filter(|p| p.vlan_id().map(|v| v.value()) == Ok(module_id))
            .count() as u64;
        assert_eq!(
            counters[&module_id].packets_in, tenant_packets,
            "tenant {module_id}"
        );
    }
    runtime.shutdown();
}

#[test]
fn paced_replay_through_a_lone_pipeline_matches_the_capture_clock() {
    let trace = trace();
    let mut pipeline = template();
    let report = replay_pipeline(&mut pipeline, &trace, Pacing::TimestampFaithful);
    assert!(report.all_packets_accounted());
    assert_eq!(report.forwarded, 1536);
    // 1536 packets at 20 Mpps ≈ 77 µs of capture time; the open-loop pacer
    // may not finish faster than the capture clock.
    let span_secs = (trace.last().unwrap().timestamp_ns - trace[0].timestamp_ns) as f64 / 1e9;
    assert!(report.wall_secs >= span_secs * 0.9);
    assert_eq!(report.latency.count(), 1536);
}

#[test]
fn non_mergeable_state_replicates_under_five_tuple_steering_unless_pin_hinted() {
    use menshen::rmt::action::{AluInstruction, VliwAction};
    use menshen::rmt::phv::ContainerRef as C;

    let mut config = flow_rule_tenant(1, 4);
    config.stages[0].rules[0].action =
        VliwAction::nop().with(C::h4(3), AluInstruction::store(C::h4(1), 0));
    // Non-mergeable storing state defaults to state-compute replication:
    // every shard carries a replica kept in lockstep by digest replay, so
    // no pin is needed and the tenant scales past one shard.
    let mut runtime = ShardedRuntime::new(
        TABLE5.with_table_depth(1024),
        RuntimeOptions::threaded(2).with_steering(SteeringMode::FiveTuple),
    );
    runtime.load_module(&config).unwrap();
    assert!(runtime.pinned_modules().is_empty());
    assert_eq!(runtime.replicated_modules(), vec![1]);
    runtime.shutdown();
    // The pin hint opts back into the tenant-affine single-owner regime
    // (one shard owns the state; live resharding migrates that copy).
    let mut pinned = ShardedRuntime::new(
        TABLE5.with_table_depth(1024),
        RuntimeOptions::threaded(2).with_steering(SteeringMode::FiveTuple),
    );
    pinned
        .load_module(&config.clone().with_pinned(true))
        .unwrap();
    assert_eq!(pinned.pinned_modules(), vec![1]);
    assert!(pinned.replicated_modules().is_empty());
    pinned.shutdown();
    // Tenant-affine needs neither pin nor replication (every module is
    // already single-owner).
    let mut affine =
        ShardedRuntime::new(TABLE5.with_table_depth(1024), RuntimeOptions::threaded(2));
    affine.load_module(&config).unwrap();
    assert!(affine.pinned_modules().is_empty());
    assert!(affine.replicated_modules().is_empty());
    assert_eq!(
        affine.standby_replica().loaded_modules(),
        vec![ModuleId::new(1)]
    );
}
