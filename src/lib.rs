//! Menshen-RS: a Rust reproduction of *"Isolation Mechanisms for High-Speed
//! Packet-Processing Pipelines"* (NSDI 2022).
//!
//! This umbrella crate re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`packet`] — wire formats (Ethernet / 802.1Q / IPv4 / UDP / TCP).
//! * [`rmt`] — the baseline RMT pipeline simulator.
//! * [`core`] — Menshen's isolation layer (overlays, space partitioning,
//!   packet filter, daisy-chain reconfiguration, system-level module,
//!   control plane).
//! * [`compiler`] — the module DSL front end and Menshen backend.
//! * [`programs`] — the evaluated modules of Table 3.
//! * [`runtime`] — the sharded multi-core runtime: RSS flow steering,
//!   per-shard pipeline replicas, epoch-versioned reconfiguration.
//! * [`io`] — pluggable packet I/O backends (in-process, trace replay, UDP
//!   sockets) and the network-attached [`io::Service`] runner.
//! * [`trace`] — trace-driven traffic: pcap/pcapng I/O, heavy-tailed
//!   workload synthesis, paced replay with latency percentiles.
//! * [`testbed`] — traffic generation and the §5 experiments.
//! * [`cost`] — FPGA / ASIC / configuration-time cost models.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.

#![forbid(unsafe_code)]

pub use menshen_compiler as compiler;
pub use menshen_core as core;
pub use menshen_cost as cost;
pub use menshen_io as io;
pub use menshen_packet as packet;
pub use menshen_programs as programs;
pub use menshen_rmt as rmt;
pub use menshen_runtime as runtime;
pub use menshen_testbed as testbed;
pub use menshen_trace as trace;

/// A convenient prelude for examples and quick experiments.
pub mod prelude {
    pub use menshen_compiler::{compile_source, CompileOptions};
    pub use menshen_core::prelude::*;
    pub use menshen_io::{PacketIo, Service, ServiceConfig, UdpSocketIo};
    pub use menshen_packet::{Packet, PacketBuilder};
    pub use menshen_programs::{all_programs, EvaluatedProgram};
    pub use menshen_rmt::{PipelineParams, TABLE5};
    pub use menshen_runtime::{RuntimeOptions, ShardedRuntime, SteeringMode};
}
