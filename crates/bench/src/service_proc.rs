//! Two-process testbed orchestration: spawn `menshen-serve` and
//! `menshen-loadgen` as real OS processes and parse their stdout protocols.
//!
//! The binary paths come from the caller (a bench or integration test,
//! where `env!("CARGO_BIN_EXE_menshen-serve")` and
//! `env!("CARGO_BIN_EXE_menshen-loadgen")` resolve); this module owns the
//! lifecycle — announce-line parsing, the `DRAIN` handshake, and the final
//! `DRAINED` accounting line.

use menshen_json::Json;
use menshen_testbed::LoadgenSummary;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

/// Knobs for a spawned `menshen-serve`.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Rx queues (= dispatchers).
    pub queues: usize,
    /// Worker shards.
    pub shards: usize,
    /// Passthrough tenants pre-loaded into the template.
    pub tenants: u16,
    /// `results/metrics.prom`-style path to write the final exposition to
    /// (optional).
    pub metrics_path: Option<String>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            queues: 2,
            shards: 2,
            tenants: 4,
            metrics_path: None,
        }
    }
}

/// A running `menshen-serve` child with its announced addresses.
pub struct ServeProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
    /// Data-plane socket addresses, one per rx queue.
    pub data: Vec<SocketAddr>,
    /// Control-socket address.
    pub control: SocketAddr,
}

/// The service's final `DRAINED` accounting line, parsed.
#[derive(Debug, Clone, Copy)]
pub struct DrainLine {
    /// The service's own verdict on its books.
    pub balanced: bool,
    /// Packets the runtime accepted.
    pub submitted: u64,
    /// Of those, forwarded.
    pub forwarded: u64,
    /// Of those, dropped.
    pub dropped: u64,
    /// Late arrivals discarded at the I/O edge during shutdown.
    pub rx_drained: u64,
    /// Verdict echoes transmitted.
    pub tx: u64,
    /// Echo transmissions that failed.
    pub tx_errors: u64,
}

impl ServeProc {
    /// Spawns `exe` with `spec` and blocks until it announces `READY`.
    pub fn spawn(exe: &str, spec: &ServeSpec) -> ServeProc {
        let mut command = Command::new(exe);
        command
            .env("MENSHEN_SERVE_QUEUES", spec.queues.to_string())
            .env("MENSHEN_SERVE_SHARDS", spec.shards.to_string())
            .env("MENSHEN_SERVE_TENANTS", spec.tenants.to_string())
            .stdout(Stdio::piped());
        if let Some(path) = &spec.metrics_path {
            command.env("MENSHEN_SERVE_METRICS_PATH", path);
        }
        let mut child = command.spawn().expect("spawn menshen-serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("serve stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read READY line");
        let line = line.trim();
        let mut data = Vec::new();
        let mut control = None;
        for field in line
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY announcement, got {line:?}"))
            .split_whitespace()
        {
            if let Some(list) = field.strip_prefix("data=") {
                data = list
                    .split(',')
                    .map(|a| a.parse().expect("well-formed data address"))
                    .collect();
            } else if let Some(addr) = field.strip_prefix("control=") {
                control = Some(addr.parse().expect("well-formed control address"));
            }
        }
        ServeProc {
            child,
            stdout,
            data,
            control: control.expect("READY line names the control address"),
        }
    }

    /// Sends one request over the service's control socket.
    pub fn control(&self, request: &str) -> String {
        menshen_io::control_request(self.control, request, Duration::from_secs(10))
            .expect("control request")
    }

    /// Requests `DRAIN`, waits for the child to exit, and parses its final
    /// `DRAINED` accounting line.
    pub fn drain(mut self) -> DrainLine {
        let reply = self.control("DRAIN");
        assert_eq!(reply, "ok draining", "drain handshake");
        let mut last = String::new();
        let mut line = String::new();
        while self.stdout.read_line(&mut line).expect("read serve stdout") > 0 {
            if line.starts_with("DRAINED ") {
                last = line.trim().to_string();
            }
            line.clear();
        }
        let status = self.child.wait().expect("wait for serve exit");
        assert!(!last.is_empty(), "serve exited without a DRAINED line");
        let mut parsed = DrainLine {
            balanced: false,
            submitted: 0,
            forwarded: 0,
            dropped: 0,
            rx_drained: 0,
            tx: 0,
            tx_errors: 0,
        };
        for field in last.trim_start_matches("DRAINED ").split_whitespace() {
            let Some((key, value)) = field.split_once('=') else {
                continue;
            };
            match key {
                "balanced" => parsed.balanced = value == "true",
                "submitted" => parsed.submitted = value.parse().unwrap_or(0),
                "forwarded" => parsed.forwarded = value.parse().unwrap_or(0),
                "dropped" => parsed.dropped = value.parse().unwrap_or(0),
                "rx_drained" => parsed.rx_drained = value.parse().unwrap_or(0),
                "tx" => parsed.tx = value.parse().unwrap_or(0),
                "tx_errors" => parsed.tx_errors = value.parse().unwrap_or(0),
                _ => {}
            }
        }
        assert_eq!(
            status.code(),
            Some(if parsed.balanced { 0 } else { 2 }),
            "serve exit code matches its own balance verdict"
        );
        parsed
    }
}

/// Runs `menshen-loadgen` as a child process against `targets` and parses
/// its stdout JSON summary.
pub fn run_loadgen_proc(
    exe: &str,
    targets: &[SocketAddr],
    packets: usize,
    rate_pps: f64,
) -> LoadgenSummary {
    let list = targets
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let output = Command::new(exe)
        .env("MENSHEN_LOADGEN_TARGETS", list)
        .env("MENSHEN_LOADGEN_PACKETS", packets.to_string())
        .env("MENSHEN_LOADGEN_RATE_PPS", format!("{rate_pps}"))
        .stderr(Stdio::inherit())
        .output()
        .expect("run menshen-loadgen");
    let stdout = String::from_utf8(output.stdout).expect("loadgen stdout is UTF-8");
    let json = Json::parse(&stdout)
        .unwrap_or_else(|e| panic!("loadgen stdout is not JSON ({e:?}):\n{stdout}"));
    let summary = LoadgenSummary::from_json(&json).expect("loadgen summary fields");
    assert_eq!(
        output.status.code(),
        Some(if summary.lossless() { 0 } else { 2 }),
        "loadgen exit code matches its own loss verdict"
    );
    summary
}
