//! Shared helpers for the benchmark harness binaries.
//!
//! Every table/figure of the paper's evaluation has a binary in `src/bin/`
//! that regenerates it (see DESIGN.md for the index). Each binary prints a
//! human-readable table to stdout and, via [`write_json`], drops a
//! machine-readable copy under `results/` so EXPERIMENTS.md numbers can be
//! re-derived mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use menshen_json::{Json, ToJson};
use std::fs;
use std::path::PathBuf;

pub mod harness;
pub mod service_proc;
pub mod workloads;

/// Directory the harness binaries write their JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    write_json_at(&results_dir().join(format!("{name}.json")), value);
}

/// Serialises `value` as pretty JSON into an explicit `path`.
pub fn write_json_at<T: ToJson + ?Sized>(path: &std::path::Path, value: &T) {
    if let Err(error) = fs::write(path, value.to_json().pretty()) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

/// Path of the committed machine-readable baseline at the repository root.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_throughput.json")
}

/// Merge-updates one top-level section of the committed
/// `BENCH_throughput.json` baseline: the existing document is parsed, `key`
/// is inserted or replaced, and everything else is preserved — so the
/// hot-path bench and the shard-scaling bench can each own a section without
/// clobbering the other. A pre-sectioned legacy document (recognised by its
/// top-level `"benchmark"` name field) is wrapped under that name first.
///
/// Fails **loudly** (panics, so the bench binary exits non-zero and CI goes
/// red) if the merge would drop any section that existed before — a bench
/// run must never silently lose another bench's committed series.
pub fn update_baseline<T: ToJson + ?Sized>(key: &str, value: &T) {
    let path = baseline_path();
    let existing = fs::read_to_string(&path).ok();
    let merged = merge_baseline_section(existing.as_deref(), key, value.to_json())
        .unwrap_or_else(|message| panic!("{}: {message}", path.display()));
    write_json_at(&path, &merged);
}

/// The pure merge step behind [`update_baseline`], separated so the
/// no-section-dropped guarantee is unit-testable. Returns the merged
/// document, or an error message when the existing text must not be
/// overwritten (unparseable / non-object) or the merge would lose a
/// section.
pub fn merge_baseline_section(
    existing: Option<&str>,
    key: &str,
    value: Json,
) -> Result<Json, String> {
    let mut doc = match existing {
        // Never silently clobber the other benches' committed series: a
        // baseline that exists but does not parse *as an object* (merge
        // conflict, stray edit) must be repaired by a human, not overwritten
        // — `Json::set` on a non-object would replace the whole document.
        Some(text) => match Json::parse(text) {
            Ok(doc @ Json::Obj(_)) => doc,
            Ok(_) => return Err("exists but is not a JSON object; refusing to overwrite".into()),
            Err(error) => {
                return Err(format!(
                    "exists but is not valid JSON ({error}); refusing to overwrite"
                ))
            }
        },
        None => Json::Obj(Vec::new()),
    };
    if let Some(Json::Str(name)) = doc.get("benchmark").cloned() {
        let legacy = std::mem::replace(&mut doc, Json::Obj(Vec::new()));
        doc.set(&name, legacy);
    }
    let sections_before: Vec<String> = match &doc {
        Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    };
    doc.set(key, value);
    // The loud-failure guard: every pre-existing section must survive the
    // merge. `Json::set` preserves siblings today; this check makes that a
    // contract rather than an implementation detail.
    for section in &sections_before {
        if doc.get(section).is_none() {
            return Err(format!(
                "merge-updating section {key:?} dropped existing section {section:?}; \
                 refusing to write"
            ));
        }
    }
    Ok(doc)
}

/// Prints a section header in the style used by all harness binaries.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_existing_sections() {
        let existing = r#"{ "hot_path": { "mpps": 5 }, "shard_scaling": { "x": 1 } }"#;
        let merged =
            merge_baseline_section(Some(existing), "latency_percentiles", Json::from(42)).unwrap();
        assert!(merged.get("hot_path").is_some());
        assert!(merged.get("shard_scaling").is_some());
        assert_eq!(merged.get("latency_percentiles"), Some(&Json::from(42)));
        // Replacing an existing section keeps the others too.
        let replaced =
            merge_baseline_section(Some(existing), "hot_path", Json::from("new")).unwrap();
        assert_eq!(replaced.get("hot_path"), Some(&Json::from("new")));
        assert!(replaced.get("shard_scaling").is_some());
    }

    #[test]
    fn match_scaling_merge_preserves_every_committed_section() {
        // The exact shape the match_scaling bench exercises: merging its new
        // section into a baseline already carrying every other bench's
        // series must keep them all, whether the section is new or replaced.
        const SECTIONS: &[&str] = &[
            "hot_path_single_vs_batch",
            "shard_scaling",
            "latency_percentiles",
            "rss_balance",
            "dispatch_scaling",
            "capacity_knee",
            "reshard",
        ];
        let existing = Json::Obj(
            SECTIONS
                .iter()
                .map(|&s| (s.to_string(), Json::obj([("mpps", Json::from(1))])))
                .collect(),
        )
        .pretty();
        let section = Json::obj([("tiers", vec![1_000usize].to_json())]);
        let merged =
            merge_baseline_section(Some(&existing), "match_scaling", section.clone()).unwrap();
        for s in SECTIONS {
            assert!(merged.get(s).is_some(), "section {s} must survive");
        }
        assert!(merged.get("match_scaling").is_some());
        // Re-merging (a later full run updating its own numbers) keeps the
        // rest too.
        let again =
            merge_baseline_section(Some(&merged.pretty()), "match_scaling", section).unwrap();
        for s in SECTIONS {
            assert!(again.get(s).is_some(), "section {s} must survive re-merge");
        }
    }

    #[test]
    fn merge_wraps_legacy_documents_and_rejects_garbage() {
        let legacy = r#"{ "benchmark": "hot_path", "mpps": 5 }"#;
        let merged = merge_baseline_section(Some(legacy), "new_section", Json::from(1)).unwrap();
        assert!(merged.get("hot_path").is_some(), "legacy doc wrapped");
        assert!(merged.get("new_section").is_some());

        assert!(merge_baseline_section(Some("[1, 2]"), "k", Json::Null).is_err());
        assert!(merge_baseline_section(Some("{ not json"), "k", Json::Null).is_err());
        // A missing baseline starts fresh.
        let fresh = merge_baseline_section(None, "only", Json::from(7)).unwrap();
        assert_eq!(fresh.get("only"), Some(&Json::from(7)));
    }

    #[test]
    fn results_dir_is_creatable_and_json_written() {
        let dir = results_dir();
        assert!(dir.exists());
        write_json("bench_selftest", &vec![1, 2, 3]);
        let path = dir.join("bench_selftest.json");
        assert!(path.exists());
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains('1'));
    }
}
