//! Shared helpers for the benchmark harness binaries.
//!
//! Every table/figure of the paper's evaluation has a binary in `src/bin/`
//! that regenerates it (see DESIGN.md for the index). Each binary prints a
//! human-readable table to stdout and, via [`write_json`], drops a
//! machine-readable copy under `results/` so EXPERIMENTS.md numbers can be
//! re-derived mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use menshen_json::{Json, ToJson};
use std::fs;
use std::path::PathBuf;

pub mod harness;
pub mod workloads;

/// Directory the harness binaries write their JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    write_json_at(&results_dir().join(format!("{name}.json")), value);
}

/// Serialises `value` as pretty JSON into an explicit `path`.
pub fn write_json_at<T: ToJson + ?Sized>(path: &std::path::Path, value: &T) {
    if let Err(error) = fs::write(path, value.to_json().pretty()) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

/// Path of the committed machine-readable baseline at the repository root.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_throughput.json")
}

/// Merge-updates one top-level section of the committed
/// `BENCH_throughput.json` baseline: the existing document is parsed, `key`
/// is inserted or replaced, and everything else is preserved — so the
/// hot-path bench and the shard-scaling bench can each own a section without
/// clobbering the other. A pre-sectioned legacy document (recognised by its
/// top-level `"benchmark"` name field) is wrapped under that name first.
pub fn update_baseline<T: ToJson + ?Sized>(key: &str, value: &T) {
    let path = baseline_path();
    let mut doc = match fs::read_to_string(&path) {
        // Never silently clobber the other benches' committed series: a
        // baseline that exists but does not parse *as an object* (merge
        // conflict, stray edit) must be repaired by a human, not overwritten
        // — `Json::set` on a non-object would replace the whole document.
        Ok(text) => match Json::parse(&text) {
            Ok(doc @ Json::Obj(_)) => doc,
            Ok(_) => panic!(
                "{} exists but is not a JSON object; refusing to overwrite it",
                path.display()
            ),
            Err(error) => panic!(
                "{} exists but is not valid JSON ({error}); refusing to overwrite it",
                path.display()
            ),
        },
        Err(_) => Json::Obj(Vec::new()),
    };
    if let Some(Json::Str(name)) = doc.get("benchmark").cloned() {
        let legacy = std::mem::replace(&mut doc, Json::Obj(Vec::new()));
        doc.set(&name, legacy);
    }
    doc.set(key, value.to_json());
    write_json_at(&path, &doc);
}

/// Prints a section header in the style used by all harness binaries.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable_and_json_written() {
        let dir = results_dir();
        assert!(dir.exists());
        write_json("bench_selftest", &vec![1, 2, 3]);
        let path = dir.join("bench_selftest.json");
        assert!(path.exists());
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains('1'));
    }
}
