//! Shared helpers for the benchmark harness binaries.
//!
//! Every table/figure of the paper's evaluation has a binary in `src/bin/`
//! that regenerates it (see DESIGN.md for the index). Each binary prints a
//! human-readable table to stdout and, via [`write_json`], drops a
//! machine-readable copy under `results/` so EXPERIMENTS.md numbers can be
//! re-derived mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use menshen_json::ToJson;
use std::fs;
use std::path::PathBuf;

pub mod harness;

/// Directory the harness binaries write their JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    write_json_at(&results_dir().join(format!("{name}.json")), value);
}

/// Serialises `value` as pretty JSON into an explicit `path`.
pub fn write_json_at<T: ToJson + ?Sized>(path: &std::path::Path, value: &T) {
    if let Err(error) = fs::write(path, value.to_json().pretty()) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

/// Prints a section header in the style used by all harness binaries.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable_and_json_written() {
        let dir = results_dir();
        assert!(dir.exists());
        write_json("bench_selftest", &vec![1, 2, 3]);
        let path = dir.join("bench_selftest.json");
        assert!(path.exists());
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains('1'));
    }
}
