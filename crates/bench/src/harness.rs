//! A small, dependency-free micro-benchmark harness (the role `criterion`
//! played before the workspace went offline-only).
//!
//! Each measurement runs a closure in timed batches: after a warm-up period
//! the harness picks a batch size targeting roughly `sample_ms` per sample,
//! collects `samples` wall-clock samples, and reports the median
//! nanoseconds-per-iteration (median over samples is robust against scheduler
//! noise, which matters inside CI containers). Throughput in
//! elements-per-second is derived from the median when the caller declares
//! how many elements one iteration processes.

use menshen_json::{Json, ToJson};
use std::hint::black_box;
use std::time::Instant;

pub use std::hint::black_box as bb;

/// Collected statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/bench` by convention).
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Minimum time per iteration over all samples, nanoseconds.
    pub min_ns: f64,
    /// Maximum time per iteration over all samples, nanoseconds.
    pub max_ns: f64,
    /// Number of elements (e.g. packets) one iteration processes.
    pub elements_per_iter: u64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

impl Measurement {
    /// Elements processed per second at the median iteration time.
    pub fn elements_per_sec(&self) -> f64 {
        if self.median_ns == 0.0 {
            return f64::INFINITY;
        }
        self.elements_per_iter as f64 * 1e9 / self.median_ns
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("median_ns", Json::from(self.median_ns)),
            ("min_ns", Json::from(self.min_ns)),
            ("max_ns", Json::from(self.max_ns)),
            ("elements_per_iter", Json::from(self.elements_per_iter)),
            ("iterations", Json::from(self.iterations)),
            ("elements_per_sec", Json::from(self.elements_per_sec())),
        ])
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Warm-up duration per benchmark, milliseconds.
    pub warmup_ms: u64,
    /// Target duration of one sample, milliseconds.
    pub sample_ms: u64,
    /// Number of samples collected per benchmark.
    pub samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_ms: 150,
            sample_ms: 50,
            samples: 11,
        }
    }
}

impl BenchConfig {
    /// A faster configuration for smoke runs (`MENSHEN_BENCH_FAST=1`).
    pub fn fast() -> Self {
        BenchConfig {
            warmup_ms: 10,
            sample_ms: 5,
            samples: 3,
        }
    }

    /// Default configuration, downgraded to [`fast`](Self::fast) when the
    /// `MENSHEN_BENCH_FAST` environment variable is set.
    pub fn from_env() -> Self {
        if std::env::var_os("MENSHEN_BENCH_FAST").is_some() {
            Self::fast()
        } else {
            Self::default()
        }
    }
}

/// A benchmark runner that accumulates [`Measurement`]s and prints them as
/// they complete.
#[derive(Debug)]
pub struct Runner {
    config: BenchConfig,
    results: Vec<Measurement>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// Creates a runner with the environment-selected configuration.
    pub fn new() -> Self {
        Runner {
            config: BenchConfig::from_env(),
            results: Vec::new(),
        }
    }

    /// Creates a runner with an explicit configuration.
    pub fn with_config(config: BenchConfig) -> Self {
        Runner {
            config,
            results: Vec::new(),
        }
    }

    /// Benchmarks `body`, which processes `elements` elements per call.
    pub fn bench<F: FnMut()>(&mut self, name: &str, elements: u64, mut body: F) -> &Measurement {
        let config = self.config;

        // Warm-up, and a first estimate of the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed().as_millis() < u128::from(config.warmup_ms.max(1)) {
            body();
            warmup_iters += 1;
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((config.sample_ms as f64 * 1e6 / est_ns).ceil() as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(config.samples);
        let mut iterations = 0u64;
        for _ in 0..config.samples {
            let start = Instant::now();
            for _ in 0..batch {
                body();
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_iter_ns.push(elapsed / batch as f64);
            iterations += batch;
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = per_iter_ns[per_iter_ns.len() / 2];

        let measurement = Measurement {
            name: name.to_string(),
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("at least one sample"),
            elements_per_iter: elements,
            iterations,
        };
        println!(
            "{:<44} {:>12.1} ns/iter {:>14.0} elem/s",
            measurement.name,
            measurement.median_ns,
            measurement.elements_per_sec()
        );
        self.results.push(measurement);
        self.results.last().expect("just pushed")
    }

    /// All measurements collected so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Finds a measurement by name.
    pub fn get(&self, name: &str) -> Option<&Measurement> {
        self.results.iter().find(|m| m.name == name)
    }
}

/// Re-exported so bench binaries can `black_box` inputs without naming
/// `std::hint` everywhere.
pub fn consume<T>(value: T) -> T {
    black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut runner = Runner::with_config(BenchConfig {
            warmup_ms: 1,
            sample_ms: 1,
            samples: 3,
        });
        let mut acc = 0u64;
        let m = runner.bench("smoke/add", 10, || {
            for i in 0..10u64 {
                acc = acc.wrapping_add(consume(i));
            }
        });
        assert!(m.median_ns >= 0.0);
        assert!(m.min_ns <= m.max_ns);
        assert_eq!(m.elements_per_iter, 10);
        assert!(runner.get("smoke/add").is_some());
        assert_eq!(runner.results().len(), 1);
        assert!(consume(acc) < u64::MAX);
    }

    #[test]
    fn measurement_throughput_is_consistent() {
        let m = Measurement {
            name: "x".into(),
            median_ns: 100.0,
            min_ns: 90.0,
            max_ns: 110.0,
            elements_per_iter: 10,
            iterations: 1000,
        };
        assert!((m.elements_per_sec() - 1e8).abs() < 1.0);
        let json = m.to_json().pretty();
        assert!(json.contains("\"median_ns\": 100"));
    }
}
