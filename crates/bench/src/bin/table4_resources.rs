//! Table 4: FPGA resource usage of the 5-stage Menshen pipeline vs. the
//! reference switch / Corundum shell and a baseline (single-module) RMT.

use menshen_bench::{header, write_json};
use menshen_cost::FpgaResourceModel;

fn main() {
    header("Table 4: FPGA resources (Slice LUTs / Block RAMs)");
    let model = FpgaResourceModel::default();
    let table = model.table4();
    println!(
        "{:<28} {:>12} {:>9} {:>12} {:>9}",
        "implementation", "LUTs", "(%)", "BRAMs", "(%)"
    );
    for row in &table.rows {
        println!(
            "{:<28} {:>12.0} {:>8.2}% {:>12.1} {:>8.2}%",
            row.name, row.luts, row.luts_pct, row.brams, row.brams_pct
        );
    }
    println!();
    println!(
        "Menshen's LUT overhead over RMT: NetFPGA +{:.2}%, Corundum +{:.2}% (paper: 0.65% / 0.15%);",
        model.netfpga_overhead_fraction() * 100.0,
        model.corundum_overhead_fraction() * 100.0
    );
    println!("Block-RAM usage is identical to RMT on both platforms, as in the paper.");
    write_json("table4_fpga_resources", &table);
}
