//! Figure 10: per-module throughput while module 1 is reconfigured.
//!
//! Three CALC tenants share a 10 Gbit/s link at a 5:3:2 rate split
//! (9.3 Gbit/s offered); module 1 is reconfigured 0.5 s into the 3-second
//! run. Modules 2 and 3 must see no impact at all.

use menshen_bench::{header, write_json};
use menshen_json::Json;
use menshen_testbed::ReconfigExperiment;

fn main() {
    header("Figure 10: throughput during reconfiguration (5:3:2 split, 9.3 Gbit/s offered)");
    let experiment = ReconfigExperiment::default();
    let timeline = experiment.run();

    println!(
        "reconfiguration window: {:.3} s – {:.3} s",
        timeline.reconfig_start_s, timeline.reconfig_end_s
    );
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "time (s)", "module 1", "module 2", "module 3"
    );
    let series1 = timeline.series(1);
    let series2 = timeline.series(2);
    let series3 = timeline.series(3);
    for ((point1, point2), point3) in series1.iter().zip(&series2).zip(&series3) {
        // Print every 4th bin to keep the table readable.
        if ((point1.0 / experiment.bin_s).round() as usize).is_multiple_of(4) {
            println!(
                "{:>8.2} {:>12.2} {:>12.2} {:>12.2}",
                point1.0, point1.1, point2.1, point3.1
            );
        }
    }

    let unaffected = |module: u16, expected: f64| {
        let min = timeline.min_throughput(module);
        println!("module {module}: offered {expected:.2} Gbit/s, minimum observed {min:.2} Gbit/s");
        (min - expected).abs() < 1e-6
    };
    println!();
    let ok2 = unaffected(2, 9.3 * 0.3);
    let ok3 = unaffected(3, 9.3 * 0.2);
    let dip1 = timeline.min_throughput(1) < 1e-6;
    println!(
        "module 1: dips to {:.2} Gbit/s during its reconfiguration window",
        timeline.min_throughput(1)
    );
    println!();
    if ok2 && ok3 && dip1 {
        println!(
            "RESULT: reconfiguring module 1 does not disturb modules 2 and 3 (matches Figure 10)."
        );
    } else {
        println!("RESULT: MISMATCH with the paper's Figure 10 — investigate.");
    }

    let points = Json::Arr(
        timeline
            .points
            .iter()
            .map(|p| {
                Json::obj([
                    ("time_s", Json::from(p.time_s)),
                    ("module_id", Json::from(p.module_id)),
                    ("gbps", Json::from(p.gbps)),
                ])
            })
            .collect(),
    );
    write_json("fig10_reconfig_timeline", &points);
}
