//! Figure 11: throughput vs. packet size on the two platforms, plus the
//! optimised-Corundum latency plot (11d).
//!
//! * 11a — optimised Menshen on NetFPGA (10 GbE), 64–512-byte packets.
//! * 11b — optimised Menshen on Corundum (100 GbE), 70–1500-byte packets.
//! * 11c — unoptimised Menshen on Corundum.
//! * 11d — sampled packet latency of optimised Corundum at full rate.

use menshen_bench::{header, write_json};
use menshen_json::{Json, ToJson};
use menshen_rmt::clock::{CORUNDUM_OPTIMIZED, CORUNDUM_UNOPTIMIZED, NETFPGA_OPTIMIZED};
use menshen_testbed::throughput::passthrough_module;
use menshen_testbed::traffic::SizeSweep;
use menshen_testbed::{latency_sweep, throughput_sweep};

struct ThroughputRow {
    platform: String,
    frame_len: usize,
    l1_gbps: f64,
    l2_gbps: f64,
    mpps: f64,
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("platform", Json::from(self.platform.clone())),
            ("frame_len", Json::from(self.frame_len)),
            ("l1_gbps", Json::from(self.l1_gbps)),
            ("l2_gbps", Json::from(self.l2_gbps)),
            ("mpps", Json::from(self.mpps)),
        ])
    }
}

fn print_sweep(
    title: &str,
    platform: &menshen_rmt::clock::PlatformTiming,
    sweep: SizeSweep,
    rows: &mut Vec<ThroughputRow>,
) {
    println!("{title}");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "size (B)", "L1 (Gbit/s)", "L2 (Gbit/s)", "rate (Mpps)"
    );
    let points = throughput_sweep(platform, &passthrough_module(1), sweep.sizes(), 50);
    for point in &points {
        assert!(
            (point.forwarded_fraction - 1.0).abs() < f64::EPSILON,
            "functional pipeline dropped packets at size {}",
            point.frame_len
        );
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>12.2}",
            point.frame_len, point.l1_gbps, point.l2_gbps, point.mpps
        );
        rows.push(ThroughputRow {
            platform: platform.name.to_string(),
            frame_len: point.frame_len,
            l1_gbps: point.l1_gbps,
            l2_gbps: point.l2_gbps,
            mpps: point.mpps,
        });
    }
    println!();
}

fn main() {
    header("Figure 11: throughput and latency vs. packet size");
    let mut rows = Vec::new();
    print_sweep(
        "(a) Optimized NetFPGA, 10 GbE",
        &NETFPGA_OPTIMIZED,
        SizeSweep::NetFpga,
        &mut rows,
    );
    print_sweep(
        "(b) Optimized Corundum, 100 GbE",
        &CORUNDUM_OPTIMIZED,
        SizeSweep::Corundum,
        &mut rows,
    );
    print_sweep(
        "(c) Unoptimized Corundum, 100 GbE",
        &CORUNDUM_UNOPTIMIZED,
        SizeSweep::Corundum,
        &mut rows,
    );
    write_json("fig11_throughput", &rows);

    println!("(d) Optimized Corundum sampled packet latency at full rate");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size (B)", "cycles", "pipeline (ns)", "sampled (µs)"
    );
    let latency: Vec<_> = latency_sweep(&CORUNDUM_OPTIMIZED, SizeSweep::Corundum.sizes());
    for point in &latency {
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>14.3}",
            point.frame_len, point.pipeline_cycles, point.pipeline_ns, point.sampled_us
        );
    }
    let latency_rows = Json::Arr(
        latency
            .iter()
            .map(|p| {
                Json::obj([
                    ("frame_len", Json::from(p.frame_len)),
                    ("pipeline_cycles", Json::from(p.pipeline_cycles)),
                    ("pipeline_ns", Json::from(p.pipeline_ns)),
                    ("sampled_us", Json::from(p.sampled_us)),
                ])
            })
            .collect(),
    );
    write_json("fig11d_latency", &latency_rows);

    println!();
    println!(
        "Shape check: NetFPGA reaches 10 Gbit/s from 96-byte packets; optimised Corundum reaches \
         100 Gbit/s from 256-byte packets while the unoptimised design tops out near 80 Gbit/s at \
         MTU size; sampled latency stays in the 1.0–1.25 µs band."
    );
}
