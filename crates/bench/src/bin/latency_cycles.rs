//! §5.2 latency: per-packet pipeline cycle counts and nanosecond latency on
//! both platforms at the minimum (64 B) and maximum (1500 B) packet sizes.

use menshen_bench::{header, write_json};
use menshen_json::{Json, ToJson};
use menshen_rmt::clock::{CORUNDUM_OPTIMIZED, NETFPGA_OPTIMIZED};

struct Row {
    platform: String,
    frame_len: usize,
    cycles: f64,
    latency_ns: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("platform", Json::from(self.platform.clone())),
            ("frame_len", Json::from(self.frame_len)),
            ("cycles", Json::from(self.cycles)),
            ("latency_ns", Json::from(self.latency_ns)),
        ])
    }
}

fn main() {
    header("§5.2 latency: pipeline cycles and latency per platform");
    let mut rows = Vec::new();
    println!(
        "{:<24} {:>10} {:>10} {:>14}",
        "platform", "size (B)", "cycles", "latency (ns)"
    );
    for platform in [&NETFPGA_OPTIMIZED, &CORUNDUM_OPTIMIZED] {
        for &size in &[64usize, 1500] {
            let cycles = platform.latency_cycles(size);
            let ns = platform.latency_ns(size);
            println!(
                "{:<24} {:>10} {:>10.1} {:>14.1}",
                platform.name, size, cycles, ns
            );
            rows.push(Row {
                platform: platform.name.to_string(),
                frame_len: size,
                cycles,
                latency_ns: ns,
            });
        }
    }
    println!();
    println!(
        "Paper: 79 cycles / 505.6 ns (NetFPGA, 64 B), 106 cycles / 424 ns (Corundum, 64 B); \
         ≈146 and ≈129 cycles at 1500 B."
    );
    write_json("latency_cycles", &rows);
}
