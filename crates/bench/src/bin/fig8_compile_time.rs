//! Figure 8: compilation time vs. number of generated match-action entries
//! (16 / 64 / 256 / 1024) for the eight evaluated programs and the
//! system-level module.
//!
//! Unlike the cost models, this is a *real measurement*: each program is
//! compiled through the `menshen-compiler` front end + backend, which — like
//! the paper's compiler — generates a fresh set of distinct match-action
//! entries every time a module is compiled.

use menshen_bench::{header, write_json};
use menshen_compiler::{compile_source, CompileOptions};
use menshen_json::{Json, ToJson};
use menshen_programs::figure8_program_sources;
use std::time::Instant;

struct Row {
    program: String,
    entries: usize,
    compile_time_ms: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("program", Json::from(self.program.clone())),
            ("entries", Json::from(self.entries)),
            ("compile_time_ms", Json::from(self.compile_time_ms)),
        ])
    }
}

fn main() {
    header("Figure 8: compilation time vs. generated match-action entries");
    let entry_counts = [16usize, 64, 256, 1024];
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}   (ms)",
        "program", 16, 64, 256, 1024
    );
    for (name, source) in figure8_program_sources() {
        let mut times = Vec::new();
        for &entries in &entry_counts {
            let options = CompileOptions::new(1).with_initial_entries(entries);
            // Warm up once, then time the median of 5 compilations.
            let _ = compile_source(source, &options).expect("program compiles");
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let start = Instant::now();
                    let compiled = compile_source(source, &options).expect("program compiles");
                    let elapsed = start.elapsed().as_secs_f64() * 1e3;
                    assert!(compiled.generated_entries() >= entries);
                    elapsed
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = samples[samples.len() / 2];
            times.push(median);
            rows.push(Row {
                program: name.to_string(),
                entries,
                compile_time_ms: median,
            });
        }
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name, times[0], times[1], times[2], times[3]
        );
    }
    write_json("fig8_compile_time", &rows);
    println!();
    println!(
        "Shape check: compilation time grows with the number of generated entries for every \
         program (the paper reports seconds on its Python/C++ toolchain; the Rust backend is \
         faster in absolute terms but scales the same way)."
    );
}
