//! Figure 12 (Appendix A): daisy-chain vs. AXI-Lite configuration time for
//! the VLIW action table and CAM of every stage.

use menshen_bench::{header, write_json};
use menshen_cost::ConfigTimeModel;

fn main() {
    header("Figure 12: AXI-Lite vs. daisy-chain configuration time (per stage, 16 entries)");
    let model = ConfigTimeModel::default();
    let rows = model.figure12(5, 16);
    println!(
        "{:>6} {:<22} {:>14} {:>18}",
        "stage", "resource", "AXI-L (ms)", "daisy chain (ms)"
    );
    for row in &rows {
        println!(
            "{:>6} {:<22} {:>14.3} {:>18.3}",
            row.stage, row.resource, row.axil_ms, row.daisy_chain_ms
        );
    }
    write_json("fig12_axil_vs_daisy", &rows);
    println!();
    println!(
        "Shape check: the daisy chain is much faster than AXI-Lite, especially for the 625-bit \
         VLIW action-table entries (20 AXI-L writes each), as in Appendix A."
    );
}
