//! `menshen-serve`: a standalone network-attached Menshen service.
//!
//! Stands a [`menshen_io::Service`] up behind a UDP socket backend on
//! loopback, announces its addresses on stdout, and serves until a peer
//! requests `DRAIN` over the control socket (or the safety deadline
//! passes). The graceful-drain accounting is printed as the final stdout
//! line, so a parent process can assert the books balanced:
//!
//! ```text
//! READY data=127.0.0.1:5001,127.0.0.1:5002 control=127.0.0.1:6000
//! DRAINED balanced=true submitted=10000 forwarded=10000 dropped=0 \
//!     rx_drained=0 tx=10000 tx_errors=0
//! ```
//!
//! Configuration is by environment variable (`MENSHEN_SERVE_QUEUES`,
//! `_SHARDS`, `_TENANTS`, `_BURST`, `_DEADLINE_SECS`, `_METRICS_PATH`),
//! which keeps the spawn interface trivial for the two-process testbed.
//! Exits nonzero when the drain books do not balance.

use menshen_io::{Service, ServiceConfig, UdpSocketIo};
use menshen_testbed::passthrough_template;
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let queues = env_usize("MENSHEN_SERVE_QUEUES", 2).max(1);
    let shards = env_usize("MENSHEN_SERVE_SHARDS", 2).max(1);
    let tenants = env_usize("MENSHEN_SERVE_TENANTS", 4).clamp(1, u16::MAX as usize) as u16;
    let burst = env_usize("MENSHEN_SERVE_BURST", 64).max(1);
    let deadline = Duration::from_secs(env_usize("MENSHEN_SERVE_DEADLINE_SECS", 120) as u64);
    let metrics_path = std::env::var("MENSHEN_SERVE_METRICS_PATH").ok();

    let backend =
        UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), queues).expect("bind data plane");
    let data_addrs: Vec<String> = backend
        .local_addrs()
        .iter()
        .map(|a| a.to_string())
        .collect();
    let template = passthrough_template(tenants);
    let config = ServiceConfig {
        shards,
        dispatchers: queues,
        burst_size: burst,
        ..ServiceConfig::default()
    };
    let mut service = Service::new(&template, Box::new(backend), config).expect("stand up service");
    let control = service.control_addr().expect("control listener");

    println!("READY data={} control={control}", data_addrs.join(","));
    std::io::stdout().flush().expect("announce addresses");

    service.serve(Some(deadline)).expect("serve loop");

    if let Some(path) = metrics_path {
        let snapshot = service.metrics_snapshot().expect("metrics snapshot");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create metrics directory");
        }
        std::fs::write(&path, snapshot.to_prometheus()).expect("write metrics exposition");
        eprintln!("wrote {path}");
    }

    let report = service.graceful_drain().expect("graceful drain");
    println!(
        "DRAINED balanced={} submitted={} forwarded={} dropped={} rx_drained={} tx={} tx_errors={}",
        report.balanced,
        report.audit.submitted,
        report.audit.forwarded,
        report.audit.dropped,
        report.rx_discarded,
        report.link.tx_packets,
        report.link.tx_errors
    );
    if !report.balanced {
        std::process::exit(2);
    }
}
