//! Figure 9: hardware configuration time vs. number of match-action entries
//! for each program, plus the Tofino runtime-API comparison.
//!
//! The number of daisy-chain writes for each program is measured by loading
//! the real compiled module onto the Menshen pipeline and counting its
//! reconfiguration packets; the per-packet cost comes from the calibrated
//! configuration-time model (`menshen-cost`).

use menshen_bench::{header, write_json};
use menshen_compiler::{compile_source, CompileOptions};
use menshen_core::MenshenPipeline;
use menshen_cost::ConfigTimeModel;
use menshen_json::{Json, ToJson};
use menshen_programs::figure8_program_sources;
use menshen_rmt::PipelineParams;

struct Row {
    program: String,
    entries: usize,
    reconfig_packets: usize,
    config_time_ms: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("program", Json::from(self.program.clone())),
            ("entries", Json::from(self.entries)),
            ("reconfig_packets", Json::from(self.reconfig_packets)),
            ("config_time_ms", Json::from(self.config_time_ms)),
        ])
    }
}

fn main() {
    header("Figure 9: configuration time vs. match-action entries");
    let model = ConfigTimeModel::default();
    let entry_counts = [16usize, 64, 256, 1024];
    let mut rows = Vec::new();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}   (ms)",
        "program", 16, 64, 256, 1024
    );
    for (name, source) in figure8_program_sources() {
        let mut times = Vec::new();
        for &entries in &entry_counts {
            // Compile with the requested entry count against a pipeline deep
            // enough to hold them, then count the daisy-chain writes needed
            // to load the module.
            let params = PipelineParams::default().with_table_depth(entries.max(16) * 2);
            let options = CompileOptions::new(1)
                .with_initial_entries(entries)
                .with_params(params);
            let compiled = compile_source(source, &options).expect("program compiles");
            let mut pipeline = MenshenPipeline::new(params);
            let report = pipeline
                .load_module(&compiled.config)
                .expect("module loads");
            let ms = model.daisy_chain_time_s(report.reconfig_packets) * 1e3;
            times.push(ms);
            rows.push(Row {
                program: name.to_string(),
                entries,
                reconfig_packets: report.reconfig_packets,
                config_time_ms: ms,
            });
        }
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name, times[0], times[1], times[2], times[3]
        );
    }

    println!();
    println!("Tofino runtime-API comparison (CALC program entry counts):");
    let comparison = model.figure9_comparison(&entry_counts);
    println!(
        "{:>8} {:>14} {:>14}",
        "entries", "Menshen (ms)", "Tofino (ms)"
    );
    for row in &comparison {
        println!(
            "{:>8} {:>14.1} {:>14.1}",
            row.entries, row.menshen_ms, row.tofino_ms
        );
    }

    write_json("fig9_config_time", &rows);
    write_json("fig9_tofino_comparison", &comparison);
    println!();
    println!(
        "Shape check: configuration time grows linearly with entries and is comparable to \
         Tofino's runtime APIs, as in the paper."
    );
}
