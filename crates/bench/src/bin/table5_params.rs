//! Table 5: the hardware resource parameters of the prototype, as encoded in
//! the simulator's constants (a consistency check more than a benchmark).

use menshen_bench::header;
use menshen_rmt::params;

fn main() {
    header("Table 5: hardware resources in Menshen (prototype parameters)");
    let table5 = params::TABLE5;
    let rows = [
        (
            "PHV",
            format!(
                "8 × 2-byte + 8 × 4-byte + 8 × 6-byte containers + {}-byte metadata = {} bytes",
                params::METADATA_BYTES,
                params::PHV_BYTES
            ),
        ),
        (
            "Parsing action",
            format!("{} bits wide", params::PARSE_ACTION_BITS),
        ),
        (
            "Parser / deparser table",
            format!(
                "{} parsing actions, {} bits wide, {} entries deep",
                params::PARSE_ACTIONS_PER_ENTRY,
                params::PARSE_ACTIONS_PER_ENTRY * params::PARSE_ACTION_BITS,
                table5.overlay_depth
            ),
        ),
        (
            "Key extractor table",
            format!(
                "{} bits wide, {} entries deep",
                params::KEY_EXTRACT_ENTRY_BITS,
                table5.overlay_depth
            ),
        ),
        (
            "Key mask table",
            format!(
                "{} bits wide, {} entries deep",
                params::KEY_BITS,
                table5.overlay_depth
            ),
        ),
        (
            "Exact match table",
            format!(
                "{} bits wide, {} entries deep",
                params::MATCH_ENTRY_BITS,
                table5.cam_depth
            ),
        ),
        (
            "ALU action",
            format!("{} bits wide", params::ALU_ACTION_BITS),
        ),
        (
            "VLIW action table",
            format!(
                "{} ALU actions, {} bits wide, {} entries deep",
                params::NUM_CONTAINERS,
                params::VLIW_ENTRY_BITS,
                table5.action_depth
            ),
        ),
        (
            "Segment table",
            format!(
                "{} bits wide, {} entries deep",
                params::SEGMENT_ENTRY_BITS,
                table5.overlay_depth
            ),
        ),
        ("Stages", format!("{}", table5.num_stages)),
        ("Module ID", format!("{} bits", params::MODULE_ID_BITS)),
    ];
    for (name, value) in rows {
        println!("{name:<26} {value}");
    }
}
