//! §5.2 ASIC feasibility: chip area of Menshen vs. baseline RMT at 1 GHz
//! (FreePDK45), including how the overhead shrinks as match tables grow.

use menshen_bench::{header, write_json};
use menshen_cost::AsicAreaModel;

fn main() {
    header("ASIC area: Menshen vs. RMT (FreePDK45, 1 GHz)");
    let model = AsicAreaModel::default();
    let report = model.report();
    println!(
        "{:<32} {:>12} {:>14} {:>12}",
        "component", "RMT (mm²)", "Menshen (mm²)", "overhead"
    );
    for component in &report.components {
        println!(
            "{:<32} {:>12.3} {:>14.3} {:>11.1}%",
            component.name,
            component.rmt_mm2,
            component.menshen_mm2,
            component.overhead() * 100.0
        );
    }
    println!();
    println!(
        "5-stage pipeline total: RMT {:.2} mm², Menshen {:.2} mm²  (+{:.1}%)",
        report.rmt_total_mm2,
        report.menshen_total_mm2,
        report.pipeline_overhead * 100.0
    );
    println!(
        "Effective whole-chip overhead (match-action logic ≤ 50% of the chip): {:.1}%",
        report.chip_overhead * 100.0
    );
    write_json("asic_area", &report);

    println!();
    println!("Overhead vs. match-table depth (the paper's concluding observation):");
    println!("{:>18} {:>12}", "entries/stage", "overhead");
    let mut sweep = Vec::new();
    for entries in [16usize, 64, 256, 1024, 4096] {
        let report = AsicAreaModel {
            match_entries_per_stage: entries,
            ..AsicAreaModel::default()
        }
        .report();
        println!(
            "{:>18} {:>11.2}%",
            entries,
            report.pipeline_overhead * 100.0
        );
        sweep.push((entries, report.pipeline_overhead));
    }
    write_json("asic_area_vs_table_depth", &sweep);
}
