//! `menshen-loadgen`: the load-generator half of the two-process testbed.
//!
//! Replays a synthesized heavy-tailed workload over real UDP sockets at a
//! paced rate against a running `menshen-serve` (one local socket per
//! service rx queue), matches the verdict echoes back to sends, and prints
//! the [`menshen_testbed::LoadgenSummary`] as a JSON document — the whole
//! of stdout, so the parent parses it directly; progress goes to stderr.
//!
//! Configuration is by environment variable: `MENSHEN_LOADGEN_TARGETS`
//! (comma-separated `ip:port` list, required), `_PACKETS`, `_RATE_PPS`,
//! `_TENANTS`, `_FLOWS`, `_SEED`. Exits nonzero if any send failed or any
//! echo never came back.

use menshen_json::ToJson;
use menshen_testbed::{run_loadgen, LoadgenConfig};
use std::net::SocketAddr;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let targets: Vec<SocketAddr> = std::env::var("MENSHEN_LOADGEN_TARGETS")
        .expect("MENSHEN_LOADGEN_TARGETS is required (comma-separated ip:port list)")
        .split(',')
        .map(|a| a.trim().parse().expect("well-formed target address"))
        .collect();
    let defaults = LoadgenConfig::default();
    let config = LoadgenConfig {
        targets,
        tenants: env_f64("MENSHEN_LOADGEN_TENANTS", defaults.tenants as f64) as u16,
        flows: env_f64("MENSHEN_LOADGEN_FLOWS", defaults.flows as f64) as usize,
        packets: env_f64("MENSHEN_LOADGEN_PACKETS", defaults.packets as f64) as usize,
        rate_pps: env_f64("MENSHEN_LOADGEN_RATE_PPS", defaults.rate_pps),
        seed: env_f64("MENSHEN_LOADGEN_SEED", defaults.seed as f64) as u64,
        echo_timeout: defaults.echo_timeout,
    };

    let summary = run_loadgen(&config).expect("load generator run");
    eprintln!(
        "sent {} at {:.0} pps, {} echoes ({} forwarded, {} dropped), p99 rtt {} us",
        summary.sent,
        summary.achieved_pps,
        summary.echoes,
        summary.forwarded,
        summary.dropped,
        summary.rtt_p99_ns / 1_000
    );
    println!("{}", summary.to_json().pretty());
    if !summary.lossless() {
        std::process::exit(2);
    }
}
