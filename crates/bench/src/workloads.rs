//! Shared benchmark workloads.
//!
//! The hot-path bench (`benches/batch.rs`) and the shard-scaling bench
//! (`benches/sharding.rs`) measure the same multi-tenant flow-rule workload
//! so their numbers compose: this module owns the tenant module shape and
//! the packet stream both use.

use menshen_core::{MatchRule, ModuleConfig, ModuleId, StageModuleConfig};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::match_table::LookupKey;
use menshen_rmt::phv::ContainerRef as C;
use menshen_rmt::TABLE5;

/// [`flow_rule_tenant_with_port`] with the default `9000 + module_id`
/// rewrite port.
pub fn flow_rule_tenant(module_id: u16, rules: usize) -> ModuleConfig {
    flow_rule_tenant_with_port(module_id, rules, 9000 + module_id)
}

/// A tenant matching on the destination IP (h4(1)) with `rules` distinct
/// flow rules in stage 0: each rewrites the UDP destination port to
/// `rewrite_port` and bumps a per-tenant stateful counter — the same shape
/// as the CALC-style modules, scaled up to a realistic table size. The
/// explicit port parameter lets the equivalence tests reconfigure a tenant
/// to observably different behaviour.
pub fn flow_rule_tenant_with_port(module_id: u16, rules: usize, rewrite_port: u16) -> ModuleConfig {
    let mut config = ModuleConfig::empty(
        ModuleId::new(module_id),
        format!("tenant-{module_id}"),
        TABLE5.num_stages,
    );
    config.parser = ParserEntry::new(vec![
        ParseAction::new(34, C::h4(1)).unwrap(), // dst IP
        ParseAction::new(40, C::h2(0)).unwrap(), // UDP dst port
    ])
    .unwrap();
    config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
    let rules = (0..rules)
        .map(|flow| MatchRule {
            key: LookupKey::from_slots(
                [
                    (0, 6),
                    (0, 6),
                    (flow_dst_ip(module_id, flow), 4),
                    (0, 4),
                    (0, 2),
                    (0, 2),
                ],
                false,
            ),
            action: VliwAction::nop()
                .with(C::h2(0), AluInstruction::set(rewrite_port))
                .with(C::h4(7), AluInstruction::loadd(0)),
        })
        .collect();
    config.stages[0] = StageModuleConfig {
        key_extract: Some(KeyExtractEntry {
            slots_4b: [1, 0],
            ..Default::default()
        }),
        key_mask: Some(KeyMask::for_slots(
            [false, false, true, false, false, false],
            false,
        )),
        rules,
        stateful_words: 16,
        ..Default::default()
    };
    config
}

/// The destination IP of one tenant flow: `10.<tenant>.<flow_hi>.<flow_lo>`.
pub fn flow_dst_ip(module_id: u16, flow: usize) -> u64 {
    0x0a00_0000 | (u64::from(module_id) << 16) | (flow as u64 & 0xffff)
}

/// An all-hits packet stream over `tenants` tenants × `rules_per_tenant`
/// flows, round-robin across tenants and flows. Source ports vary per flow
/// so 5-tuple RSS steering sees distinct flows, not one fat flow.
pub fn flow_workload(tenants: u16, rules_per_tenant: usize, packets: usize) -> Vec<Packet> {
    (0..packets)
        .map(|i| {
            let module_id = 1 + (i as u16 % tenants);
            let flow = (i / tenants as usize) % rules_per_tenant;
            let ip = flow_dst_ip(module_id, flow);
            PacketBuilder::udp_data(
                module_id,
                [10, 0, 0, 1],
                [
                    ((ip >> 24) & 0xff) as u8,
                    ((ip >> 16) & 0xff) as u8,
                    ((ip >> 8) & 0xff) as u8,
                    (ip & 0xff) as u8,
                ],
                5000 + (flow % 1024) as u16,
                80,
                &[0u8; 8],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;

    #[test]
    fn workload_is_all_hits() {
        let params = TABLE5.with_table_depth(2048);
        let mut pipeline = MenshenPipeline::new(params);
        for module_id in 1..=3u16 {
            pipeline
                .load_module(&flow_rule_tenant(module_id, 64))
                .unwrap();
        }
        let packets = flow_workload(3, 64, 192);
        let forwarded = pipeline
            .process_batch(packets)
            .iter()
            .filter(|v| v.is_forwarded())
            .count();
        assert_eq!(forwarded, 192);
    }
}
