//! The closed-loop capacity benchmark: offered load vs p50/p99 sojourn,
//! stepped up until the p99 knees, committed as the `capacity_knee` section
//! of `BENCH_throughput.json`.
//!
//! Uses the same 8-tenant flow-rule workload as the hot-path, shard-scaling
//! and latency benches (so the numbers compose), synthesised as a uniform
//! trace and replayed **rate-rescaled** through the real threaded
//! `ShardedRuntime`: the capture's relative spacing is kept but linearly
//! rescaled to each offered rate, and the next offered rate is chosen from
//! the previous measurement (geometric step until the knee) — the
//! closed-loop methodology that turns PR 3's open-loop latency series into
//! a capacity figure.

use menshen_bench::workloads::flow_rule_tenant;
use menshen_core::MenshenPipeline;
use menshen_json::Json;
use menshen_rmt::TABLE5;
use menshen_runtime::SteeringMode;
use menshen_testbed::capacity::{capacity_sweep, CapacitySweepConfig};
use menshen_trace::synth::{synthesize, WorkloadSpec};

const TENANTS: u16 = 8;
const RULES_PER_TENANT: usize = 150; // same CAM shape as the other benches

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let packets = if fast { 512 } else { 4096 };
    let shards = if fast { 2 } else { 4 };
    let dispatchers = if fast { 1 } else { 2 };

    let params = TABLE5.with_table_depth(2048);
    let mut template = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        template
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let mut spec = WorkloadSpec::uniform(TENANTS, 600, packets);
    spec.rules_per_tenant = RULES_PER_TENANT;
    spec.mean_rate_pps = 5_000_000.0;
    let trace = synthesize(&spec).expect("workload spec is valid");

    let config = CapacitySweepConfig {
        start_pps: if fast { 1_000_000.0 } else { 250_000.0 },
        growth: 2.0,
        max_points: if fast { 4 } else { 12 },
        knee_factor: 8.0,
        saturation_margin: 0.9,
    };
    println!(
        "{TENANTS} tenants, {} packets per point, {shards} shards, {dispatchers} dispatchers, \
         offered rate {} pps × {}^k until the p99 knees",
        trace.len(),
        config.start_pps,
        config.growth
    );
    let report = capacity_sweep(
        &template,
        &trace,
        shards,
        dispatchers,
        SteeringMode::FiveTuple,
        config,
    );

    println!();
    println!(
        "{:>14} {:>14} {:>10} {:>10} {:>10} {:>7}",
        "offered pps", "achieved pps", "p50 ns", "p99 ns", "p99.9 ns", "knee?"
    );
    for point in &report.points {
        println!(
            "{:>14.0} {:>14.0} {:>10} {:>10} {:>10} {:>7}{}",
            point.offered_pps,
            point.replay.achieved_mpps * 1e6,
            point.replay.latency.p50_ns,
            point.replay.latency.p99_ns,
            point.replay.latency.p999_ns,
            if point.kneed { "KNEE" } else { "" },
            if point.replay.all_packets_accounted {
                ""
            } else {
                "   (!) packets unaccounted"
            }
        );
    }
    match report.knee_pps {
        Some(knee) => println!("\ncapacity (last pre-knee offered rate): {knee:.0} pps"),
        None => println!("\nno knee within the swept range"),
    }

    for point in &report.points {
        assert!(
            point.replay.all_packets_accounted,
            "capacity sweep lost packets at {} pps",
            point.offered_pps
        );
        assert!(point.replay.latency.p99_ns >= point.replay.latency.p50_ns);
    }
    // Structural gate: the sweep must actually have closed the loop — either
    // it found a knee, or it pushed through every configured step.
    assert!(
        report.knee_pps.is_some() || report.points.len() == config.max_points,
        "sweep stopped early without a knee"
    );

    let points: Vec<Json> = report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("offered_pps", Json::from(point.offered_pps)),
                ("achieved_pps", Json::from(point.replay.achieved_mpps * 1e6)),
                ("p50_ns", Json::from(point.replay.latency.p50_ns)),
                ("p90_ns", Json::from(point.replay.latency.p90_ns)),
                ("p99_ns", Json::from(point.replay.latency.p99_ns)),
                ("p999_ns", Json::from(point.replay.latency.p999_ns)),
                ("mean_ns", Json::from(point.replay.latency.mean_ns)),
                ("kneed", Json::Bool(point.kneed)),
                (
                    "all_packets_accounted",
                    Json::Bool(point.replay.all_packets_accounted),
                ),
            ])
        })
        .collect();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("rules_per_tenant", Json::from(RULES_PER_TENANT)),
        ("workload_packets", Json::from(trace.len())),
        ("shards", Json::from(report.shards)),
        ("dispatchers", Json::from(report.dispatchers)),
        ("host_parallelism", Json::from(host_parallelism)),
        ("steering", Json::from("five_tuple_rss")),
        ("pacing", Json::from("rate_rescaled_closed_loop")),
        ("baseline_p99_ns", Json::from(report.baseline_p99_ns)),
        (
            "knee_pps",
            report.knee_pps.map(Json::from).unwrap_or(Json::Null),
        ),
        ("points", Json::Arr(points)),
    ]);
    if !fast {
        menshen_bench::update_baseline("capacity_knee", &doc);
    }
    menshen_bench::write_json("bench_capacity", &doc);
}
