//! The observability-cost benchmark, committed as the `obs_overhead`
//! section of `BENCH_throughput.json`.
//!
//! Two questions, two sections:
//!
//! 1. **What does sampled hot-path profiling cost?** The same flow-rule
//!    workload is pushed through `process_batch_into` with the profiler
//!    disabled (interval 0) and sampling 1-in-256, interleaved best-of-N so
//!    thermal drift hits both arms equally. The acceptance bar is ≤ 3 %
//!    overhead. When the crate is built without the `profiling` feature the
//!    profiler is a zero-sized no-op and both arms measure the same code.
//! 2. **What does the per-tenant SLO ledger report?** A heavy-tailed
//!    two-tenant replay (plus a sliver of unknown-VLAN traffic to exercise
//!    the drop ledger) runs through a deterministic 2-shard runtime; the
//!    committed numbers are each tenant's p50/p99 sojourn and verdict
//!    ledger, cross-checked by the runtime's packet-conservation audit.

use menshen_bench::harness::consume;
use menshen_bench::workloads::{flow_rule_tenant, flow_workload};
use menshen_core::{MenshenPipeline, BURST_SIZE};
use menshen_json::Json;
use menshen_rmt::TABLE5;
use menshen_runtime::{RuntimeOptions, ShardedRuntime};
use menshen_trace::{replay_sharded, synthesize, Pacing, WorkloadSpec};
use std::time::Instant;

const TENANTS: u16 = 3;
const RULES_PER_TENANT: usize = 400; // same CAM shape as the hot-path bench
const PROFILE_INTERVAL: u64 = 256;

/// One timed pass of the whole workload through the batched hot path.
fn one_pass_secs(pipeline: &mut MenshenPipeline, packets: &[menshen_packet::Packet]) -> f64 {
    let mut verdicts = Vec::new();
    let start = Instant::now();
    for burst in packets.chunks(BURST_SIZE) {
        pipeline.process_batch_into(burst, &mut verdicts);
        consume(&verdicts);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let workload_packets = if fast { 1_024 } else { 6_144 };
    let rounds = if fast { 3 } else { 24 };
    let replay_packets = if fast { 2_048 } else { 32_768 };
    let profiling_compiled = cfg!(feature = "profiling");

    // ---- Section 1: profiling overhead on the batched hot path ----
    let params = TABLE5.with_table_depth(2048);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let packets = flow_workload(TENANTS, RULES_PER_TENANT, workload_packets);
    println!(
        "{TENANTS} tenants × {RULES_PER_TENANT} rules, {} packets per pass, \
         {rounds} interleaved rounds (profiling compiled: {profiling_compiled})",
        packets.len()
    );

    // Warm both arms (CAM index, caches, branch predictors) before timing.
    pipeline.set_profile_interval(0);
    one_pass_secs(&mut pipeline, &packets);
    pipeline.set_profile_interval(PROFILE_INTERVAL);
    one_pass_secs(&mut pipeline, &packets);

    // Interleaved best-of: alternate off/on every round so slow drift in the
    // host (frequency scaling, background load) cannot bias one arm.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..rounds {
        pipeline.set_profile_interval(0);
        best_off = best_off.min(one_pass_secs(&mut pipeline, &packets));
        pipeline.set_profile_interval(PROFILE_INTERVAL);
        best_on = best_on.min(one_pass_secs(&mut pipeline, &packets));
    }
    let pps_off = packets.len() as f64 / best_off;
    let pps_on = packets.len() as f64 / best_on;
    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    println!();
    println!("profiling off       : {pps_off:>12.0} packets/s");
    println!("profiling 1-in-{PROFILE_INTERVAL:<4}: {pps_on:>12.0} packets/s  ({overhead_pct:+.2}% time)");

    let profile = pipeline.stage_profile();
    if profiling_compiled {
        assert!(
            profile.sampled > 0,
            "the sampled arm must have committed samples"
        );
        println!(
            "  {} packets sampled; per-stage p50 ns: {}",
            profile.sampled,
            profile
                .phase_ns
                .iter()
                .map(|h| h.percentiles().p50_ns.to_string())
                .collect::<Vec<_>>()
                .join(" / ")
        );
    }
    if !fast {
        assert!(
            overhead_pct <= 3.0,
            "acceptance criterion: 1-in-{PROFILE_INTERVAL} sampling must cost <= 3% \
             (got {overhead_pct:+.2}%)"
        );
    }

    // ---- Section 2: per-tenant SLO telemetry under heavy-tailed replay ----
    let mut template = MenshenPipeline::new(TABLE5.with_table_depth(2048));
    for module_id in 1..=2 {
        template
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let mut spec = WorkloadSpec::heavy_tailed(2, 600, replay_packets);
    // Tenant 3 is never loaded: its sliver of traffic lands in the
    // unknown-module drop column of the ledger, so the committed section
    // exercises drops, not just forwards.
    spec.tenants.push((3, 0.05));
    spec.rules_per_tenant = RULES_PER_TENANT;
    spec.mean_rate_pps = 10_000_000.0;
    let trace = synthesize(&spec).expect("workload spec is valid");

    // Threaded because `replay_sharded` drives `submit_owned`; when the
    // `profiling` feature is compiled in, every replica samples at the
    // default 1-in-256 interval, so the committed SLO numbers are taken
    // with the profiler live — the deployment configuration.
    let mut runtime = ShardedRuntime::from_pipeline(&template, RuntimeOptions::threaded(2));
    let report = replay_sharded(&mut runtime, &trace, Pacing::Unpaced)
        .expect("threaded replay accepts submissions");
    let audit = runtime.conservation_audit().unwrap();

    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "forwarded", "dropped", "p50 ns", "p99 ns"
    );
    let mut tenant_rows: Vec<Json> = Vec::new();
    for (tenant, view) in &report.tenants {
        let pct = view.sojourn_ns.percentiles();
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            tenant,
            view.ledger.forwarded,
            view.ledger.dropped(),
            pct.p50_ns,
            pct.p99_ns
        );
        tenant_rows.push(Json::obj([
            ("tenant", Json::from(*tenant)),
            ("packets", Json::from(view.ledger.total())),
            ("forwarded", Json::from(view.ledger.forwarded)),
            ("dropped", Json::from(view.ledger.dropped())),
            (
                "dropped_unknown_module",
                Json::from(view.ledger.dropped_unknown_module),
            ),
            ("p50_ns", Json::from(pct.p50_ns)),
            ("p99_ns", Json::from(pct.p99_ns)),
        ]));
    }
    println!(
        "\nconservation audit: submitted={} processed={} forwarded={} dropped={} \
         ledger={} in_flight={} balanced={}",
        audit.submitted,
        audit.processed,
        audit.forwarded,
        audit.dropped,
        audit.ledger_total,
        audit.in_flight,
        audit.is_balanced()
    );

    // The replay's own books, the shard tallies and the per-tenant ledgers
    // must all agree before any of this is committed as a baseline.
    assert!(report.all_packets_accounted(), "replay lost packets");
    assert!(audit.is_balanced(), "conservation audit failed: {audit:?}");
    assert_eq!(audit.submitted, trace.len() as u64);
    let ledger_total: u64 = report.tenants.iter().map(|(_, v)| v.ledger.total()).sum();
    assert_eq!(ledger_total, trace.len() as u64);
    // The unloaded tenant's packets must be visible as unknown-module drops.
    let stray = report.tenant_view(3).expect("tenant 3 saw traffic");
    assert_eq!(stray.ledger.dropped_unknown_module, stray.ledger.total());
    assert!(report.tenant_view(1).is_some() && report.tenant_view(2).is_some());

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        ("profiling_compiled", Json::Bool(profiling_compiled)),
        ("profile_interval", Json::from(PROFILE_INTERVAL)),
        ("workload_packets", Json::from(packets.len())),
        ("interleaved_rounds", Json::from(rounds)),
        ("host_parallelism", Json::from(host_parallelism)),
        ("profiling_off_packets_per_sec", Json::from(pps_off)),
        ("profiling_on_packets_per_sec", Json::from(pps_on)),
        ("profiling_overhead_pct", Json::from(overhead_pct)),
        ("profiled_samples", Json::from(profile.sampled)),
        ("replay_packets", Json::from(trace.len())),
        ("replay_workload", Json::from("heavy_tailed_zipf1.1")),
        ("audit_balanced", Json::Bool(audit.is_balanced())),
        ("tenants", Json::Arr(tenant_rows)),
    ]);
    if !fast {
        menshen_bench::update_baseline("obs_overhead", &doc);
    }
    menshen_bench::write_json("bench_obs_overhead", &doc);
}
