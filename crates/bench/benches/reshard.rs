//! The elasticity benchmark: live resharding (2 → 8 → 2 shards) under trace
//! replay, committed as the `reshard` section of `BENCH_throughput.json`.
//!
//! The cost of an elastic step must be a measured number: each transition
//! reports its **migration pause** (the wall-clock the ingress is blocked
//! while the runtime quiesces, exports the moving tenants' state, stands
//! up/retires shards, injects the state into the new owners and publishes
//! the new RETA) together with how much state actually moved, and each
//! traffic stage reports its throughput and p99 sojourn — so the series
//! shows the plane healthy *after* every resize, not just before.

use menshen_bench::workloads::flow_rule_tenant;
use menshen_core::MenshenPipeline;
use menshen_json::Json;
use menshen_rmt::TABLE5;
use menshen_runtime::SteeringMode;
use menshen_testbed::elasticity::{elasticity_experiment, ElasticityConfig};
use menshen_trace::synth::{synthesize, WorkloadSpec};

const TENANTS: u16 = 8;
const RULES_PER_TENANT: usize = 150; // same CAM shape as the other benches

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let stages: Vec<usize> = if fast { vec![2, 4, 2] } else { vec![2, 8, 2] };
    let packets_per_stage = if fast { 2_048 } else { 65_536 };
    let trace_packets = if fast { 1_024 } else { 8_192 };

    let params = TABLE5.with_table_depth(2048);
    let mut template = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        template
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let mut spec = WorkloadSpec::uniform(TENANTS, 600, trace_packets);
    spec.rules_per_tenant = RULES_PER_TENANT;
    spec.mean_rate_pps = 10_000_000.0;
    let trace = synthesize(&spec).expect("workload spec is valid");

    let config = ElasticityConfig {
        stages: stages.clone(),
        packets_per_stage,
        dispatchers: 0,
        steering: SteeringMode::TenantAffine,
    };
    println!(
        "{TENANTS} tenants × {RULES_PER_TENANT} rules, {packets_per_stage} packets per stage, \
         shard schedule {stages:?} (unpaced replay, resize between stages)"
    );
    let report = elasticity_experiment(&template, &trace, &config)
        .expect("threaded replay accepts submissions");

    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "shards", "packets", "Mpps", "p50 ns", "p99 ns"
    );
    for stage in &report.stages {
        println!(
            "{:>8} {:>10} {:>10.2} {:>10} {:>12}",
            stage.shards, stage.packets, stage.mpps, stage.latency.p50_ns, stage.latency.p99_ns
        );
    }
    println!();
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "resize", "pause µs", "modules", "words"
    );
    for transition in &report.transitions {
        println!(
            "{:>4} → {:>3} {:>12.1} {:>10} {:>10}",
            transition.from_shards,
            transition.to_shards,
            transition.pause_ns as f64 / 1e3,
            transition.migrated_modules,
            transition.migrated_words
        );
    }
    println!(
        "\npost-resize throughput: {:.2} Mpps; worst migration pause: {:.1} µs",
        report.post_resize_mpps(),
        report.worst_pause_ns() as f64 / 1e3
    );

    assert!(
        report.all_packets_accounted,
        "a resize lost packets from the books: {report:?}"
    );
    assert_eq!(
        report.total_packets,
        (stages.len() * packets_per_stage) as u64
    );
    assert!(report.transitions.iter().all(|t| t.pause_ns > 0));
    // Tenant state moved on every transition of this schedule (tenant-affine
    // steering: every tenant is single-owner and the RETA rewrite moves
    // most of them).
    assert!(report.transitions.iter().all(|t| t.migrated_modules > 0));

    let stage_rows: Vec<Json> = report
        .stages
        .iter()
        .map(|stage| {
            Json::obj([
                ("shards", Json::from(stage.shards)),
                ("packets", Json::from(stage.packets)),
                ("mpps", Json::from(stage.mpps)),
                ("p50_ns", Json::from(stage.latency.p50_ns)),
                ("p99_ns", Json::from(stage.latency.p99_ns)),
                ("p999_ns", Json::from(stage.latency.p999_ns)),
                ("mean_ns", Json::from(stage.latency.mean_ns)),
            ])
        })
        .collect();
    let transition_rows: Vec<Json> = report
        .transitions
        .iter()
        .map(|transition| {
            Json::obj([
                ("from_shards", Json::from(transition.from_shards)),
                ("to_shards", Json::from(transition.to_shards)),
                ("pause_ns", Json::from(transition.pause_ns)),
                ("migrated_modules", Json::from(transition.migrated_modules)),
                ("migrated_words", Json::from(transition.migrated_words)),
            ])
        })
        .collect();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("rules_per_tenant", Json::from(RULES_PER_TENANT)),
        ("packets_per_stage", Json::from(packets_per_stage)),
        ("host_parallelism", Json::from(host_parallelism)),
        ("steering", Json::from("tenant_affine")),
        ("pacing", Json::from("unpaced_between_resizes")),
        ("total_packets", Json::from(report.total_packets)),
        (
            "all_packets_accounted",
            Json::Bool(report.all_packets_accounted),
        ),
        ("post_resize_mpps", Json::from(report.post_resize_mpps())),
        ("worst_pause_ns", Json::from(report.worst_pause_ns())),
        ("stages", Json::Arr(stage_rows)),
        ("transitions", Json::Arr(transition_rows)),
    ]);
    if !fast {
        menshen_bench::update_baseline("reshard", &doc);
    }
    menshen_bench::write_json("bench_reshard", &doc);
}
