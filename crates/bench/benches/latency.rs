//! The trace-replay latency benchmark: latency percentiles and RSS balance
//! across shard counts × workload shapes, committed next to the throughput
//! series in `BENCH_throughput.json`.
//!
//! Two traces are synthesised over the same 8-tenant flow-rule workload the
//! hot-path and shard-scaling benches use (so the numbers compose):
//!
//! * **uniform** — every flow equally popular, the baseline the testbed's
//!   generators always produced;
//! * **heavy_tailed** — Zipf(1.3) flow popularity: a handful of elephant
//!   flows dominate, which is what degrades 5-tuple RSS balance and shows
//!   up as a lower effective-shard count and fatter latency tail.
//!
//! Both traces are written as *real pcap files* under `results/` (one with
//! the classic microsecond magic, one with the nanosecond magic) and read
//! back before replay — the bench drives the same bytes any pcap consumer
//! would. Replay is open-loop and unpaced (saturation), through the real
//! threaded `ShardedRuntime`; every point must account for every packet
//! (`in == forwarded + drops` against the runtime's own tallies) or the
//! bench fails loudly.

use menshen_bench::workloads::flow_rule_tenant;
use menshen_core::MenshenPipeline;
use menshen_json::Json;
use menshen_rmt::TABLE5;
use menshen_runtime::SteeringMode;
use menshen_testbed::replay::replay_sweep;
use menshen_trace::pcap::{read_pcap_file, write_pcap_file, Endianness, TimestampPrecision};
use menshen_trace::replay::Pacing;
use menshen_trace::synth::{synthesize, FlowPopularity, WorkloadSpec};

const TENANTS: u16 = 8;
const RULES_PER_TENANT: usize = 150; // same CAM shape as the other benches

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let packets = if fast { 1024 } else { 4096 };
    let shard_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8] };

    let params = TABLE5.with_table_depth(2048);
    let mut template = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        template
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }

    // Synthesise the two workloads over the loaded rule space.
    let mut uniform = WorkloadSpec::uniform(TENANTS, 600, packets);
    uniform.rules_per_tenant = RULES_PER_TENANT;
    uniform.mean_rate_pps = 5_000_000.0;
    let mut heavy = WorkloadSpec::heavy_tailed(TENANTS, 200, packets);
    heavy.popularity = FlowPopularity::Zipf { exponent: 1.3 };
    heavy.rules_per_tenant = RULES_PER_TENANT;
    heavy.mean_rate_pps = 5_000_000.0;
    heavy.seed = 0xE1EF;

    // Round-trip both through real pcap files under results/ — microsecond
    // magic for one, nanosecond for the other, so both formats stay
    // exercised in CI.
    let results = menshen_bench::results_dir();
    let mut traces = Vec::new();
    for (spec, precision) in [
        (&uniform, TimestampPrecision::Micros),
        (&heavy, TimestampPrecision::Nanos),
    ] {
        let synthesised = synthesize(spec).expect("workload spec is valid");
        let path = results.join(format!("trace_{}.pcap", spec.name));
        write_pcap_file(&path, &synthesised, precision, Endianness::Little)
            .expect("trace pcap writes");
        let replayable = read_pcap_file(&path).expect("trace pcap reads back");
        assert_eq!(
            replayable.len(),
            synthesised.len(),
            "pcap round trip must preserve every packet"
        );
        println!("(wrote {})", path.display());
        traces.push((spec.name.clone(), replayable));
    }

    let report = replay_sweep(
        &template,
        &traces,
        shard_counts,
        SteeringMode::FiveTuple,
        Pacing::Unpaced,
    );

    println!();
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>11} {:>8} {:>11} {:>9}",
        "trace", "shards", "p50 ns", "p90 ns", "p99 ns", "p99.9 ns", "Mpps", "eff.shards", "skew"
    );
    for point in &report.points {
        println!(
            "{:<14} {:>6} {:>10} {:>10} {:>10} {:>11} {:>8.2} {:>11.2} {:>9.2}{}",
            point.trace,
            point.shards,
            point.latency.p50_ns,
            point.latency.p90_ns,
            point.latency.p99_ns,
            point.latency.p999_ns,
            point.achieved_mpps,
            point.effective_shards,
            point.skew,
            if point.all_packets_accounted {
                ""
            } else {
                "   (!) packets unaccounted"
            }
        );
    }

    for point in &report.points {
        assert!(
            point.all_packets_accounted,
            "replay lost packets: {} at {} shards",
            point.trace, point.shards
        );
        assert_eq!(point.submitted, packets as u64);
        assert!(
            point.latency.p99_ns >= point.latency.p50_ns,
            "percentiles must be monotone: {point:?}"
        );
    }
    // The structural claim of the experiment: at the widest sweep point the
    // heavy-tailed trace cannot balance better than the uniform one (its
    // elephants pin shards). Both traces and the steering are seeded and
    // deterministic, so this is a stable gate, not a flaky heuristic.
    let widest = *shard_counts.last().unwrap();
    let uniform_eff = report.point("uniform", widest).unwrap().effective_shards;
    let heavy_eff = report
        .point("heavy_tailed", widest)
        .unwrap()
        .effective_shards;
    assert!(
        heavy_eff <= uniform_eff + 1e-9,
        "heavy tail should not balance better than uniform: {heavy_eff:.2} vs {uniform_eff:.2}"
    );

    let latency_points: Vec<Json> = report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("trace", Json::from(point.trace.clone())),
                ("shards", Json::from(point.shards)),
                ("submitted", Json::from(point.submitted)),
                ("forwarded", Json::from(point.forwarded)),
                ("dropped", Json::from(point.dropped)),
                (
                    "all_packets_accounted",
                    Json::Bool(point.all_packets_accounted),
                ),
                ("p50_ns", Json::from(point.latency.p50_ns)),
                ("p90_ns", Json::from(point.latency.p90_ns)),
                ("p99_ns", Json::from(point.latency.p99_ns)),
                ("p999_ns", Json::from(point.latency.p999_ns)),
                ("mean_ns", Json::from(point.latency.mean_ns)),
                ("max_ns", Json::from(point.latency.max_ns)),
                ("burst_p50_ns", Json::from(point.burst_latency.p50_ns)),
                ("burst_p99_ns", Json::from(point.burst_latency.p99_ns)),
                ("achieved_mpps", Json::from(point.achieved_mpps)),
            ])
        })
        .collect();
    let balance_points: Vec<Json> = report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("trace", Json::from(point.trace.clone())),
                ("shards", Json::from(point.shards)),
                (
                    "shard_packets",
                    Json::arr(point.shard_packets.iter().copied()),
                ),
                ("skew", Json::from(point.skew)),
                ("effective_shards", Json::from(point.effective_shards)),
            ])
        })
        .collect();
    let meta = [
        ("tenants", Json::from(TENANTS)),
        ("rules_per_tenant", Json::from(RULES_PER_TENANT)),
        ("workload_packets", Json::from(packets)),
        ("steering", Json::from("five_tuple_rss")),
        ("pacing", Json::from("unpaced_saturation")),
        (
            "traces",
            Json::arr(["uniform", "heavy_tailed"].map(Json::from)),
        ),
    ];
    let latency_doc = Json::obj(
        meta.iter()
            .cloned()
            .chain([("points", Json::Arr(latency_points))]),
    );
    let balance_doc = Json::obj(
        meta.iter()
            .cloned()
            .chain([("points", Json::Arr(balance_points))]),
    );
    if !fast {
        menshen_bench::update_baseline("latency_percentiles", &latency_doc);
        menshen_bench::update_baseline("rss_balance", &balance_doc);
    }
    menshen_bench::write_json("bench_latency", &latency_doc);
    menshen_bench::write_json("bench_rss_balance", &balance_doc);
}
