//! The shard-scaling benchmark: cores vs aggregate Mpps over the sharded
//! multi-core runtime (`menshen-runtime`).
//!
//! Runs the `menshen_testbed::scaling` sweep at 1/2/4/8 shards on the same
//! multi-tenant flow-rule workload as the hot-path bench and appends the
//! `shard_scaling` series to the committed `BENCH_throughput.json` (merge-
//! update: the hot-path section is preserved).
//!
//! Measurement philosophy (same as the repo's 100 Gbit/s figures): the
//! per-shard rate and the dispatcher's steering rate are *measured*; every
//! shard count also runs the *real threaded runtime* end to end and must
//! account for every packet. The reported aggregate is the threaded
//! wall-clock rate when the host has enough cores to park every worker, and
//! otherwise the two-stage pipeline model
//! `min(dispatch_rate, per_shard_rate × effective_shards)` with the
//! effective shard count taken from the workload's actual steering balance.
//! The JSON records which source each point used, plus the host parallelism.

use menshen_bench::workloads::{flow_rule_tenant, flow_rule_tenant_with_port, flow_workload};
use menshen_core::MenshenPipeline;
use menshen_json::Json;
use menshen_rmt::action::AluInstruction;
use menshen_rmt::phv::ContainerRef as C;
use menshen_rmt::TABLE5;
use menshen_runtime::SteeringMode;
use menshen_testbed::scaling::{dispatch_scaling_sweep, scr_scaling_sweep, shard_scaling_sweep};

const TENANTS: u16 = 8;
const RULES_PER_TENANT: usize = 150; // 8 × 150 = 1200 CAM entries ≥ 1k
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DISPATCHER_COUNTS: [usize; 3] = [1, 2, 4];
// 32 shards is past the serial dispatcher's ceiling (per-shard × effective
// exceeds the measured ~95 Mpps steering rate), so the series shows the cap
// binding at 1 dispatcher and lifting at 2+.
const DISPATCH_SHARD_COUNTS: [usize; 3] = [8, 16, 32];

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let workload_packets = if fast { 1024 } else { 4096 };
    let reps = if fast { 1 } else { 5 };

    let params = TABLE5.with_table_depth(2048);
    let mut template = MenshenPipeline::new(params);
    let mut installed = 0usize;
    for module_id in 1..=TENANTS {
        let config = flow_rule_tenant(module_id, RULES_PER_TENANT);
        installed += config.stages[0].rules.len();
        template.load_module(&config).unwrap();
    }
    let packets = flow_workload(TENANTS, RULES_PER_TENANT, workload_packets);
    println!(
        "{TENANTS} tenants, {installed} CAM entries installed, {} packets per iteration, \
         5-tuple RSS steering",
        packets.len()
    );

    // 5-tuple steering spreads the 8 tenants' flows over all shards; the
    // workload's state (per-flow counters via `loadd`) is additive, so the
    // SCR replication regime preserves its semantics.
    let report = shard_scaling_sweep(
        &template,
        &packets,
        &SHARD_COUNTS,
        SteeringMode::FiveTuple,
        reps,
    );

    println!();
    println!(
        "per-shard (measured):  {:>8.2} Mpps    dispatcher (measured): {:>8.2} Mpps    host cores: {}",
        report.per_shard_mpps, report.dispatch_mpps, report.host_parallelism
    );
    println!();
    println!("shards   aggregate Mpps   source     model Mpps   threaded-on-host Mpps   eff. shards   speedup");
    for point in &report.points {
        println!(
            "{:>6}   {:>14.2}   {:<8} {:>12.2}   {:>21.2}   {:>11.2}   {:>6.2}x{}",
            point.shards,
            point.aggregate_mpps,
            point.source,
            point.model_mpps,
            point.threaded_mpps,
            point.effective_shards,
            point.speedup,
            if point.all_packets_accounted {
                ""
            } else {
                "   (!) packets unaccounted"
            }
        );
    }

    for point in &report.points {
        assert!(
            point.all_packets_accounted,
            "threaded runtime lost packets at {} shards",
            point.shards
        );
    }

    let point_4 = report.point(4).expect("the sweep covers 4 shards");
    let speedup_at_4 = point_4.speedup;
    // The CI gate uses the model speedup: it compares like with like on any
    // host (the series speedup can mix a measured baseline with a modeled
    // 4-shard point on small multi-core runners).
    let model_speedup_at_4 = point_4.model_speedup;

    let series: Vec<Json> = report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("cores", Json::from(point.shards)),
                ("mpps", Json::from(point.aggregate_mpps)),
                ("source", Json::from(point.source)),
                ("model_mpps", Json::from(point.model_mpps)),
                ("threaded_on_host_mpps", Json::from(point.threaded_mpps)),
                ("effective_shards", Json::from(point.effective_shards)),
                ("speedup_vs_1_shard", Json::from(point.speedup)),
                ("model_speedup_vs_1_shard", Json::from(point.model_speedup)),
                (
                    "all_packets_accounted",
                    Json::Bool(point.all_packets_accounted),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("cam_entries_installed", Json::from(installed)),
        ("workload_packets", Json::from(packets.len())),
        ("steering", Json::from("five_tuple_rss")),
        ("host_parallelism", Json::from(report.host_parallelism)),
        ("per_shard_mpps", Json::from(report.per_shard_mpps)),
        ("dispatch_mpps", Json::from(report.dispatch_mpps)),
        ("cores_vs_mpps", Json::Arr(series)),
        ("speedup_at_4_shards", Json::from(speedup_at_4)),
        ("model_speedup_at_4_shards", Json::from(model_speedup_at_4)),
    ]);
    if !fast {
        menshen_bench::update_baseline("shard_scaling", &doc);
    }
    menshen_bench::write_json("bench_sharding", &doc);

    // ------------------------------------------------------------------
    // Stateful (state-compute-replication) series: tenant 1 becomes a
    // storing, NON-mergeable program — its rules overwrite stateful word 2
    // with a packet field — so under 5-tuple steering it runs *replicated*:
    // every shard owns part of its flows and replays digests for the rest.
    // The series reports the replay-aware scaling model plus the digest
    // wire overhead per packet.
    // ------------------------------------------------------------------
    let mut stateful_template = MenshenPipeline::new(params);
    let mut storing = flow_rule_tenant_with_port(1, RULES_PER_TENANT, 1001);
    for rule in &mut storing.stages[0].rules {
        rule.action = rule
            .action
            .clone()
            .with(C::h4(3), AluInstruction::store(C::h4(1), 2));
    }
    stateful_template.load_module(&storing).unwrap();
    for module_id in 2..=TENANTS {
        stateful_template
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let stateful_report = scr_scaling_sweep(&stateful_template, &packets, &SHARD_COUNTS, reps);
    assert_eq!(
        stateful_report.replicated_modules,
        vec![1],
        "the storing tenant must classify Replicated"
    );

    println!();
    println!(
        "stateful series (tenant 1 storing/replicated): per-shard {:>7.2} Mpps   \
         replay {:>7.2} Mdigests/s   dispatcher {:>7.2} Mpps",
        stateful_report.per_shard_mpps, stateful_report.replay_mpps, stateful_report.dispatch_mpps
    );
    println!();
    println!(
        "shards   aggregate Mpps   source     model Mpps   threaded-on-host Mpps   digest B/pkt   speedup"
    );
    for point in &stateful_report.points {
        println!(
            "{:>6}   {:>14.2}   {:<8} {:>12.2}   {:>21.2}   {:>12.2}   {:>6.2}x{}",
            point.shards,
            point.aggregate_mpps,
            point.source,
            point.model_mpps,
            point.threaded_mpps,
            point.digest_bytes_per_packet,
            point.speedup,
            if point.all_packets_accounted {
                ""
            } else {
                "   (!) packets unaccounted"
            }
        );
    }
    for point in &stateful_report.points {
        assert!(
            point.all_packets_accounted,
            "stateful threaded runtime lost packets at {} shards",
            point.shards
        );
    }
    let stateful_4 = stateful_report.point(4).expect("the sweep covers 4 shards");
    // The committed acceptance figure: a non-mergeable storing tenant no
    // longer caps the series at one shard — the replay-aware model scales
    // past 1× despite the digest replay tax.
    assert!(
        stateful_4.model_speedup > 1.0,
        "replicated storing tenant must scale past one shard \
         (got {:.2}x model speedup)",
        stateful_4.model_speedup
    );

    let stateful_series: Vec<Json> = stateful_report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("cores", Json::from(point.shards)),
                ("mpps", Json::from(point.aggregate_mpps)),
                ("source", Json::from(point.source)),
                ("model_mpps", Json::from(point.model_mpps)),
                ("threaded_on_host_mpps", Json::from(point.threaded_mpps)),
                ("effective_shards", Json::from(point.effective_shards)),
                ("speedup_vs_1_shard", Json::from(point.speedup)),
                ("model_speedup_vs_1_shard", Json::from(point.model_speedup)),
                ("digest_packets", Json::from(point.digest_packets)),
                ("digest_bytes", Json::from(point.digest_bytes)),
                (
                    "digest_bytes_per_packet",
                    Json::from(point.digest_bytes_per_packet),
                ),
                (
                    "all_packets_accounted",
                    Json::Bool(point.all_packets_accounted),
                ),
            ])
        })
        .collect();
    let stateful_doc = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("storing_tenants", Json::from(1u64)),
        ("cam_entries_installed", Json::from(installed)),
        ("workload_packets", Json::from(packets.len())),
        ("steering", Json::from("five_tuple_rss")),
        ("execution_mode", Json::from("replicated_non_mergeable")),
        (
            "host_parallelism",
            Json::from(stateful_report.host_parallelism),
        ),
        ("per_shard_mpps", Json::from(stateful_report.per_shard_mpps)),
        (
            "replay_mdigests_per_s",
            Json::from(stateful_report.replay_mpps),
        ),
        ("dispatch_mpps", Json::from(stateful_report.dispatch_mpps)),
        ("cores_vs_mpps", Json::Arr(stateful_series)),
        ("speedup_at_4_shards", Json::from(stateful_4.speedup)),
        (
            "model_speedup_at_4_shards",
            Json::from(stateful_4.model_speedup),
        ),
    ]);
    if !fast {
        menshen_bench::update_baseline("shard_scaling_stateful", &stateful_doc);
    }
    menshen_bench::write_json("bench_sharding_stateful", &stateful_doc);

    // ------------------------------------------------------------------
    // Dispatch-scaling series: dispatchers × shards → Mpps. The point of
    // the parallel dispatch plane: one dispatcher caps the model at the
    // serial steering rate; N dispatchers lift that cap.
    // ------------------------------------------------------------------
    let dispatcher_counts: &[usize] = if fast { &[1, 2] } else { &DISPATCHER_COUNTS };
    let dispatch_shards: &[usize] = if fast { &[2] } else { &DISPATCH_SHARD_COUNTS };
    let dispatch_report = dispatch_scaling_sweep(
        &template,
        &packets,
        dispatcher_counts,
        dispatch_shards,
        SteeringMode::FiveTuple,
        reps,
    );
    println!();
    println!(
        "serial steering (measured): {:>8.2} Mpps    per-shard: {:>8.2} Mpps",
        dispatch_report.serial_dispatch_mpps, dispatch_report.per_shard_mpps
    );
    println!();
    println!(
        "disp x shards   aggregate Mpps   source     steer Mpps (src)    model Mpps   threaded-on-host"
    );
    for point in &dispatch_report.points {
        println!(
            "{:>4} x {:<6} {:>16.2}   {:<8} {:>10.2} ({:<8}) {:>12.2}   {:>16.2}{}",
            point.dispatchers,
            point.shards,
            point.aggregate_mpps,
            point.source,
            point.steer_mpps,
            point.steer_source,
            point.model_mpps,
            point.threaded_mpps,
            if point.all_packets_accounted {
                ""
            } else {
                "   (!) packets unaccounted"
            }
        );
    }
    for point in &dispatch_report.points {
        assert!(
            point.all_packets_accounted,
            "parallel dispatch plane lost packets at {} dispatchers x {} shards",
            point.dispatchers, point.shards
        );
    }
    let dispatch_series: Vec<Json> = dispatch_report
        .points
        .iter()
        .map(|point| {
            Json::obj([
                ("dispatchers", Json::from(point.dispatchers)),
                ("shards", Json::from(point.shards)),
                ("mpps", Json::from(point.aggregate_mpps)),
                ("source", Json::from(point.source)),
                ("steer_mpps", Json::from(point.steer_mpps)),
                ("steer_source", Json::from(point.steer_source)),
                ("model_mpps", Json::from(point.model_mpps)),
                ("threaded_on_host_mpps", Json::from(point.threaded_mpps)),
                ("effective_shards", Json::from(point.effective_shards)),
                (
                    "all_packets_accounted",
                    Json::Bool(point.all_packets_accounted),
                ),
            ])
        })
        .collect();
    let ring_impl = if cfg!(feature = "fast-ring") {
        "fast_ring_unsafe_slots"
    } else {
        "safe_ring_mutex_slots"
    };
    let dispatch_doc = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("workload_packets", Json::from(packets.len())),
        ("steering", Json::from("five_tuple_rss")),
        ("ring_impl", Json::from(ring_impl)),
        (
            "host_parallelism",
            Json::from(dispatch_report.host_parallelism),
        ),
        (
            "serial_dispatch_mpps",
            Json::from(dispatch_report.serial_dispatch_mpps),
        ),
        ("per_shard_mpps", Json::from(dispatch_report.per_shard_mpps)),
        ("points", Json::Arr(dispatch_series)),
    ]);
    if !fast {
        menshen_bench::update_baseline("dispatch_scaling", &dispatch_doc);
    }
    menshen_bench::write_json("bench_dispatch_scaling", &dispatch_doc);

    // The dispatch plane must lift the serial cap in the model: at the
    // widest point, the steering stage with the most dispatchers must
    // comfortably exceed the single-dispatcher stage.
    let widest = *dispatch_shards.last().unwrap();
    let most = *dispatcher_counts.last().unwrap();
    let steer_1 = dispatch_report
        .point(dispatcher_counts[0], widest)
        .expect("single-dispatcher point")
        .steer_mpps;
    let steer_n = dispatch_report
        .point(most, widest)
        .expect("widest point")
        .steer_mpps;
    assert!(
        steer_n >= steer_1 * 1.5 || most == 1,
        "{most} dispatchers should scale the steering stage: {steer_1:.1} → {steer_n:.1} Mpps"
    );

    assert!(
        model_speedup_at_4 >= 2.5,
        "acceptance criterion: 4 shards must reach >= 2.5x the 1-shard aggregate \
         (got {model_speedup_at_4:.2}x model speedup, {speedup_at_4:.2}x series speedup)"
    );
}
