//! Criterion benchmarks of the Menshen compiler (the measured counterpart of
//! Figure 8): end-to-end compilation of the CALC and system-level programs as
//! the number of generated match-action entries grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use menshen_compiler::{compile_source, parse_module, CompileOptions};
use menshen_programs::calc;
use menshen_programs::system;
use std::hint::black_box;

fn bench_compile_entry_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time_vs_entries");
    group.sample_size(20);
    for &entries in &[16usize, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("calc", entries),
            &entries,
            |b, &entries| {
                let options = CompileOptions::new(1).with_initial_entries(entries);
                b.iter(|| black_box(compile_source(calc::SOURCE, &options).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("system_level", entries),
            &entries,
            |b, &entries| {
                let options = CompileOptions::new(1).with_initial_entries(entries);
                b.iter(|| black_box(compile_source(system::SOURCE, &options).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_frontend_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler_frontend");
    group.sample_size(50);
    group.bench_function("parse_calc", |b| {
        b.iter(|| black_box(parse_module(calc::SOURCE).unwrap()))
    });
    group.bench_function("parse_system_level", |b| {
        b.iter(|| black_box(parse_module(system::SOURCE).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_compile_entry_sweep, bench_frontend_only);
criterion_main!(benches);
