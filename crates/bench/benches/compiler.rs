//! Benchmarks of the Menshen compiler (the measured counterpart of Figure 8):
//! end-to-end compilation of the CALC and system-level programs as the number
//! of generated match-action entries grows.

use menshen_bench::harness::{consume, Runner};
use menshen_compiler::{compile_source, parse_module, CompileOptions};
use menshen_programs::calc;
use menshen_programs::system;

fn bench_compile_entry_sweep(runner: &mut Runner) {
    for &entries in &[16usize, 64, 256, 1024] {
        for (name, source) in [("calc", calc::SOURCE), ("system_level", system::SOURCE)] {
            let options = CompileOptions::new(1).with_initial_entries(entries);
            runner.bench(&format!("compile/{name}_{entries}_entries"), 1, || {
                consume(compile_source(source, &options).unwrap());
            });
        }
    }
}

fn bench_frontend_only(runner: &mut Runner) {
    runner.bench("frontend/parse_calc", 1, || {
        consume(parse_module(calc::SOURCE).unwrap());
    });
    runner.bench("frontend/parse_system_level", 1, || {
        consume(parse_module(system::SOURCE).unwrap());
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_compile_entry_sweep(&mut runner);
    bench_frontend_only(&mut runner);
    menshen_bench::write_json("bench_compiler", &runner.results().to_vec());
}
