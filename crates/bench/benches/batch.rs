//! The headline hot-path benchmark: single-packet `process` vs DPDK-style
//! `process_batch` on a 3-tenant workload with ≥ 1k CAM entries installed.
//!
//! Writes the machine-readable baseline to `BENCH_throughput.json` at the
//! repository root (committed, so future PRs can compare against it) and a
//! copy of the raw measurements under `results/`.

use menshen_bench::harness::{consume, Runner};
use menshen_core::{
    MatchRule, MenshenPipeline, ModuleConfig, ModuleId, StageModuleConfig, BURST_SIZE,
};
use menshen_json::{Json, ToJson};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::match_table::LookupKey;
use menshen_rmt::phv::ContainerRef as C;
use menshen_rmt::TABLE5;
use std::path::PathBuf;

const TENANTS: u16 = 3;
const RULES_PER_TENANT: usize = 400; // 3 × 400 = 1200 CAM entries ≥ 1k
const WORKLOAD_PACKETS: usize = 3072;

/// A tenant matching on the destination IP (h4(1)) with `RULES_PER_TENANT`
/// distinct flow rules in stage 0: each rewrites the UDP destination port and
/// bumps a per-tenant stateful counter — the same shape as the CALC-style
/// modules, scaled up to a realistic table size.
fn tenant(module_id: u16) -> ModuleConfig {
    let mut config = ModuleConfig::empty(
        ModuleId::new(module_id),
        format!("tenant-{module_id}"),
        TABLE5.num_stages,
    );
    config.parser = ParserEntry::new(vec![
        ParseAction::new(34, C::h4(1)).unwrap(), // dst IP
        ParseAction::new(40, C::h2(0)).unwrap(), // UDP dst port
    ])
    .unwrap();
    config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
    let rules = (0..RULES_PER_TENANT)
        .map(|flow| MatchRule {
            key: LookupKey::from_slots(
                [
                    (0, 6),
                    (0, 6),
                    (dst_ip(module_id, flow), 4),
                    (0, 4),
                    (0, 2),
                    (0, 2),
                ],
                false,
            ),
            action: VliwAction::nop()
                .with(C::h2(0), AluInstruction::set(9000 + module_id))
                .with(C::h4(7), AluInstruction::loadd(0)),
        })
        .collect();
    config.stages[0] = StageModuleConfig {
        key_extract: Some(KeyExtractEntry {
            slots_4b: [1, 0],
            ..Default::default()
        }),
        key_mask: Some(KeyMask::for_slots(
            [false, false, true, false, false, false],
            false,
        )),
        rules,
        stateful_words: 16,
    };
    config
}

fn dst_ip(module_id: u16, flow: usize) -> u64 {
    // 10.<tenant>.<flow_hi>.<flow_lo>
    0x0a00_0000 | (u64::from(module_id) << 16) | (flow as u64 & 0xffff)
}

fn workload() -> Vec<Packet> {
    (0..WORKLOAD_PACKETS)
        .map(|i| {
            let module_id = 1 + (i as u16 % TENANTS);
            let flow = (i / TENANTS as usize) % RULES_PER_TENANT;
            let ip = dst_ip(module_id, flow);
            PacketBuilder::udp_data(
                module_id,
                [10, 0, 0, 1],
                [
                    ((ip >> 24) & 0xff) as u8,
                    ((ip >> 16) & 0xff) as u8,
                    ((ip >> 8) & 0xff) as u8,
                    (ip & 0xff) as u8,
                ],
                5000,
                80,
                &[0u8; 8],
            )
        })
        .collect()
}

fn main() {
    // A CAM deep enough for 1200 entries per stage.
    let params = TABLE5.with_table_depth(2048);
    let mut pipeline = MenshenPipeline::new(params);
    let mut installed = 0usize;
    for module_id in 1..=TENANTS {
        let config = tenant(module_id);
        installed += config.stages[0].rules.len();
        pipeline.load_module(&config).unwrap();
    }
    let packets = workload();
    println!(
        "{TENANTS} tenants, {installed} CAM entries installed, {} packets per iteration, burst {}",
        packets.len(),
        BURST_SIZE
    );

    // Sanity: both paths forward every packet of the workload.
    let ok = pipeline
        .process_batch(packets.clone())
        .iter()
        .filter(|v| v.is_forwarded())
        .count();
    assert_eq!(ok, packets.len(), "workload must be all-hits");

    let mut runner = Runner::new();
    let elements = packets.len() as u64;

    // The "before" baseline: the single-packet path as the seed shipped it,
    // with each stage's CAM lookup scanning every slot (the hardware-faithful
    // CAM model that was the only software path before this PR introduced the
    // hash index). Results are identical; only the cost differs.
    pipeline.set_cam_scan_mode(true);
    runner.bench("hot_path/single_packet_scan", elements, || {
        for packet in &packets {
            consume(pipeline.process(packet.clone()));
        }
    });
    pipeline.set_cam_scan_mode(false);

    // The single-packet path with the O(1) CAM index (this PR's `lookup`).
    runner.bench("hot_path/single_packet_indexed", elements, || {
        for packet in &packets {
            consume(pipeline.process(packet.clone()));
        }
    });

    // The batched path: O(1) index + per-burst amortisation.
    runner.bench("hot_path/process_batch", elements, || {
        for burst in packets.chunks(BURST_SIZE) {
            consume(pipeline.process_batch(burst.to_vec()));
        }
    });

    let scan = runner.get("hot_path/single_packet_scan").unwrap().clone();
    let indexed = runner
        .get("hot_path/single_packet_indexed")
        .unwrap()
        .clone();
    let batched = runner.get("hot_path/process_batch").unwrap().clone();
    let speedup_vs_scan = batched.elements_per_sec() / scan.elements_per_sec();
    let speedup_vs_indexed = batched.elements_per_sec() / indexed.elements_per_sec();
    println!();
    println!(
        "single-packet, CAM scan (pre-PR baseline): {:>12.0} packets/s",
        scan.elements_per_sec()
    );
    println!(
        "single-packet, CAM index:                  {:>12.0} packets/s  ({:.2}x vs scan)",
        indexed.elements_per_sec(),
        indexed.elements_per_sec() / scan.elements_per_sec()
    );
    println!(
        "process_batch, CAM index:                  {:>12.0} packets/s  ({speedup_vs_scan:.2}x vs scan, {speedup_vs_indexed:.2}x vs indexed single)",
        batched.elements_per_sec()
    );

    let baseline = Json::obj([
        ("benchmark", Json::from("hot_path_single_vs_batch")),
        ("tenants", Json::from(TENANTS)),
        ("cam_entries_installed", Json::from(installed)),
        ("workload_packets", Json::from(packets.len())),
        ("burst_size", Json::from(BURST_SIZE)),
        (
            "single_scan_packets_per_sec",
            Json::from(scan.elements_per_sec()),
        ),
        (
            "single_indexed_packets_per_sec",
            Json::from(indexed.elements_per_sec()),
        ),
        (
            "batch_packets_per_sec",
            Json::from(batched.elements_per_sec()),
        ),
        ("batch_speedup_vs_single_scan", Json::from(speedup_vs_scan)),
        (
            "batch_speedup_vs_single_indexed",
            Json::from(speedup_vs_indexed),
        ),
        ("measurements", runner.results().to_vec().to_json()),
    ]);
    // Fast (smoke) runs keep their results under `results/` only, so they
    // never overwrite the committed full-fidelity baseline at the repo root.
    if std::env::var_os("MENSHEN_BENCH_FAST").is_none() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        menshen_bench::write_json_at(&root.join("BENCH_throughput.json"), &baseline);
    }
    menshen_bench::write_json("bench_batch", &baseline);

    assert!(
        speedup_vs_scan >= 5.0,
        "acceptance criterion: process_batch must be >= 5x the pre-PR single-packet path (got {speedup_vs_scan:.2}x)"
    );
}
