//! The headline hot-path benchmark: single-packet `process` vs DPDK-style
//! `process_batch` on a 3-tenant workload with ≥ 1k CAM entries installed.
//!
//! Writes the machine-readable baseline to `BENCH_throughput.json` at the
//! repository root (committed, so future PRs can compare against it) and a
//! copy of the raw measurements under `results/`.

use menshen_bench::harness::{consume, Runner};
use menshen_bench::workloads::{flow_rule_tenant, flow_workload};
use menshen_core::{MenshenPipeline, BURST_SIZE};
use menshen_json::{Json, ToJson};
use menshen_rmt::TABLE5;

const TENANTS: u16 = 3;
const RULES_PER_TENANT: usize = 400; // 3 × 400 = 1200 CAM entries ≥ 1k
const WORKLOAD_PACKETS: usize = 3072;

fn main() {
    // A CAM deep enough for 1200 entries per stage.
    let params = TABLE5.with_table_depth(2048);
    let mut pipeline = MenshenPipeline::new(params);
    let mut installed = 0usize;
    for module_id in 1..=TENANTS {
        let config = flow_rule_tenant(module_id, RULES_PER_TENANT);
        installed += config.stages[0].rules.len();
        pipeline.load_module(&config).unwrap();
    }
    let packets = flow_workload(TENANTS, RULES_PER_TENANT, WORKLOAD_PACKETS);
    println!(
        "{TENANTS} tenants, {installed} CAM entries installed, {} packets per iteration, burst {}",
        packets.len(),
        BURST_SIZE
    );

    // Sanity: both paths forward every packet of the workload.
    let ok = pipeline
        .process_batch(packets.clone())
        .iter()
        .filter(|v| v.is_forwarded())
        .count();
    assert_eq!(ok, packets.len(), "workload must be all-hits");

    let mut runner = Runner::new();
    let elements = packets.len() as u64;

    // The "before" baseline: the single-packet path as the seed shipped it,
    // with each stage's CAM lookup scanning every slot (the hardware-faithful
    // CAM model that was the only software path before this PR introduced the
    // hash index). Results are identical; only the cost differs.
    pipeline.set_cam_scan_mode(true);
    runner.bench("hot_path/single_packet_scan", elements, || {
        for packet in &packets {
            consume(pipeline.process(packet.clone()));
        }
    });
    pipeline.set_cam_scan_mode(false);

    // The single-packet path with the O(1) CAM index (this PR's `lookup`).
    runner.bench("hot_path/single_packet_indexed", elements, || {
        for packet in &packets {
            consume(pipeline.process(packet.clone()));
        }
    });

    // The batched path: O(1) index + per-burst amortisation, driven through
    // the allocation-free `process_batch_into` with one reused verdict
    // buffer — the way the testbed sweeps and the sharded runtime's workers
    // consume it.
    let mut verdicts = Vec::new();
    runner.bench("hot_path/process_batch", elements, || {
        for burst in packets.chunks(BURST_SIZE) {
            pipeline.process_batch_into(burst, &mut verdicts);
            consume(&verdicts);
        }
    });

    let scan = runner.get("hot_path/single_packet_scan").unwrap().clone();
    let indexed = runner
        .get("hot_path/single_packet_indexed")
        .unwrap()
        .clone();
    let batched = runner.get("hot_path/process_batch").unwrap().clone();
    let speedup_vs_scan = batched.elements_per_sec() / scan.elements_per_sec();
    let speedup_vs_indexed = batched.elements_per_sec() / indexed.elements_per_sec();
    println!();
    println!(
        "single-packet, CAM scan (pre-PR baseline): {:>12.0} packets/s",
        scan.elements_per_sec()
    );
    println!(
        "single-packet, CAM index:                  {:>12.0} packets/s  ({:.2}x vs scan)",
        indexed.elements_per_sec(),
        indexed.elements_per_sec() / scan.elements_per_sec()
    );
    println!(
        "process_batch, CAM index:                  {:>12.0} packets/s  ({speedup_vs_scan:.2}x vs scan, {speedup_vs_indexed:.2}x vs indexed single)",
        batched.elements_per_sec()
    );

    let baseline = Json::obj([
        ("tenants", Json::from(TENANTS)),
        ("cam_entries_installed", Json::from(installed)),
        ("workload_packets", Json::from(packets.len())),
        ("burst_size", Json::from(BURST_SIZE)),
        (
            "single_scan_packets_per_sec",
            Json::from(scan.elements_per_sec()),
        ),
        (
            "single_indexed_packets_per_sec",
            Json::from(indexed.elements_per_sec()),
        ),
        (
            "batch_packets_per_sec",
            Json::from(batched.elements_per_sec()),
        ),
        ("batch_speedup_vs_single_scan", Json::from(speedup_vs_scan)),
        (
            "batch_speedup_vs_single_indexed",
            Json::from(speedup_vs_indexed),
        ),
        ("measurements", runner.results().to_vec().to_json()),
    ]);
    // Fast (smoke) runs keep their results under `results/` only, so they
    // never overwrite the committed full-fidelity baseline at the repo root.
    // Full runs merge-update their own section, preserving the other
    // benches' series.
    if std::env::var_os("MENSHEN_BENCH_FAST").is_none() {
        menshen_bench::update_baseline("hot_path_single_vs_batch", &baseline);
    }
    menshen_bench::write_json("bench_batch", &baseline);

    assert!(
        speedup_vs_scan >= 5.0,
        "acceptance criterion: process_batch must be >= 5x the pre-PR single-packet path (got {speedup_vs_scan:.2}x)"
    );
}
