//! Micro-benchmarks of the individual pipeline elements: the programmable
//! parser, key extraction, exact-match lookup and the action engine — the
//! per-element costs behind the pipeline numbers.

use menshen_bench::harness::{consume, Runner};
use menshen_packet::PacketBuilder;
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::key_extractor::extract_key;
use menshen_rmt::match_table::{ExactMatchTable, LookupKey, MatchEntry};
use menshen_rmt::phv::{ContainerRef, Phv};
use menshen_rmt::stateful::{IdentityTranslation, StatefulMemory};
use menshen_rmt::{action_engine, parser};

fn bench_parser(runner: &mut Runner) {
    let packet = PacketBuilder::udp_data(7, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[0xab; 64]);
    let entry = ParserEntry::new(vec![
        ParseAction::new(30, ContainerRef::h4(0)).unwrap(),
        ParseAction::new(34, ContainerRef::h4(1)).unwrap(),
        ParseAction::new(38, ContainerRef::h2(0)).unwrap(),
        ParseAction::new(40, ContainerRef::h2(1)).unwrap(),
        ParseAction::new(46, ContainerRef::h6(0)).unwrap(),
    ])
    .unwrap();
    runner.bench("parser/parse_5_fields", 1, || {
        consume(parser::parse(&packet, &entry, 7).unwrap());
    });
    let mut phv = Phv::zeroed();
    runner.bench("parser/parse_into_5_fields", 1, || {
        parser::parse_into(&mut phv, &packet, &entry, 7).unwrap();
        consume(&phv);
    });
}

fn bench_key_extraction_and_lookup(runner: &mut Runner) {
    let mut phv = Phv::zeroed();
    phv.set(ContainerRef::h4(1), 0x0a00_0002);
    let entry = KeyExtractEntry {
        slots_4b: [1, 0],
        ..Default::default()
    };
    let mask = KeyMask::for_slots([false, false, true, false, false, false], false);
    runner.bench("stage/key_extraction", 1, || {
        consume(extract_key(&phv, &entry, &mask));
    });

    // CAM lookup cost across table depths: with the hash index both depths
    // cost the same (the point of the O(1) index).
    for depth in [16usize, 1024] {
        let mut table = ExactMatchTable::new(depth);
        for i in 0..depth as u16 {
            let key = LookupKey::from_slots(
                [(0, 6), (0, 6), (u64::from(i), 4), (0, 4), (0, 2), (0, 2)],
                false,
            );
            table
                .install(
                    usize::from(i),
                    MatchEntry {
                        key,
                        module_id: i % 4,
                        action_index: i,
                    },
                )
                .unwrap();
        }
        let key = LookupKey::from_slots([(0, 6), (0, 6), (9, 4), (0, 4), (0, 2), (0, 2)], false);
        runner.bench(&format!("stage/cam_lookup_depth_{depth}"), 1, || {
            consume(table.lookup(&key, 1));
        });
    }
}

fn bench_action_engine(runner: &mut Runner) {
    let action = VliwAction::nop()
        .with(
            ContainerRef::h4(0),
            AluInstruction::addi(ContainerRef::h4(1), 1),
        )
        .with(
            ContainerRef::h4(2),
            AluInstruction::add(ContainerRef::h4(0), ContainerRef::h4(1)),
        )
        .with(ContainerRef::h2(0), AluInstruction::set(99))
        .with(ContainerRef::h4(7), AluInstruction::loadd(3))
        .with_metadata(AluInstruction::port(2));
    let mut stateful = StatefulMemory::new(64);
    runner.bench("stage/action_engine_5_alus", 1, || {
        let mut phv = Phv::zeroed();
        consume(action_engine::execute(
            &action,
            &mut phv,
            &mut stateful,
            &IdentityTranslation,
        ));
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_parser(&mut runner);
    bench_key_extraction_and_lookup(&mut runner);
    bench_action_engine(&mut runner);
    menshen_bench::write_json("bench_components", &runner.results().to_vec());
}
