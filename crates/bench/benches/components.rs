//! Criterion micro-benchmarks of the individual pipeline elements: the
//! programmable parser, key extraction, exact-match lookup and the action
//! engine — the per-element costs behind the pipeline numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use menshen_packet::PacketBuilder;
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::key_extractor::extract_key;
use menshen_rmt::match_table::{ExactMatchTable, LookupKey, MatchEntry};
use menshen_rmt::phv::{ContainerRef, Phv};
use menshen_rmt::stateful::{IdentityTranslation, StatefulMemory};
use menshen_rmt::{action_engine, parser};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let packet = PacketBuilder::udp_data(7, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[0xab; 64]);
    let entry = ParserEntry::new(vec![
        ParseAction::new(30, ContainerRef::h4(0)).unwrap(),
        ParseAction::new(34, ContainerRef::h4(1)).unwrap(),
        ParseAction::new(38, ContainerRef::h2(0)).unwrap(),
        ParseAction::new(40, ContainerRef::h2(1)).unwrap(),
        ParseAction::new(46, ContainerRef::h6(0)).unwrap(),
    ])
    .unwrap();
    c.bench_function("parser_5_fields", |b| {
        b.iter(|| black_box(parser::parse(&packet, &entry, 7).unwrap()))
    });
}

fn bench_key_extraction_and_lookup(c: &mut Criterion) {
    let mut phv = Phv::zeroed();
    phv.set(ContainerRef::h4(1), 0x0a00_0002);
    let entry = KeyExtractEntry { slots_4b: [1, 0], ..Default::default() };
    let mask = KeyMask::for_slots([false, false, true, false, false, false], false);
    c.bench_function("key_extraction", |b| {
        b.iter(|| black_box(extract_key(&phv, &entry, &mask)))
    });

    let mut table = ExactMatchTable::new(16);
    for i in 0..16u16 {
        let key = LookupKey::from_slots(
            [(0, 6), (0, 6), (u64::from(i), 4), (0, 4), (0, 2), (0, 2)],
            false,
        );
        table
            .install(usize::from(i), MatchEntry { key, module_id: i % 4, action_index: i })
            .unwrap();
    }
    let key = LookupKey::from_slots([(0, 6), (0, 6), (9, 4), (0, 4), (0, 2), (0, 2)], false);
    c.bench_function("cam_lookup_depth_16", |b| {
        b.iter(|| black_box(table.lookup(&key, 1)))
    });
}

fn bench_action_engine(c: &mut Criterion) {
    let action = VliwAction::nop()
        .with(ContainerRef::h4(0), AluInstruction::addi(ContainerRef::h4(1), 1))
        .with(ContainerRef::h4(2), AluInstruction::add(ContainerRef::h4(0), ContainerRef::h4(1)))
        .with(ContainerRef::h2(0), AluInstruction::set(99))
        .with(ContainerRef::h4(7), AluInstruction::loadd(3))
        .with_metadata(AluInstruction::port(2));
    let mut stateful = StatefulMemory::new(64);
    c.bench_function("action_engine_5_alus", |b| {
        b.iter(|| {
            let mut phv = Phv::zeroed();
            black_box(action_engine::execute(&action, &mut phv, &mut stateful, &IdentityTranslation))
        })
    });
}

criterion_group!(benches, bench_parser, bench_key_extraction_and_lookup, bench_action_engine);
criterion_main!(benches);
