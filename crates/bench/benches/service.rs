//! The two-process service-loopback experiment.
//!
//! Spawns `menshen-serve` (UDP socket data plane on loopback) and
//! `menshen-loadgen` (paced heavy-tailed replay over real sockets) as
//! separate OS processes — the closest this testbed gets to the paper's
//! tester-and-device setup — and commits the `service_loopback` baseline:
//! achieved kpps, p50/p99 end-to-end latency over loopback, and the
//! zero-loss graceful drain. Mid-run, the harness resizes the service's
//! shard set over the control socket to show live reconfiguration under
//! socket traffic loses nothing.

use menshen_bench::service_proc::{run_loadgen_proc, ServeProc, ServeSpec};
use menshen_bench::{header, update_baseline, write_json};
use menshen_json::Json;
use std::time::Duration;

const SERVE_EXE: &str = env!("CARGO_BIN_EXE_menshen-serve");
const LOADGEN_EXE: &str = env!("CARGO_BIN_EXE_menshen-loadgen");

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let packets = if fast { 20_000 } else { 100_000 };
    let rate_pps = if fast { 40_000.0 } else { 100_000.0 };

    header("service loopback: two-process UDP testbed");
    let serve = ServeProc::spawn(
        SERVE_EXE,
        &ServeSpec {
            queues: 2,
            shards: 2,
            tenants: 4,
            metrics_path: None,
        },
    );
    println!("serve up: data {:?}, control {}", serve.data, serve.control);

    // Live reconfiguration under traffic: scale 2 -> 4 -> 2 while the
    // generator is mid-replay, from a third thread so the resize overlaps
    // the paced sends.
    let control_serve = serve.control;
    let resizer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        let up = menshen_io::control_request(control_serve, "RESIZE 4", Duration::from_secs(10))
            .expect("resize up");
        std::thread::sleep(Duration::from_millis(200));
        let down = menshen_io::control_request(control_serve, "RESIZE 2", Duration::from_secs(10))
            .expect("resize down");
        (up, down)
    });

    let summary = run_loadgen_proc(LOADGEN_EXE, &serve.data, packets, rate_pps);
    let (resize_up, resize_down) = resizer.join().expect("resizer thread");
    assert!(
        resize_up.starts_with("ok shards 2->4"),
        "live resize up under traffic: {resize_up}"
    );
    assert!(
        resize_down.starts_with("ok shards 4->2"),
        "live resize down under traffic: {resize_down}"
    );

    let drained = serve.drain();

    println!(
        "sent {} pkts at {:.1} kpps offered / {:.1} kpps achieved",
        summary.sent,
        summary.offered_pps / 1e3,
        summary.achieved_pps / 1e3
    );
    println!(
        "end-to-end rtt: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        summary.rtt_p50_ns as f64 / 1e3,
        summary.rtt_p99_ns as f64 / 1e3,
        summary.rtt_max_ns as f64 / 1e3
    );
    println!(
        "drain: balanced={} submitted={} forwarded={} dropped={} echoes={}",
        drained.balanced, drained.submitted, drained.forwarded, drained.dropped, summary.echoes
    );
    println!("resize under traffic: {resize_up} / {resize_down}");

    assert!(summary.lossless(), "echo loss over loopback: {summary:?}");
    assert!(drained.balanced, "drain books do not balance: {drained:?}");
    assert_eq!(
        drained.submitted, summary.sent,
        "every sent frame reached the runtime"
    );
    assert!(summary.forwarded > 0, "passthrough tenants forward traffic");

    let doc = Json::obj([
        ("processes", Json::from(2u64)),
        ("transport", Json::from("udp_loopback")),
        ("queues", Json::from(2u64)),
        ("shards", Json::from(2u64)),
        ("packets", Json::from(summary.sent)),
        ("offered_kpps", Json::from(summary.offered_pps / 1e3)),
        ("achieved_kpps", Json::from(summary.achieved_pps / 1e3)),
        ("rtt_p50_us", Json::from(summary.rtt_p50_ns as f64 / 1e3)),
        ("rtt_p99_us", Json::from(summary.rtt_p99_ns as f64 / 1e3)),
        ("rtt_max_us", Json::from(summary.rtt_max_ns as f64 / 1e3)),
        ("echoes", Json::from(summary.echoes)),
        ("forwarded", Json::from(summary.forwarded)),
        ("dropped", Json::from(summary.dropped)),
        (
            "zero_loss_drain",
            Json::from(summary.lossless() && drained.balanced),
        ),
        ("live_resize_under_traffic", Json::from("2->4->2")),
    ]);
    if !fast {
        update_baseline("service_loopback", &doc);
    }
    write_json("bench_service", &doc);
}
