//! Criterion micro-benchmarks of the functional pipeline: per-packet
//! processing cost for the baseline RMT pipeline and for the Menshen pipeline
//! with 1, 8 and 16 loaded tenants, across packet sizes.
//!
//! These measure the *simulator's* throughput (useful for keeping the
//! simulator fast and for the ablation of isolation-primitive cost in
//! software); absolute hardware throughput comes from the platform model
//! (see `fig11_throughput`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use menshen_core::MenshenPipeline;
use menshen_programs::{all_programs, EvaluatedProgram};
use menshen_programs::calc::Calc;
use menshen_rmt::{RmtPipeline, RmtProgram, TABLE5};
use menshen_testbed::TrafficGenerator;
use std::hint::black_box;

fn bench_rmt_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmt_baseline");
    group.sample_size(30);
    let mut pipeline = RmtPipeline::new(TABLE5);
    pipeline.load_program(RmtProgram::default()).unwrap();
    let mut generator = TrafficGenerator::new(1);
    for &size in &[64usize, 256, 1500] {
        let packets = generator.burst(1, size, 64);
        group.throughput(Throughput::Elements(packets.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &packets, |b, packets| {
            b.iter(|| {
                for packet in packets {
                    black_box(pipeline.process(packet.clone()).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_menshen_single_module(c: &mut Criterion) {
    let mut group = c.benchmark_group("menshen_single_module");
    group.sample_size(30);
    let mut pipeline = MenshenPipeline::new(TABLE5);
    pipeline.load_module(&Calc.build(1).unwrap()).unwrap();
    for &size in &[64usize, 256, 1500] {
        let mut generator = TrafficGenerator::new(2);
        let packets = generator.burst(1, size, 64);
        group.throughput(Throughput::Elements(packets.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &packets, |b, packets| {
            b.iter(|| {
                for packet in packets {
                    black_box(pipeline.process(packet.clone()));
                }
            })
        });
    }
    group.finish();
}

fn bench_menshen_multi_tenant(c: &mut Criterion) {
    let mut group = c.benchmark_group("menshen_multi_tenant");
    group.sample_size(20);
    // All eight Table 3 programs loaded side by side; traffic round-robins
    // over the tenants. Together they need more stage-0 match entries than
    // the prototype's 16-deep CAM, so this bench provisions a deeper table.
    let mut pipeline = MenshenPipeline::new(TABLE5.with_table_depth(64));
    let programs = all_programs();
    let mut workload = Vec::new();
    for (index, program) in programs.iter().enumerate() {
        let module_id = (index + 1) as u16;
        program.configure_system(pipeline.system_mut());
        pipeline.load_module(&program.build(module_id).unwrap()).unwrap();
        workload.extend(program.packets(module_id, 8, 3));
    }
    group.throughput(Throughput::Elements(workload.len() as u64));
    group.bench_function("eight_tenants_mixed", |b| {
        b.iter(|| {
            for packet in &workload {
                black_box(pipeline.process(packet.clone()));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rmt_baseline,
    bench_menshen_single_module,
    bench_menshen_multi_tenant
);
criterion_main!(benches);
