//! Micro-benchmarks of the functional pipeline: per-packet processing cost
//! for the baseline RMT pipeline and for the Menshen pipeline with 1 and 8
//! loaded tenants, across packet sizes — on both the single-packet and the
//! batched data path.
//!
//! These measure the *simulator's* throughput (useful for keeping the
//! simulator fast and for the ablation of isolation-primitive cost in
//! software); absolute hardware throughput comes from the platform model
//! (see `fig11_throughput`).

use menshen_bench::harness::{consume, Runner};
use menshen_core::{MenshenPipeline, BURST_SIZE};
use menshen_programs::calc::Calc;
use menshen_programs::{all_programs, EvaluatedProgram};
use menshen_rmt::{RmtPipeline, RmtProgram, TABLE5};
use menshen_testbed::TrafficGenerator;

fn bench_rmt_baseline(runner: &mut Runner) {
    let mut pipeline = RmtPipeline::new(TABLE5);
    pipeline.load_program(RmtProgram::default()).unwrap();
    let mut generator = TrafficGenerator::new(1);
    for &size in &[64usize, 256, 1500] {
        let packets = generator.burst(1, size, 64);
        runner.bench(
            &format!("rmt_baseline/{size}B"),
            packets.len() as u64,
            || {
                for packet in &packets {
                    consume(pipeline.process(packet.clone()).unwrap());
                }
            },
        );
    }
}

fn bench_menshen_single_module(runner: &mut Runner) {
    let mut pipeline = MenshenPipeline::new(TABLE5);
    pipeline.load_module(&Calc.build(1).unwrap()).unwrap();
    for &size in &[64usize, 256, 1500] {
        let mut generator = TrafficGenerator::new(2);
        let packets = generator.burst(1, size, 64);
        runner.bench(
            &format!("menshen_single/{size}B"),
            packets.len() as u64,
            || {
                for packet in &packets {
                    consume(pipeline.process(packet.clone()));
                }
            },
        );
        runner.bench(
            &format!("menshen_single_batched/{size}B"),
            packets.len() as u64,
            || {
                for burst in packets.chunks(BURST_SIZE) {
                    consume(pipeline.process_batch(burst.to_vec()));
                }
            },
        );
    }
}

fn bench_menshen_multi_tenant(runner: &mut Runner) {
    // All eight Table 3 programs loaded side by side; traffic round-robins
    // over the tenants. Together they need more stage-0 match entries than
    // the prototype's 16-deep CAM, so this bench provisions a deeper table.
    let mut pipeline = MenshenPipeline::new(TABLE5.with_table_depth(64));
    let programs = all_programs();
    let mut workload = Vec::new();
    for (index, program) in programs.iter().enumerate() {
        let module_id = (index + 1) as u16;
        program.configure_system(pipeline.system_mut());
        pipeline
            .load_module(&program.build(module_id).unwrap())
            .unwrap();
        workload.extend(program.packets(module_id, 8, 3));
    }
    runner.bench("menshen_8_tenants/single", workload.len() as u64, || {
        for packet in &workload {
            consume(pipeline.process(packet.clone()));
        }
    });
    runner.bench("menshen_8_tenants/batched", workload.len() as u64, || {
        for burst in workload.chunks(BURST_SIZE) {
            consume(pipeline.process_batch(burst.to_vec()));
        }
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_rmt_baseline(&mut runner);
    bench_menshen_single_module(&mut runner);
    bench_menshen_multi_tenant(&mut runner);
    menshen_bench::write_json("bench_pipeline", &runner.results().to_vec());
}
