//! Million-rule match-engine scaling: lookup Mpps and memory bytes per
//! match kind (exact CAM index, LPM trie, range intervals) at 10^3 / 10^5 /
//! 10^6 installed rules, plus two guard measurements:
//!
//! * the exact-match batch hot path re-measured (same workload and
//!   acceptance criterion as the `batch` bench) to show the LPM/range
//!   dispatch added to the stage loop did not regress it, and
//! * a live install burst published over the non-quiescing control path
//!   while threaded shards keep forwarding, with every packet accounted.
//!
//! Full runs merge-update the `match_scaling` section of the committed
//! `BENCH_throughput.json`; `MENSHEN_BENCH_FAST=1` smoke runs measure the
//! 10^3 tier only and write under `results/` alone.

use menshen_bench::harness::{consume, Runner};
use menshen_bench::workloads::{flow_rule_tenant, flow_workload};
use menshen_core::module::{LpmMatchRule, ModuleConfig, StageModuleConfig, TableRule};
use menshen_core::{MenshenPipeline, ModuleId, BURST_SIZE};
use menshen_cost::{MatchMemoryModel, MatchMemoryRow};
use menshen_json::{Json, ToJson};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::action::{AluInstruction, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
use menshen_rmt::lpm::LpmTable;
use menshen_rmt::match_table::{ExactMatchTable, LookupKey, MatchEntry, MatchKind};
use menshen_rmt::phv::ContainerRef as C;
use menshen_rmt::ternary::{RangeRule, RangeTable};
use menshen_rmt::TABLE5;
use menshen_runtime::{RuntimeOptions, ShardedRuntime};

/// Lookup keys cycled per measured iteration.
const PROBE_KEYS: usize = 4096;
/// The byte offset of the 4-byte key slot the flat tables match on.
const KEY_OFFSET: usize = 12;

fn key_for(dst: u64) -> LookupKey {
    LookupKey::from_slots([(0, 6), (0, 6), (dst, 4), (0, 4), (0, 2), (0, 2)], false)
}

/// A clustered prefix distribution: runs of adjacent /24s under shared trie
/// parents with a sprinkling of covering /16 aggregates — the shape of a
/// provider route table, and the case the level-compressed block layout is
/// built for.
fn clustered_prefixes(n: usize) -> Vec<(u32, u8)> {
    let mut out = Vec::with_capacity(n);
    let (mut slash24, mut slash16) = (0u32, 0u32);
    while out.len() < n {
        if out.len() % 64 == 63 {
            out.push((slash16 << 16, 16));
            slash16 += 1;
        } else {
            out.push((slash24 << 8, 24));
            slash24 += 1;
        }
    }
    out
}

struct LayoutResult {
    row: MatchMemoryRow,
    lookups_per_sec: f64,
}

impl ToJson for LayoutResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from(self.row.kind)),
            ("rules", Json::from(self.row.entries)),
            ("lookups_per_sec", Json::from(self.lookups_per_sec)),
            ("mpps", Json::from(self.lookups_per_sec / 1e6)),
            ("data_path_bytes", Json::from(self.row.data_path_bytes)),
            ("control_bytes", Json::from(self.row.control_bytes)),
            ("bytes_per_entry", Json::from(self.row.bytes_per_entry())),
        ])
    }
}

fn bench_exact(runner: &mut Runner, rules: usize) -> LayoutResult {
    let mut table = ExactMatchTable::new(rules);
    for i in 0..rules {
        table
            .install(
                i,
                MatchEntry {
                    key: key_for(i as u64),
                    module_id: 1,
                    action_index: (i % 16) as u16,
                },
            )
            .unwrap();
    }
    let probes: Vec<LookupKey> = (0..PROBE_KEYS)
        .map(|i| key_for((i.wrapping_mul(2_654_435_761) % (rules * 2)) as u64))
        .collect();
    let m = runner.bench(
        &format!("match_scaling/exact/{rules}"),
        probes.len() as u64,
        || {
            for key in &probes {
                consume(table.lookup(key, 1));
            }
        },
    );
    LayoutResult {
        // The software hash index prices nothing the hardware has; report
        // the CAM's analytic per-entry cost next to the measured rate.
        row: MatchMemoryModel::cam(rules),
        lookups_per_sec: m.elements_per_sec(),
    }
}

fn bench_lpm(runner: &mut Runner, rules: usize) -> LayoutResult {
    let mut table = LpmTable::new(KEY_OFFSET, rules);
    for (prefix, len) in clustered_prefixes(rules) {
        table.insert(prefix, len, prefix % 1024).unwrap();
    }
    // Probe addresses inside installed /24 blocks plus ~1/3 strays beyond
    // them (misses or aggregate-only hits).
    let span = (rules as u64).saturating_mul(3) / 2 * 256;
    let probes: Vec<LookupKey> = (0..PROBE_KEYS)
        .map(|i| key_for((i as u64).wrapping_mul(48_271 * 256 + 97) % span.max(1)))
        .collect();
    let m = runner.bench(
        &format!("match_scaling/lpm/{rules}"),
        probes.len() as u64,
        || {
            for key in &probes {
                consume(table.lookup_key(key));
            }
        },
    );
    LayoutResult {
        row: MatchMemoryModel::lpm(&table),
        lookups_per_sec: m.elements_per_sec(),
    }
}

fn bench_range(runner: &mut Runner, rules: usize) -> LayoutResult {
    let mut table = RangeTable::new(KEY_OFFSET, 4, rules);
    // Disjoint intervals with gaps (half the space misses), a few priority
    // tiers.
    table
        .bulk_load((0..rules as u64).map(|i| RangeRule {
            lo: i * 128,
            hi: i * 128 + 63,
            priority: (i % 4) as u16,
            action: i as u32,
        }))
        .unwrap();
    let span = rules as u64 * 128;
    let probes: Vec<u64> = (0..PROBE_KEYS)
        .map(|i| (i as u64).wrapping_mul(2_246_822_519) % span)
        .collect();
    let m = runner.bench(
        &format!("match_scaling/range/{rules}"),
        probes.len() as u64,
        || {
            for &value in &probes {
                consume(table.lookup(value));
            }
        },
    );
    LayoutResult {
        row: MatchMemoryModel::range(&table),
        lookups_per_sec: m.elements_per_sec(),
    }
}

/// The exact-match hot path, re-measured with the flat-table dispatch now in
/// the stage loop: same workload and criterion as the `batch` bench.
fn bench_exact_hot_path(runner: &mut Runner) -> (f64, f64, f64) {
    const TENANTS: u16 = 3;
    const RULES_PER_TENANT: usize = 400;
    let params = TABLE5.with_table_depth(2048);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    let packets = flow_workload(TENANTS, RULES_PER_TENANT, 3072);
    let elements = packets.len() as u64;

    pipeline.set_cam_scan_mode(true);
    let scan = runner
        .bench("match_scaling/exact_single_scan", elements, || {
            for packet in &packets {
                consume(pipeline.process(packet.clone()));
            }
        })
        .elements_per_sec();
    pipeline.set_cam_scan_mode(false);

    let mut verdicts = Vec::new();
    let batch = runner
        .bench("match_scaling/exact_process_batch", elements, || {
            for burst in packets.chunks(BURST_SIZE) {
                pipeline.process_batch_into(burst, &mut verdicts);
                consume(&verdicts);
            }
        })
        .elements_per_sec();
    (scan, batch, batch / scan)
}

/// An LPM module matching the destination IP (4-byte key slot 0), identical
/// to the runtime tests' shape.
fn lpm_module(module_id: u16) -> ModuleConfig {
    let mut config = ModuleConfig::empty(ModuleId::new(module_id), format!("lpm{module_id}"), 5);
    config.parser = ParserEntry::new(vec![
        ParseAction::new(34, C::h4(1)).unwrap(),
        ParseAction::new(40, C::h2(0)).unwrap(),
    ])
    .unwrap();
    config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
    config.stages[0] = StageModuleConfig {
        key_extract: Some(KeyExtractEntry {
            slots_4b: [1, 0],
            ..Default::default()
        }),
        key_mask: Some(KeyMask::for_slots(
            [false, false, true, false, false, false],
            false,
        )),
        match_kind: MatchKind::Lpm {
            key_offset: KEY_OFFSET as u8,
        },
        table_actions: vec![
            VliwAction::nop().with(C::h2(0), AluInstruction::set(1111)),
            VliwAction::nop().with(C::h2(0), AluInstruction::set(2222)),
        ],
        ..Default::default()
    };
    config
}

/// Publishes `burst_rules` LPM rules over the non-quiescing control path
/// while threaded shards keep forwarding; returns the JSON record and
/// asserts every packet is accounted for.
fn live_install_burst(burst_rules: usize) -> Json {
    let mut runtime = ShardedRuntime::new(TABLE5, RuntimeOptions::threaded(2));
    let module = ModuleId::new(7);
    runtime.load_module(&lpm_module(7)).unwrap();

    let burst: Vec<Packet> = (0..BURST_SIZE)
        .map(|i| {
            PacketBuilder::udp_data(
                7,
                [172, 16, 0, 1],
                [10, 0, (i / 256) as u8, (i % 256) as u8],
                5000,
                80,
                &[0u8; 8],
            )
        })
        .collect();
    let rules: Vec<TableRule> = clustered_prefixes(burst_rules)
        .into_iter()
        .map(|(prefix, prefix_len)| {
            TableRule::Lpm(LpmMatchRule {
                prefix,
                prefix_len,
                action: (u64::from(prefix) % 2) as u16,
            })
        })
        .collect();

    let start = std::time::Instant::now();
    let mut submitted = 0u64;
    let mut last_epoch = 0u64;
    for chunk in rules.chunks(500.max(burst_rules / 20)) {
        runtime.submit(&burst).unwrap();
        submitted += burst.len() as u64;
        last_epoch = runtime.install_rules_async(module, 0, chunk);
        runtime.submit(&burst).unwrap();
        submitted += burst.len() as u64;
    }
    runtime.flush();
    runtime.wait_for_epoch(last_epoch).unwrap();
    assert!(
        runtime.epoch_error(last_epoch).is_none(),
        "install burst must apply cleanly"
    );
    let elapsed = start.elapsed();

    let stats = runtime.shard_stats();
    let processed: u64 = stats.iter().map(|s| s.packets).sum();
    let forwarded: u64 = stats.iter().map(|s| s.forwarded).sum();
    assert_eq!(
        processed, submitted,
        "non-quiescing install: every packet submitted during the burst must be processed"
    );
    assert_eq!(
        forwarded, submitted,
        "non-quiescing install: no packet may be dropped while rules stream in"
    );
    let standby = runtime.standby_replica();
    let installed = standby.lpm_table(module, 0).map_or(0, |t| t.len());
    assert_eq!(installed, burst_rules, "every published rule installed");
    runtime.shutdown();

    println!(
        "live install: {burst_rules} rules in {:.1} ms with {submitted} packets in flight, all forwarded",
        elapsed.as_secs_f64() * 1e3
    );
    Json::obj([
        ("rules_installed", Json::from(burst_rules)),
        ("install_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("packets_submitted", Json::from(submitted)),
        ("packets_forwarded", Json::from(forwarded)),
        ("non_quiescing", Json::from(true)),
    ])
}

fn main() {
    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let tiers: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    println!(
        "match-kind scaling at {tiers:?} rules, {PROBE_KEYS} probe keys per iteration{}",
        if fast { " (fast smoke run)" } else { "" }
    );

    let mut runner = Runner::new();
    let mut layouts: Vec<LayoutResult> = Vec::new();
    for &tier in tiers {
        layouts.push(bench_exact(&mut runner, tier));
        layouts.push(bench_lpm(&mut runner, tier));
        layouts.push(bench_range(&mut runner, tier));
    }

    let (scan_pps, batch_pps, speedup) = bench_exact_hot_path(&mut runner);
    let live = live_install_burst(if fast { 1_000 } else { 10_000 });

    println!();
    println!(
        "{:>6} {:>9} {:>10} {:>14} {:>14} {:>12}",
        "kind", "rules", "Mpps", "data-path B", "control B", "B/entry"
    );
    for layout in &layouts {
        println!(
            "{:>6} {:>9} {:>10.2} {:>14} {:>14} {:>12.1}",
            layout.row.kind,
            layout.row.entries,
            layout.lookups_per_sec / 1e6,
            layout.row.data_path_bytes,
            layout.row.control_bytes,
            layout.row.bytes_per_entry()
        );
    }
    println!(
        "exact hot path: scan {scan_pps:.0} pkt/s, batch {batch_pps:.0} pkt/s ({speedup:.2}x)"
    );

    let baseline = Json::obj([
        ("tiers", tiers.to_vec().to_json()),
        ("probe_keys", Json::from(PROBE_KEYS)),
        ("layouts", layouts.to_json()),
        (
            "exact_hot_path",
            Json::obj([
                ("single_scan_packets_per_sec", Json::from(scan_pps)),
                ("batch_packets_per_sec", Json::from(batch_pps)),
                ("batch_speedup_vs_single_scan", Json::from(speedup)),
            ]),
        ),
        ("live_install", live),
        ("measurements", runner.results().to_vec().to_json()),
    ]);
    if !fast {
        menshen_bench::update_baseline("match_scaling", &baseline);
    }
    menshen_bench::write_json("bench_match_scaling", &baseline);

    // Acceptance criteria.
    assert!(
        speedup >= 5.0,
        "exact-match batch path regressed: {speedup:.2}x vs scan (need >= 5x)"
    );
    if let Some(lpm_1m) = layouts
        .iter()
        .find(|l| l.row.kind == "lpm" && l.row.entries == 1_000_000)
    {
        assert!(
            lpm_1m.lookups_per_sec >= 1e6,
            "LPM at 10^6 rules must sustain >= 1 Mpps (got {:.2} Mpps)",
            lpm_1m.lookups_per_sec / 1e6
        );
    }
}
