//! The chaos-plane benchmark: kill worker shards under live traffic and
//! measure what failure actually costs — detection latency, recovery pause,
//! and packets provably lost — committed as the `fault_recovery` section of
//! `BENCH_throughput.json`.
//!
//! Each round arms a one-shot [`FaultPlan`] panic at the victim's next
//! burst, keeps traffic flowing, and polls `supervise()` the way a real
//! deployment's supervisor loop would. The headline numbers are the
//! per-round detection→recovery spans and the throughput of the plane
//! *after* the last respawn, which must be indistinguishable from healthy —
//! plus the conservation audit, which must balance to the packet after
//! every kill.

use menshen_bench::workloads::flow_rule_tenant;
use menshen_core::MenshenPipeline;
use menshen_json::Json;
use menshen_rmt::TABLE5;
use menshen_runtime::{FaultPlan, RuntimeOptions, ShardedRuntime};
use menshen_trace::synth::{synthesize, WorkloadSpec};
use std::time::{Duration, Instant};

const TENANTS: u16 = 8;
const RULES_PER_TENANT: usize = 150;
const SHARDS: usize = 8;
const DISPATCHERS: usize = 2;

fn template() -> MenshenPipeline {
    let params = TABLE5.with_table_depth(2048);
    let mut pipeline = MenshenPipeline::new(params);
    for module_id in 1..=TENANTS {
        pipeline
            .load_module(&flow_rule_tenant(module_id, RULES_PER_TENANT))
            .unwrap();
    }
    pipeline
}

fn trace(packets: usize) -> Vec<menshen_packet::Packet> {
    let mut spec = WorkloadSpec::uniform(TENANTS, 600, packets);
    spec.rules_per_tenant = RULES_PER_TENANT;
    spec.mean_rate_pps = 10_000_000.0;
    synthesize(&spec).expect("workload spec is valid")
}

/// Shards the trace actually lands on (probed through the deterministic
/// replica, which shares the threaded plane's steering exactly).
fn trafficked_shards(sample: &[menshen_packet::Packet]) -> Vec<usize> {
    let mut probe =
        ShardedRuntime::from_pipeline(&template(), RuntimeOptions::deterministic(SHARDS));
    probe.process_batch(sample.to_vec()).unwrap();
    probe
        .shard_stats()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.packets > 0)
        .map(|(i, _)| i)
        .collect()
}

/// Timed traffic wave: submit + full flush, returning Mpps.
fn wave_mpps(runtime: &mut ShardedRuntime, wave: &[menshen_packet::Packet]) -> f64 {
    let start = Instant::now();
    runtime.submit_owned(wave.to_vec()).unwrap();
    runtime.flush();
    wave.len() as f64 / start.elapsed().as_secs_f64() / 1e6
}

struct Round {
    victim: usize,
    detection: Duration,
    pause: Duration,
    lost_packets: u64,
}

fn main() {
    // Injected panics are the experiment, not an accident: print them as a
    // single line instead of a full backtrace. Symbolizing the first
    // backtrace of the process costs >1s, which would otherwise land
    // inside the first round's detection window and poison the baseline.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected fault:"));
        if injected {
            eprintln!("{info}");
        } else {
            default_hook(info);
        }
    }));

    let fast = std::env::var_os("MENSHEN_BENCH_FAST").is_some();
    let rounds = if fast { 2 } else { 5 };
    let wave_packets = if fast { 4_096 } else { 32_768 };
    let probe_packets = if fast { 1_024 } else { 4_096 };

    menshen_bench::header("fault recovery: seeded kills under live traffic");
    println!(
        "{SHARDS} shards × {DISPATCHERS} dispatchers, {TENANTS} tenants × {RULES_PER_TENANT} \
         rules, {rounds} kill rounds, {wave_packets}-packet waves"
    );

    let wave = trace(wave_packets);
    let victims = trafficked_shards(&trace(probe_packets));
    assert!(!victims.is_empty(), "the trace reaches no shard");

    let mut runtime = ShardedRuntime::from_pipeline(
        &template(),
        RuntimeOptions::threaded(SHARDS)
            .with_dispatchers(DISPATCHERS)
            .with_submit_wait(Duration::from_millis(200)),
    );

    // Healthy baseline: warm-up, then best-of-5.
    wave_mpps(&mut runtime, &wave);
    let pre_failure_mpps = (0..5)
        .map(|_| wave_mpps(&mut runtime, &wave))
        .fold(0.0f64, f64::max);

    let mut results: Vec<Round> = Vec::new();
    for round in 0..rounds {
        let victim = victims[round % victims.len()];
        let next_burst = runtime.shard_stats()[victim].bursts + 1;
        runtime.arm_faults(FaultPlan::new().with_worker_panic(victim, next_burst));
        let kill_wave = trace(probe_packets);
        let mut recovered = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        // The supervisor loop: keep traffic moving, poll for the body.
        while recovered.is_empty() {
            assert!(
                Instant::now() < deadline,
                "round {round}: shard {victim} never detected"
            );
            runtime.submit_owned(kill_wave.clone()).unwrap();
            recovered.extend(runtime.supervise());
            if recovered.is_empty() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        runtime.disarm_faults();
        runtime.flush();
        assert_eq!(recovered.len(), 1, "exactly the scheduled casualty");
        let report = recovered.remove(0);
        assert_eq!(report.shard, victim);
        results.push(Round {
            victim,
            detection: report.detection,
            pause: report.pause,
            lost_packets: report.lost_packets,
        });
    }

    // The plane after the last respawn: same waves, same measure.
    let post_recovery_mpps = (0..5)
        .map(|_| wave_mpps(&mut runtime, &wave))
        .fold(0.0f64, f64::max);

    let audit = runtime.conservation_audit().unwrap();
    assert!(
        audit.is_balanced(),
        "books do not balance after {rounds} kills: {audit:?}"
    );
    assert_eq!(
        audit.forwarded + audit.dropped + audit.lost_to_failure,
        audit.submitted,
        "conservation identity violated: {audit:?}"
    );
    assert_eq!(runtime.failures(), rounds as u64);

    println!();
    println!(
        "{:>6} {:>8} {:>14} {:>12} {:>8}",
        "round", "victim", "detection µs", "pause µs", "lost"
    );
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:>6} {:>8} {:>14.1} {:>12.1} {:>8}",
            i,
            r.victim,
            r.detection.as_secs_f64() * 1e6,
            r.pause.as_secs_f64() * 1e6,
            r.lost_packets
        );
    }
    let total_lost: u64 = results.iter().map(|r| r.lost_packets).sum();
    println!();
    println!(
        "throughput: {pre_failure_mpps:.2} Mpps healthy → {post_recovery_mpps:.2} Mpps after \
         {rounds} kill/recover rounds; {total_lost} packets lost of {} submitted",
        audit.submitted
    );

    let round_rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj([
                ("victim_shard", Json::from(r.victim as u64)),
                ("detection_us", Json::from(r.detection.as_secs_f64() * 1e6)),
                ("pause_us", Json::from(r.pause.as_secs_f64() * 1e6)),
                ("lost_packets", Json::from(r.lost_packets)),
            ])
        })
        .collect();
    let mean_us = |f: fn(&Round) -> Duration| {
        results
            .iter()
            .map(|r| f(r).as_secs_f64() * 1e6)
            .sum::<f64>()
            / results.len() as f64
    };
    let section = Json::obj([
        ("shards", Json::from(SHARDS as u64)),
        ("dispatchers", Json::from(DISPATCHERS as u64)),
        ("rounds", Json::from(results.len() as u64)),
        ("mean_detection_us", Json::from(mean_us(|r| r.detection))),
        ("mean_pause_us", Json::from(mean_us(|r| r.pause))),
        ("total_lost_packets", Json::from(total_lost)),
        ("pre_failure_mpps", Json::from(pre_failure_mpps)),
        ("post_recovery_mpps", Json::from(post_recovery_mpps)),
        (
            "audit",
            Json::obj([
                ("submitted", Json::from(audit.submitted)),
                ("forwarded", Json::from(audit.forwarded)),
                ("dropped", Json::from(audit.dropped)),
                ("shed", Json::from(audit.shed)),
                ("lost_to_failure", Json::from(audit.lost_to_failure)),
                ("balanced", Json::from(audit.is_balanced())),
            ]),
        ),
        ("per_round", Json::Arr(round_rows)),
    ]);
    menshen_bench::update_baseline("fault_recovery", &section);
    println!(
        "\nmerged section \"fault_recovery\" into {}",
        menshen_bench::baseline_path().display()
    );
}
