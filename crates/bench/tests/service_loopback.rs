//! Two-process loopback smoke: `menshen-serve` and `menshen-loadgen` as
//! real OS processes over 127.0.0.1 — the CI job behind the
//! "running as a network service" quickstart. Small enough to run in every
//! configuration (`default` and `fast-ring`); the committed
//! `service_loopback` baseline numbers come from `benches/service.rs`.

use menshen_bench::service_proc::{run_loadgen_proc, ServeProc, ServeSpec};

const SERVE_EXE: &str = env!("CARGO_BIN_EXE_menshen-serve");
const LOADGEN_EXE: &str = env!("CARGO_BIN_EXE_menshen-loadgen");

#[test]
fn two_process_loopback_run_is_lossless_and_balanced() {
    let serve = ServeProc::spawn(SERVE_EXE, &ServeSpec::default());
    assert_eq!(serve.data.len(), 2, "one data socket per rx queue");
    assert_eq!(serve.control("PING"), "ok pong");

    let summary = run_loadgen_proc(LOADGEN_EXE, &serve.data, 2_000, 20_000.0);
    assert_eq!(summary.sent, 2_000);
    assert!(summary.lossless(), "echo loss over loopback: {summary:?}");
    assert!(summary.forwarded > 0, "no traffic forwarded: {summary:?}");
    assert!(summary.rtt_p99_ns >= summary.rtt_p50_ns);

    // Live reconfiguration while the service is up (rule-plane change over
    // the control socket), then the graceful-drain conservation audit.
    let reply = serve.control("LOAD 9 smoke-tenant");
    assert!(reply.starts_with("ok module 9"), "{reply}");
    let reply = serve.control("AUDIT");
    assert!(reply.starts_with("ok balanced=true"), "{reply}");

    let drained = serve.drain();
    assert!(drained.balanced, "drain books do not balance: {drained:?}");
    assert_eq!(drained.submitted, summary.sent);
    assert_eq!(drained.forwarded + drained.dropped, drained.submitted);
    assert_eq!(drained.tx, summary.sent, "every verdict echoed");
    assert_eq!(drained.tx_errors, 0);
}
