//! The `PacketIo` conformance suite.
//!
//! Mirrors the runtime's ring conformance suite: one macro generates the
//! same battery of contract tests for every backend, so a new backend only
//! has to supply a rig constructor to inherit the full contract check —
//! rx accounting, tx accounting, drain-empties-everything, and the
//! service-level cross-check that the link stats agree with the runtime's
//! conservation audit.

use menshen_core::{DropReason, MenshenPipeline, Verdict};
use menshen_io::{InProcessIo, PacketIo, Service, ServiceConfig, TraceIo, UdpSocketIo, ECHO_LEN};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::TABLE5;
use menshen_trace::Pacing;
use std::net::{IpAddr, Ipv4Addr, UdpSocket};
use std::time::{Duration, Instant};

/// A backend under test plus whatever must stay alive beside it (the UDP
/// rig keeps its feeder socket so echoes have a live peer).
struct Rig {
    io: Box<dyn PacketIo>,
    _keep: Option<UdpSocket>,
}

fn frames(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let seq = (i as u32).to_be_bytes();
            PacketBuilder::udp_data(3, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, &seq)
        })
        .collect()
}

fn inprocess_rig(frames: Vec<Packet>) -> Rig {
    let (io, handle) = InProcessIo::new();
    handle.inject(frames);
    Rig {
        io: Box::new(io),
        _keep: None,
    }
}

fn trace_rig(frames: Vec<Packet>) -> Rig {
    Rig {
        io: Box::new(TraceIo::new(frames, Pacing::Unpaced)),
        _keep: None,
    }
}

fn udp_rig(frames: Vec<Packet>) -> Rig {
    let io = UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), 2).unwrap();
    let addrs = io.local_addrs();
    let feeder = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    for (i, frame) in frames.iter().enumerate() {
        feeder
            .send_to(frame.bytes(), addrs[i % addrs.len()])
            .unwrap();
    }
    Rig {
        io: Box::new(io),
        _keep: Some(feeder),
    }
}

/// Polls `rx_burst` until `want` packets arrive or 10 s pass — socket
/// backends deliver asynchronously.
fn rx_all(io: &mut dyn PacketIo, want: usize) -> Vec<Packet> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while out.len() < want && Instant::now() < deadline {
        if io.rx_burst(&mut out, 16).unwrap() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    out
}

macro_rules! packet_io_conformance_suite {
    ($backend:ident, $rig:path) => {
        mod $backend {
            use super::*;

            #[test]
            fn rx_accounting_matches_delivery() {
                let wire = frames(40);
                let expected_bytes: u64 = wire.iter().map(|p| p.len() as u64).sum();
                let mut rig = $rig(wire);
                let got = rx_all(rig.io.as_mut(), 40);
                assert_eq!(got.len(), 40, "every offered frame is delivered");
                let stats = rig.io.link_stats();
                assert_eq!(stats.rx_packets, 40);
                assert_eq!(stats.rx_bytes, expected_bytes);
                assert_eq!(stats.rx_errors, 0);
                assert_eq!(stats.rx_drained, 0);
                assert_eq!(stats.tx_packets, 0);
            }

            #[test]
            fn tx_accounting_counts_every_echo() {
                let mut rig = $rig(frames(12));
                let got = rx_all(rig.io.as_mut(), 12);
                assert_eq!(got.len(), 12);
                let sink = rig.io.egress();
                for packet in &got {
                    sink.transmit(
                        packet,
                        &Verdict::Dropped {
                            reason: DropReason::UnknownModule,
                            module_id: Some(3),
                        },
                    );
                }
                let stats = rig.io.link_stats();
                assert_eq!(stats.tx_packets, 12, "one echo per verdict");
                assert_eq!(stats.tx_bytes, 12 * ECHO_LEN as u64);
                assert_eq!(stats.tx_errors, 0);
            }

            #[test]
            fn drain_empties_everything() {
                let mut rig = $rig(frames(30));
                // Take a first partial burst, then drain the rest.
                let mut out = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(10);
                while out.is_empty() && Instant::now() < deadline {
                    rig.io.rx_burst(&mut out, 8).unwrap();
                }
                let received = out.len() as u64;
                assert!(received >= 1, "at least one burst before the drain");
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    rig.io.drain().unwrap();
                    let stats = rig.io.link_stats();
                    if stats.rx_packets + stats.rx_drained == 30 {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "drain never accounted for every frame: {stats:?}"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                let stats = rig.io.link_stats();
                assert_eq!(stats.rx_packets, received);
                assert_eq!(stats.rx_drained, 30 - received);
                // Nothing pending survives a drain.
                let mut after = Vec::new();
                assert_eq!(rig.io.rx_burst(&mut after, 64).unwrap(), 0);
            }

            #[test]
            fn service_audit_cross_checks_link_stats() {
                let rig = $rig(frames(96));
                let template = MenshenPipeline::new(TABLE5);
                let mut service =
                    Service::new(&template, rig.io, ServiceConfig::default()).unwrap();
                let deadline = Instant::now() + Duration::from_secs(10);
                while service.packets_received() < 96 {
                    assert!(
                        Instant::now() < deadline,
                        "service never received every frame"
                    );
                    service.poll().unwrap();
                }
                let report = service.graceful_drain().unwrap();
                assert!(report.balanced, "books do not balance: {report:?}");
                assert_eq!(report.audit.submitted, 96);
                assert_eq!(
                    report.link.rx_packets, report.audit.submitted,
                    "link rx and runtime submissions must agree"
                );
                assert_eq!(
                    report.link.tx_packets, 96,
                    "every verdict was handed to the egress sink"
                );
                assert_eq!(report.link.tx_errors, 0);
                drop(rig._keep);
            }
        }
    };
}

packet_io_conformance_suite!(inprocess, super::inprocess_rig);
packet_io_conformance_suite!(trace, super::trace_rig);
packet_io_conformance_suite!(udp, super::udp_rig);
