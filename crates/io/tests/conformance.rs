//! The `PacketIo` conformance suite.
//!
//! Mirrors the runtime's ring conformance suite: one macro generates the
//! same battery of contract tests for every backend, so a new backend only
//! has to supply a rig constructor to inherit the full contract check —
//! rx accounting, tx accounting, drain-empties-everything, and the
//! service-level cross-check that the link stats agree with the runtime's
//! conservation audit.

use menshen_core::{DropReason, MenshenPipeline, Verdict};
use menshen_io::{InProcessIo, PacketIo, Service, ServiceConfig, TraceIo, UdpSocketIo, ECHO_LEN};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::TABLE5;
use menshen_trace::Pacing;
use std::net::{IpAddr, Ipv4Addr, UdpSocket};
use std::time::{Duration, Instant};

/// A backend under test plus whatever must stay alive beside it (the UDP
/// rig keeps its feeder socket so echoes have a live peer).
struct Rig {
    io: Box<dyn PacketIo>,
    _keep: Option<UdpSocket>,
}

fn frames(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let seq = (i as u32).to_be_bytes();
            PacketBuilder::udp_data(3, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, &seq)
        })
        .collect()
}

fn inprocess_rig(frames: Vec<Packet>) -> Rig {
    let (io, handle) = InProcessIo::new();
    handle.inject(frames);
    Rig {
        io: Box::new(io),
        _keep: None,
    }
}

fn trace_rig(frames: Vec<Packet>) -> Rig {
    Rig {
        io: Box::new(TraceIo::new(frames, Pacing::Unpaced)),
        _keep: None,
    }
}

fn udp_rig(frames: Vec<Packet>) -> Rig {
    let io = UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), 2).unwrap();
    let addrs = io.local_addrs();
    let feeder = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    for (i, frame) in frames.iter().enumerate() {
        feeder
            .send_to(frame.bytes(), addrs[i % addrs.len()])
            .unwrap();
    }
    Rig {
        io: Box::new(io),
        _keep: Some(feeder),
    }
}

/// Polls `rx_burst` until `want` packets arrive or 10 s pass — socket
/// backends deliver asynchronously.
fn rx_all(io: &mut dyn PacketIo, want: usize) -> Vec<Packet> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while out.len() < want && Instant::now() < deadline {
        if io.rx_burst(&mut out, 16).unwrap() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    out
}

macro_rules! packet_io_conformance_suite {
    ($backend:ident, $rig:path) => {
        mod $backend {
            use super::*;

            #[test]
            fn rx_accounting_matches_delivery() {
                let wire = frames(40);
                let expected_bytes: u64 = wire.iter().map(|p| p.len() as u64).sum();
                let mut rig = $rig(wire);
                let got = rx_all(rig.io.as_mut(), 40);
                assert_eq!(got.len(), 40, "every offered frame is delivered");
                let stats = rig.io.link_stats();
                assert_eq!(stats.rx_packets, 40);
                assert_eq!(stats.rx_bytes, expected_bytes);
                assert_eq!(stats.rx_errors, 0);
                assert_eq!(stats.rx_drained, 0);
                assert_eq!(stats.tx_packets, 0);
            }

            #[test]
            fn tx_accounting_counts_every_echo() {
                let mut rig = $rig(frames(12));
                let got = rx_all(rig.io.as_mut(), 12);
                assert_eq!(got.len(), 12);
                let sink = rig.io.egress();
                for packet in &got {
                    sink.transmit(
                        packet,
                        &Verdict::Dropped {
                            reason: DropReason::UnknownModule,
                            module_id: Some(3),
                        },
                    );
                }
                let stats = rig.io.link_stats();
                assert_eq!(stats.tx_packets, 12, "one echo per verdict");
                assert_eq!(stats.tx_bytes, 12 * ECHO_LEN as u64);
                assert_eq!(stats.tx_errors, 0);
            }

            #[test]
            fn drain_empties_everything() {
                let mut rig = $rig(frames(30));
                // Take a first partial burst, then drain the rest.
                let mut out = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(10);
                while out.is_empty() && Instant::now() < deadline {
                    rig.io.rx_burst(&mut out, 8).unwrap();
                }
                let received = out.len() as u64;
                assert!(received >= 1, "at least one burst before the drain");
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    rig.io.drain().unwrap();
                    let stats = rig.io.link_stats();
                    if stats.rx_packets + stats.rx_drained == 30 {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "drain never accounted for every frame: {stats:?}"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                let stats = rig.io.link_stats();
                assert_eq!(stats.rx_packets, received);
                assert_eq!(stats.rx_drained, 30 - received);
                // Nothing pending survives a drain.
                let mut after = Vec::new();
                assert_eq!(rig.io.rx_burst(&mut after, 64).unwrap(), 0);
            }

            #[test]
            fn service_audit_cross_checks_link_stats() {
                let rig = $rig(frames(96));
                let template = MenshenPipeline::new(TABLE5);
                let mut service =
                    Service::new(&template, rig.io, ServiceConfig::default()).unwrap();
                let deadline = Instant::now() + Duration::from_secs(10);
                while service.packets_received() < 96 {
                    assert!(
                        Instant::now() < deadline,
                        "service never received every frame"
                    );
                    service.poll().unwrap();
                }
                let report = service.graceful_drain().unwrap();
                assert!(report.balanced, "books do not balance: {report:?}");
                assert_eq!(report.audit.submitted, 96);
                assert_eq!(
                    report.link.rx_packets, report.audit.submitted,
                    "link rx and runtime submissions must agree"
                );
                assert_eq!(
                    report.link.tx_packets, 96,
                    "every verdict was handed to the egress sink"
                );
                assert_eq!(report.link.tx_errors, 0);
                drop(rig._keep);
            }
        }
    };
}

packet_io_conformance_suite!(inprocess, super::inprocess_rig);
packet_io_conformance_suite!(trace, super::trace_rig);
packet_io_conformance_suite!(udp, super::udp_rig);

/// UDP-specific error-path contract: the real-socket backend must stay
/// quiet through `WouldBlock` storms, survive a peer that vanishes (the
/// ECONNREFUSED echo path), and shrug off a sender closing mid-burst —
/// all without panicking on a worker thread or mis-counting the link.
mod udp_error_paths {
    use super::*;

    fn drop_verdict() -> Verdict {
        Verdict::Dropped {
            reason: DropReason::UnknownModule,
            module_id: Some(3),
        }
    }

    #[test]
    fn wouldblock_storm_reports_dry_not_errors() {
        let mut io = UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), 2).unwrap();
        let mut out = Vec::new();
        for _ in 0..1_000 {
            assert_eq!(
                io.rx_burst(&mut out, 64).unwrap(),
                0,
                "an empty queue set is dry, never an error"
            );
        }
        let stats = io.link_stats();
        assert_eq!(stats.rx_packets, 0);
        assert_eq!(stats.rx_errors, 0);
        // The storm must not poison later delivery.
        let feeder = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let wire = frames(1);
        feeder
            .send_to(wire[0].bytes(), io.local_addrs()[0])
            .unwrap();
        let got = rx_all(&mut io, 1);
        assert_eq!(got.len(), 1, "delivery works right after the dry storm");
    }

    #[test]
    fn echoes_to_a_vanished_peer_are_counted_never_fatal() {
        let mut io = UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), 1).unwrap();
        let addr = io.local_addrs()[0];
        let wire = frames(1);
        {
            let peer = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            peer.send_to(wire[0].bytes(), addr).unwrap();
        }
        // Peer socket is closed now; the kernel may feed the resulting ICMP
        // port-unreachable back as ECONNREFUSED on a later send. The sink
        // contract: never panic (it runs on worker threads), and every
        // attempt lands in exactly one tx counter.
        let got = rx_all(&mut io, 1);
        assert_eq!(got.len(), 1);
        let sink = io.egress();
        let attempts = 8u64;
        for _ in 0..attempts {
            sink.transmit(&got[0], &drop_verdict());
        }
        let stats = io.link_stats();
        assert_eq!(
            stats.tx_packets + stats.tx_errors,
            attempts,
            "every echo attempt accounted: {stats:?}"
        );
    }

    #[test]
    fn sender_closing_mid_burst_leaves_the_backend_serviceable() {
        let mut io = UdpSocketIo::bind(IpAddr::V4(Ipv4Addr::LOCALHOST), 2).unwrap();
        let addrs = io.local_addrs();
        let wire = frames(24);
        {
            let feeder = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            for (i, frame) in wire.iter().enumerate() {
                feeder
                    .send_to(frame.bytes(), addrs[i % addrs.len()])
                    .unwrap();
            }
            // Feeder closes here — mid-burst from the backend's view.
        }
        let got = rx_all(&mut io, 24);
        assert_eq!(got.len(), 24, "frames on the wire outlive their sender");
        let mut after = Vec::new();
        assert_eq!(io.rx_burst(&mut after, 16).unwrap(), 0, "then just dry");
        assert_eq!(io.link_stats().rx_errors, 0);
        // A fresh peer is learned and echoed to as if nothing happened.
        let fresh = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        fresh
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        fresh.send_to(wire[0].bytes(), addrs[0]).unwrap();
        let one = rx_all(&mut io, 1);
        assert_eq!(one.len(), 1);
        io.egress().transmit(&one[0], &drop_verdict());
        let mut buf = [0u8; 64];
        let (n, _) = fresh.recv_from(&mut buf).unwrap();
        assert_eq!(n, ECHO_LEN, "echo reaches the re-learned peer");
    }
}
