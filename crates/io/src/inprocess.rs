//! [`InProcessIo`]: today's in-process `submit_owned` path behind the
//! [`PacketIo`] trait.
//!
//! The producer side is an [`InProcessHandle`] (cloneable, thread-safe): the
//! caller injects owned packet batches exactly as it used to hand them to
//! `submit_owned`, and reads the verdict echoes back as decoded
//! [`EchoRecord`]s — what a socket peer would have received as datagrams.

use crate::backend::{IoError, LinkCounters, LinkStats, PacketIo};
use crate::echo::{EchoRecord, ECHO_LEN};
use menshen_core::Verdict;
use menshen_packet::Packet;
use menshen_runtime::EgressSink;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct InProcessState {
    pending: Mutex<VecDeque<Packet>>,
    echoes: Mutex<Vec<EchoRecord>>,
    counters: LinkCounters,
}

/// The in-process backend. Create with [`InProcessIo::new`], which also
/// returns the producer handle.
pub struct InProcessIo {
    state: Arc<InProcessState>,
}

/// Producer/observer handle to an [`InProcessIo`]: inject packets, read
/// echoed verdicts. Cloneable and usable from any thread, including after
/// the backend itself has been moved into a service.
#[derive(Clone)]
pub struct InProcessHandle {
    state: Arc<InProcessState>,
}

struct InProcessEgress {
    state: Arc<InProcessState>,
}

impl InProcessIo {
    /// Creates the backend and its producer handle.
    pub fn new() -> (InProcessIo, InProcessHandle) {
        let state = Arc::new(InProcessState::default());
        (
            InProcessIo {
                state: Arc::clone(&state),
            },
            InProcessHandle { state },
        )
    }
}

impl InProcessHandle {
    /// Queues owned packets for the next `rx_burst` calls.
    pub fn inject(&self, packets: Vec<Packet>) {
        self.state
            .pending
            .lock()
            .expect("in-process queue poisoned")
            .extend(packets);
    }

    /// Packets injected but not yet received.
    pub fn pending(&self) -> usize {
        self.state
            .pending
            .lock()
            .expect("in-process queue poisoned")
            .len()
    }

    /// Copies the verdict echoes recorded so far.
    pub fn echoes(&self) -> Vec<EchoRecord> {
        self.state
            .echoes
            .lock()
            .expect("in-process echoes poisoned")
            .clone()
    }

    /// Takes (and clears) the recorded verdict echoes.
    pub fn take_echoes(&self) -> Vec<EchoRecord> {
        std::mem::take(
            &mut *self
                .state
                .echoes
                .lock()
                .expect("in-process echoes poisoned"),
        )
    }
}

impl PacketIo for InProcessIo {
    fn label(&self) -> &'static str {
        "inprocess"
    }

    fn rx_burst(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, IoError> {
        let mut pending = self
            .state
            .pending
            .lock()
            .expect("in-process queue poisoned");
        let take = pending.len().min(max);
        for packet in pending.drain(..take) {
            self.state.counters.record_rx(packet.len());
            out.push(packet);
        }
        Ok(take)
    }

    fn egress(&self) -> Arc<dyn EgressSink> {
        Arc::new(InProcessEgress {
            state: Arc::clone(&self.state),
        })
    }

    fn drain(&mut self) -> Result<u64, IoError> {
        let mut pending = self
            .state
            .pending
            .lock()
            .expect("in-process queue poisoned");
        let discarded = pending.len() as u64;
        pending.clear();
        self.state.counters.rx_drained.add(discarded);
        Ok(discarded)
    }

    fn link_stats(&self) -> LinkStats {
        self.state.counters.snapshot()
    }
}

impl EgressSink for InProcessEgress {
    fn transmit(&self, packet: &Packet, verdict: &Verdict) {
        let record = EchoRecord::from_verdict(packet, verdict);
        self.state
            .echoes
            .lock()
            .expect("in-process echoes poisoned")
            .push(record);
        self.state.counters.record_tx(ECHO_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::DropReason;
    use menshen_packet::PacketBuilder;

    #[test]
    fn inject_rx_echo_roundtrip() {
        let (mut io, handle) = InProcessIo::new();
        let packets: Vec<Packet> = (0..5)
            .map(|i| PacketBuilder::udp_data(3, [10, 0, 0, 1], [10, 0, 0, i], 1, 2, &[i]))
            .collect();
        let total_bytes: u64 = packets.iter().map(|p| p.len() as u64).sum();
        handle.inject(packets);

        let mut out = Vec::new();
        assert_eq!(io.rx_burst(&mut out, 3).unwrap(), 3);
        assert_eq!(io.rx_burst(&mut out, 64).unwrap(), 2);
        assert_eq!(io.rx_burst(&mut out, 64).unwrap(), 0);
        assert_eq!(out.len(), 5);

        let sink = io.egress();
        for packet in &out {
            sink.transmit(
                packet,
                &Verdict::Dropped {
                    reason: DropReason::UnknownModule,
                    module_id: Some(3),
                },
            );
        }
        let echoes = handle.echoes();
        assert_eq!(echoes.len(), 5);
        assert!(echoes.iter().all(|e| !e.forwarded && e.module_id == 3));

        let stats = io.link_stats();
        assert_eq!(stats.rx_packets, 5);
        assert_eq!(stats.rx_bytes, total_bytes);
        assert_eq!(stats.tx_packets, 5);
        assert_eq!(stats.tx_bytes, 5 * ECHO_LEN as u64);
    }
}
