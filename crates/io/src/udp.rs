//! [`UdpSocketIo`]: a real `std::net` data plane.
//!
//! The model is one NIC RX queue per dispatcher: the backend binds one UDP
//! socket per queue (all nonblocking), and each received datagram's payload
//! is treated as one encapsulated Ethernet frame — the loopback testbed's
//! stand-in for DMA-ing frames off a NIC queue. `rx_burst` round-robins the
//! queues, stamping every packet's
//! [`ingress_port`](menshen_packet::Packet::ingress_port) with its queue
//! index; the service's dispatcher spray then takes over exactly as it does
//! for in-process traffic.
//!
//! On the way out, [`UdpEgress`] (the backend's [`EgressSink`], called on
//! the worker threads) sends one fixed-size verdict echo ([`crate::echo`])
//! per processed packet back through the socket of the queue the packet
//! arrived on, to the **learned peer** — the most recent source address
//! seen on that queue, the UDP analogue of answering on the interface a
//! frame came from. Verdict-driven forwarding of the rewritten frame
//! itself is deliberately not done: the testbed checks verdicts, not
//! next-hop delivery.

use crate::backend::{IoError, LinkCounters, LinkStats, PacketIo};
use crate::echo::{encode_echo, ECHO_LEN};
use menshen_core::Verdict;
use menshen_packet::Packet;
use menshen_runtime::EgressSink;
use std::net::{IpAddr, SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};

/// Receive buffer size: comfortably above the largest legal frame
/// (`menshen_packet::MAX_FRAME_LEN` = 1518) plus slack for oversized
/// datagrams, which are counted as rx errors rather than truncated into
/// garbage frames.
const RECV_BUF_LEN: usize = 4096;

/// Upper bound on datagrams slurped per drain call, so a peer that keeps
/// transmitting cannot wedge shutdown.
const DRAIN_LIMIT: u64 = 1_000_000;

struct UdpQueue {
    socket: UdpSocket,
    local: SocketAddr,
    /// Most recent source address seen on this queue — where echoes go.
    peer: Mutex<Option<SocketAddr>>,
}

struct UdpState {
    queues: Vec<UdpQueue>,
    counters: LinkCounters,
}

/// The UDP socket backend. One socket per rx queue; see the module docs.
pub struct UdpSocketIo {
    state: Arc<UdpState>,
    next_queue: usize,
    buf: Vec<u8>,
}

/// The UDP backend's [`EgressSink`]: echoes one verdict datagram per
/// processed packet to the learned peer of the packet's ingress queue.
pub struct UdpEgress {
    state: Arc<UdpState>,
}

impl UdpSocketIo {
    /// Binds `queues` nonblocking UDP sockets on `ip` (ephemeral ports).
    /// Pass the service's dispatcher count to get the one-socket-per-
    /// dispatcher shape.
    pub fn bind(ip: IpAddr, queues: usize) -> Result<UdpSocketIo, IoError> {
        assert!(queues >= 1, "at least one rx queue is required");
        let mut bound = Vec::with_capacity(queues);
        for _ in 0..queues {
            let socket = UdpSocket::bind((ip, 0)).map_err(|error| IoError::Socket {
                context: "binding rx queue socket",
                error,
            })?;
            socket
                .set_nonblocking(true)
                .map_err(|error| IoError::Socket {
                    context: "setting rx queue socket nonblocking",
                    error,
                })?;
            let local = socket.local_addr().map_err(|error| IoError::Socket {
                context: "reading rx queue local address",
                error,
            })?;
            bound.push(UdpQueue {
                socket,
                local,
                peer: Mutex::new(None),
            });
        }
        Ok(UdpSocketIo {
            state: Arc::new(UdpState {
                queues: bound,
                counters: LinkCounters::default(),
            }),
            next_queue: 0,
            buf: vec![0u8; RECV_BUF_LEN],
        })
    }

    /// The bound address of every rx queue, in queue order — what a load
    /// generator targets.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.state.queues.iter().map(|q| q.local).collect()
    }

    /// Number of rx queues.
    pub fn queue_count(&self) -> usize {
        self.state.queues.len()
    }
}

impl PacketIo for UdpSocketIo {
    fn label(&self) -> &'static str {
        "udp"
    }

    fn rx_burst(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, IoError> {
        let queues = self.state.queues.len();
        let mut delivered = 0usize;
        let mut dry = 0usize;
        // Round-robin over queues until the burst fills or every queue
        // reports dry in succession.
        while delivered < max && dry < queues {
            let queue = &self.state.queues[self.next_queue];
            let queue_index = self.next_queue as u16;
            match queue.socket.recv_from(&mut self.buf) {
                Ok((len, src)) => {
                    dry = 0;
                    *queue.peer.lock().expect("udp peer slot poisoned") = Some(src);
                    if len == 0 || len > menshen_packet::MAX_FRAME_LEN {
                        self.state.counters.rx_errors.inc();
                    } else {
                        let mut packet = Packet::from_bytes(self.buf[..len].to_vec());
                        packet.ingress_port = queue_index;
                        self.state.counters.record_rx(len);
                        out.push(packet);
                        delivered += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    dry += 1;
                    self.next_queue = (self.next_queue + 1) % queues;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(error) => {
                    return Err(IoError::Socket {
                        context: "receiving on rx queue socket",
                        error,
                    });
                }
            }
        }
        Ok(delivered)
    }

    fn egress(&self) -> Arc<dyn EgressSink> {
        Arc::new(UdpEgress {
            state: Arc::clone(&self.state),
        })
    }

    fn drain(&mut self) -> Result<u64, IoError> {
        let mut discarded = 0u64;
        for queue in &self.state.queues {
            while discarded < DRAIN_LIMIT {
                match queue.socket.recv_from(&mut self.buf) {
                    Ok(_) => discarded += 1,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(error) => {
                        return Err(IoError::Socket {
                            context: "draining rx queue socket",
                            error,
                        });
                    }
                }
            }
        }
        self.state.counters.rx_drained.add(discarded);
        Ok(discarded)
    }

    fn link_stats(&self) -> LinkStats {
        self.state.counters.snapshot()
    }
}

impl EgressSink for UdpEgress {
    fn transmit(&self, packet: &Packet, verdict: &Verdict) {
        // The echo leaves through the socket of the queue the packet came
        // in on, toward that queue's learned peer. Runs on worker threads:
        // must never panic, and failures only cost the echo (the verdict is
        // still accounted by the runtime).
        let queues = &self.state.queues;
        let queue = &queues[packet.ingress_port as usize % queues.len()];
        let peer = *queue.peer.lock().expect("udp peer slot poisoned");
        let Some(peer) = peer else {
            self.state.counters.tx_errors.inc();
            return;
        };
        let wire = encode_echo(packet, verdict);
        match queue.socket.send_to(&wire, peer) {
            Ok(_) => self.state.counters.record_tx(ECHO_LEN),
            Err(_) => self.state.counters.tx_errors.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::decode_echo;
    use menshen_core::DropReason;
    use menshen_packet::PacketBuilder;
    use std::net::Ipv4Addr;
    use std::time::{Duration, Instant};

    fn localhost() -> IpAddr {
        IpAddr::V4(Ipv4Addr::LOCALHOST)
    }

    /// Polls `rx_burst` until `want` packets arrive or 5 s pass.
    fn rx_all(io: &mut UdpSocketIo, want: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while out.len() < want && Instant::now() < deadline {
            if io.rx_burst(&mut out, 64).unwrap() == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        out
    }

    #[test]
    fn frames_arrive_with_queue_index_and_counters() {
        let mut io = UdpSocketIo::bind(localhost(), 2).unwrap();
        let addrs = io.local_addrs();
        let sender = UdpSocket::bind((localhost(), 0)).unwrap();
        let frame = PacketBuilder::udp_data(4, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, b"hi");
        let mut sent_bytes = 0u64;
        for (i, addr) in addrs.iter().enumerate() {
            for _ in 0..3 {
                sender.send_to(frame.bytes(), addr).unwrap();
                sent_bytes += frame.len() as u64;
                let _ = i;
            }
        }
        let got = rx_all(&mut io, 6);
        assert_eq!(got.len(), 6);
        assert_eq!(got.iter().filter(|p| p.ingress_port == 0).count(), 3);
        assert_eq!(got.iter().filter(|p| p.ingress_port == 1).count(), 3);
        assert!(got.iter().all(|p| p.bytes() == frame.bytes()));
        let stats = io.link_stats();
        assert_eq!(stats.rx_packets, 6);
        assert_eq!(stats.rx_bytes, sent_bytes);
    }

    #[test]
    fn echo_returns_to_the_learned_peer() {
        let mut io = UdpSocketIo::bind(localhost(), 1).unwrap();
        let addr = io.local_addrs()[0];
        let peer = UdpSocket::bind((localhost(), 0)).unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let frame = PacketBuilder::udp_data(6, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, &[9, 9, 9, 9]);
        peer.send_to(frame.bytes(), addr).unwrap();
        let got = rx_all(&mut io, 1);
        assert_eq!(got.len(), 1);

        let sink = io.egress();
        sink.transmit(
            &got[0],
            &Verdict::Dropped {
                reason: DropReason::UnknownModule,
                module_id: Some(6),
            },
        );
        let mut buf = [0u8; 64];
        let (n, from) = peer.recv_from(&mut buf).unwrap();
        assert_eq!(from, addr);
        let echo = decode_echo(&buf[..n]).expect("well-formed echo");
        assert!(!echo.forwarded);
        assert_eq!(echo.module_id, 6);
        assert_eq!(&echo.token[..4], &[9, 9, 9, 9]);
        assert_eq!(io.link_stats().tx_packets, 1);
    }

    #[test]
    fn transmit_without_learned_peer_is_a_counted_error_not_a_panic() {
        let io = UdpSocketIo::bind(localhost(), 1).unwrap();
        let sink = io.egress();
        let frame = PacketBuilder::udp_data(1, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]);
        sink.transmit(
            &frame,
            &Verdict::Dropped {
                reason: DropReason::NoVlan,
                module_id: None,
            },
        );
        let stats = io.link_stats();
        assert_eq!(stats.tx_packets, 0);
        assert_eq!(stats.tx_errors, 1);
    }

    #[test]
    fn drain_slurps_pending_datagrams() {
        let mut io = UdpSocketIo::bind(localhost(), 2).unwrap();
        let addrs = io.local_addrs();
        let sender = UdpSocket::bind((localhost(), 0)).unwrap();
        let frame = PacketBuilder::udp_data(1, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]);
        for addr in &addrs {
            sender.send_to(frame.bytes(), addr).unwrap();
        }
        // Give loopback a moment to land both datagrams.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut drained = 0u64;
        while drained < 2 && Instant::now() < deadline {
            drained += io.drain().unwrap();
            if drained < 2 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(drained, 2);
        let stats = io.link_stats();
        assert_eq!(stats.rx_drained, 2);
        assert_eq!(stats.rx_packets, 0);
        let mut out = Vec::new();
        assert_eq!(io.rx_burst(&mut out, 16).unwrap(), 0);
    }
}
