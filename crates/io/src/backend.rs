//! The [`PacketIo`] backend trait and its shared link accounting.

use menshen_core::{labels, Counter, MetricsSnapshot};
use menshen_packet::Packet;
use menshen_runtime::EgressSink;
use std::sync::Arc;

/// Errors surfaced by packet I/O backends.
#[derive(Debug)]
pub enum IoError {
    /// A socket operation failed.
    Socket {
        /// What the backend was doing.
        context: &'static str,
        /// The underlying OS error.
        error: std::io::Error,
    },
    /// The backend has been drained and can no longer move packets.
    Closed,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Socket { context, error } => write!(f, "{context}: {error}"),
            IoError::Closed => write!(f, "packet I/O backend is closed"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Socket { error, .. } => Some(error),
            IoError::Closed => None,
        }
    }
}

/// A point-in-time copy of a backend's link statistics — the software
/// equivalent of a NIC's port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets delivered to the runtime by `rx_burst`.
    pub rx_packets: u64,
    /// Frame bytes delivered by `rx_burst`.
    pub rx_bytes: u64,
    /// Ingress units that could not become packets (empty/garbled
    /// datagrams).
    pub rx_errors: u64,
    /// Packets discarded by [`PacketIo::drain`] — arrived after rx stopped,
    /// never entered the runtime, and therefore intentionally outside the
    /// conservation audit's books.
    pub rx_drained: u64,
    /// Verdict echoes (or recorded verdicts) transmitted by the egress sink.
    pub tx_packets: u64,
    /// Bytes transmitted by the egress sink.
    pub tx_bytes: u64,
    /// Transmit attempts that failed (unlearned peer, socket error). The
    /// verdict itself is still accounted by the runtime; only the echo is
    /// lost.
    pub tx_errors: u64,
}

impl LinkStats {
    /// Pushes the stats into a metrics snapshot as `menshen_io_*` counters
    /// labelled with the backend name, so a service's Prometheus exposition
    /// covers the I/O edge as well as the pipeline.
    pub fn push_metrics(&self, snapshot: &mut MetricsSnapshot, backend: &str) {
        let series: [(&str, u64); 7] = [
            ("menshen_io_rx_packets_total", self.rx_packets),
            ("menshen_io_rx_bytes_total", self.rx_bytes),
            ("menshen_io_rx_errors_total", self.rx_errors),
            ("menshen_io_rx_drained_total", self.rx_drained),
            ("menshen_io_tx_packets_total", self.tx_packets),
            ("menshen_io_tx_bytes_total", self.tx_bytes),
            ("menshen_io_tx_errors_total", self.tx_errors),
        ];
        for (name, value) in series {
            snapshot.push_counter(name, labels([("backend", backend)]), value);
        }
    }
}

/// Atomic backing store for [`LinkStats`]: shared between a backend's rx
/// side and its [`EgressSink`], which runs on the worker threads.
#[derive(Debug, Default)]
pub struct LinkCounters {
    /// See [`LinkStats::rx_packets`].
    pub rx_packets: Counter,
    /// See [`LinkStats::rx_bytes`].
    pub rx_bytes: Counter,
    /// See [`LinkStats::rx_errors`].
    pub rx_errors: Counter,
    /// See [`LinkStats::rx_drained`].
    pub rx_drained: Counter,
    /// See [`LinkStats::tx_packets`].
    pub tx_packets: Counter,
    /// See [`LinkStats::tx_bytes`].
    pub tx_bytes: Counter,
    /// See [`LinkStats::tx_errors`].
    pub tx_errors: Counter,
}

impl LinkCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LinkStats {
        LinkStats {
            rx_packets: self.rx_packets.get(),
            rx_bytes: self.rx_bytes.get(),
            rx_errors: self.rx_errors.get(),
            rx_drained: self.rx_drained.get(),
            tx_packets: self.tx_packets.get(),
            tx_bytes: self.tx_bytes.get(),
            tx_errors: self.tx_errors.get(),
        }
    }

    /// Accounts one received frame.
    pub fn record_rx(&self, bytes: usize) {
        self.rx_packets.inc();
        self.rx_bytes.add(bytes as u64);
    }

    /// Accounts one transmitted echo/verdict.
    pub fn record_tx(&self, bytes: usize) {
        self.tx_packets.inc();
        self.tx_bytes.add(bytes as u64);
    }
}

/// A pluggable packet I/O backend: where the sharded runtime's packets come
/// from and where its verdicts go.
///
/// The contract mirrors a DPDK port:
///
/// * **rx burst** — [`rx_burst`](Self::rx_burst) appends up to `max` ready
///   packets and returns immediately (never blocks); each packet's
///   [`ingress_port`](menshen_packet::Packet::ingress_port) names the rx
///   queue it arrived on;
/// * **tx burst** — the backend's [`egress`](Self::egress) sink is
///   installed on the runtime
///   ([`ShardedRuntime::set_egress`](menshen_runtime::ShardedRuntime::set_egress)),
///   which hands it every processed packet + verdict on the worker threads;
/// * **drain** — [`drain`](Self::drain) discards whatever is still pending
///   on the rx side (counted as `rx_drained`, *not* `rx_packets`), after
///   which `rx_burst` yields nothing; the graceful-shutdown sequence is
///   stop rx → drain → runtime flush → conservation audit;
/// * **link stats** — [`link_stats`](Self::link_stats) must satisfy
///   `rx_packets == ` packets ever returned by `rx_burst`, so a service can
///   cross-check the I/O edge against the runtime's conservation audit.
pub trait PacketIo: Send {
    /// Stable backend name, used as the `backend` label on metrics.
    fn label(&self) -> &'static str;

    /// Appends up to `max` ready packets to `out`; returns how many were
    /// appended. Non-blocking: returns `Ok(0)` when nothing is ready yet.
    fn rx_burst(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, IoError>;

    /// The verdict-transmit sink to install on the runtime serving this
    /// backend. Repeated calls return handles to the same sink state.
    fn egress(&self) -> Arc<dyn EgressSink>;

    /// True once a finite source (a trace) has emitted everything it ever
    /// will; open-ended backends stay `false`.
    fn exhausted(&self) -> bool {
        false
    }

    /// Discards everything still pending on the rx side and returns how
    /// many packets were thrown away (accounted as `rx_drained`).
    /// Subsequent `rx_burst` calls yield nothing that was pending before
    /// the drain.
    fn drain(&mut self) -> Result<u64, IoError>;

    /// Cumulative link statistics.
    fn link_stats(&self) -> LinkStats;
}
