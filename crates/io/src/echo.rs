//! The verdict-echo wire format.
//!
//! A Menshen service does not forward frames to a real next hop — the
//! testbed's interest is the *verdict*. So for every processed packet the
//! socket backend sends one compact, fixed-size echo datagram back to the
//! peer that sent the frame:
//!
//! ```text
//!  offset  size  field
//!  0       1     magic 0x4D ('M')
//!  1       1     version (1)
//!  2       1     kind: 1 = forwarded, 2 = dropped
//!  3       1     drop reason code (0 for forwarded)
//!  4       2     module ID, big-endian (0 if the packet never resolved)
//!  6       2     detail, big-endian: the rewritten UDP destination port
//!                for forwards (0 if none), 0 for drops
//!  8       8     token: first 8 bytes of the original frame's transport
//!                payload, zero-padded — generators put a sequence number
//!                there, which is how a load generator matches echoes to
//!                sends for per-packet RTT
//! ```
//!
//! Everything a generator needs to check isolation from outside the process
//! is here: *which tenant* the packet was attributed to, *what happened* to
//! it, and *proof the pipeline ran* (the rewritten port a tenant's rules
//! applied).

use menshen_core::{DropReason, Verdict};
use menshen_packet::Packet;

/// Size of one echo datagram, bytes.
pub const ECHO_LEN: usize = 16;
/// First byte of every echo datagram.
pub const ECHO_MAGIC: u8 = 0x4d;
/// Wire-format version.
pub const ECHO_VERSION: u8 = 1;
/// Kind byte: the packet was forwarded.
pub const ECHO_KIND_FORWARDED: u8 = 1;
/// Kind byte: the packet was dropped.
pub const ECHO_KIND_DROPPED: u8 = 2;
/// Bytes of original transport payload carried in the token field.
pub const ECHO_TOKEN_LEN: usize = 8;

/// Stable wire code for a drop reason (0 = not dropped).
pub fn drop_reason_code(reason: &DropReason) -> u8 {
    match reason {
        DropReason::NoVlan => 1,
        DropReason::UnknownModule => 2,
        DropReason::BeingReconfigured => 3,
        DropReason::ModuleDiscard => 4,
        DropReason::UntrustedReconfiguration => 5,
    }
}

/// One decoded verdict echo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EchoRecord {
    /// True when the pipeline forwarded the packet.
    pub forwarded: bool,
    /// Drop reason code (see [`drop_reason_code`]); 0 for forwards.
    pub reason: u8,
    /// The module (tenant) the verdict was attributed to; 0 when the packet
    /// never resolved to one.
    pub module_id: u16,
    /// For forwards: the UDP destination port of the *rewritten* packet —
    /// evidence the tenant's rules executed. 0 otherwise.
    pub detail: u16,
    /// First [`ECHO_TOKEN_LEN`] bytes of the original frame's transport
    /// payload, zero-padded.
    pub token: [u8; ECHO_TOKEN_LEN],
}

impl EchoRecord {
    /// Builds the record for one processed packet: `packet` is the original
    /// ingress frame, `verdict` what the pipeline decided.
    pub fn from_verdict(packet: &Packet, verdict: &Verdict) -> EchoRecord {
        let mut token = [0u8; ECHO_TOKEN_LEN];
        if let Some(payload) = packet.transport_payload() {
            let n = payload.len().min(ECHO_TOKEN_LEN);
            token[..n].copy_from_slice(&payload[..n]);
        }
        match verdict {
            Verdict::Forwarded {
                packet: rewritten,
                module_id,
                ..
            } => EchoRecord {
                forwarded: true,
                reason: 0,
                module_id: *module_id,
                detail: rewritten.udp_dst_port().unwrap_or(0),
                token,
            },
            Verdict::Dropped { reason, module_id } => EchoRecord {
                forwarded: false,
                reason: drop_reason_code(reason),
                module_id: module_id.unwrap_or(0),
                detail: 0,
                token,
            },
        }
    }

    /// Serialises the record.
    pub fn encode(&self) -> [u8; ECHO_LEN] {
        let mut buf = [0u8; ECHO_LEN];
        buf[0] = ECHO_MAGIC;
        buf[1] = ECHO_VERSION;
        buf[2] = if self.forwarded {
            ECHO_KIND_FORWARDED
        } else {
            ECHO_KIND_DROPPED
        };
        buf[3] = self.reason;
        buf[4..6].copy_from_slice(&self.module_id.to_be_bytes());
        buf[6..8].copy_from_slice(&self.detail.to_be_bytes());
        buf[8..16].copy_from_slice(&self.token);
        buf
    }
}

/// Encodes the echo for one processed packet in a single step.
pub fn encode_echo(packet: &Packet, verdict: &Verdict) -> [u8; ECHO_LEN] {
    EchoRecord::from_verdict(packet, verdict).encode()
}

/// Decodes one echo datagram; `None` for anything that is not a
/// well-formed version-1 echo.
pub fn decode_echo(buf: &[u8]) -> Option<EchoRecord> {
    if buf.len() != ECHO_LEN || buf[0] != ECHO_MAGIC || buf[1] != ECHO_VERSION {
        return None;
    }
    let forwarded = match buf[2] {
        ECHO_KIND_FORWARDED => true,
        ECHO_KIND_DROPPED => false,
        _ => return None,
    };
    let mut token = [0u8; ECHO_TOKEN_LEN];
    token.copy_from_slice(&buf[8..16]);
    Some(EchoRecord {
        forwarded,
        reason: buf[3],
        module_id: u16::from_be_bytes([buf[4], buf[5]]),
        detail: u16::from_be_bytes([buf[6], buf[7]]),
        token,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_packet::PacketBuilder;

    #[test]
    fn dropped_verdict_round_trips() {
        let packet = PacketBuilder::udp_data(
            9,
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            4000,
            80,
            &[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5],
        );
        let verdict = Verdict::Dropped {
            reason: DropReason::UnknownModule,
            module_id: Some(9),
        };
        let wire = encode_echo(&packet, &verdict);
        let echo = decode_echo(&wire).expect("well-formed echo");
        assert!(!echo.forwarded);
        assert_eq!(echo.reason, drop_reason_code(&DropReason::UnknownModule));
        assert_eq!(echo.module_id, 9);
        assert_eq!(echo.detail, 0);
        assert_eq!(&echo.token, &[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(decode_echo(&[]), None);
        assert_eq!(decode_echo(&[0u8; ECHO_LEN]), None);
        let mut wire = [0u8; ECHO_LEN];
        wire[0] = ECHO_MAGIC;
        wire[1] = ECHO_VERSION;
        wire[2] = 7; // unknown kind
        assert_eq!(decode_echo(&wire), None);
        let mut short = encode_echo(
            &PacketBuilder::udp_data(1, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]),
            &Verdict::Dropped {
                reason: DropReason::NoVlan,
                module_id: None,
            },
        )
        .to_vec();
        short.pop();
        assert_eq!(decode_echo(&short), None);
    }

    #[test]
    fn short_payload_token_is_zero_padded() {
        let packet = PacketBuilder::udp_data(1, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0xab]);
        let verdict = Verdict::Dropped {
            reason: DropReason::NoVlan,
            module_id: None,
        };
        let echo = decode_echo(&encode_echo(&packet, &verdict)).unwrap();
        assert_eq!(echo.token[0], 0xab);
        assert_eq!(&echo.token[1..], &[0u8; 7]);
    }
}
