//! [`TraceIo`]: `crates/trace` replay behind the [`PacketIo`] trait.
//!
//! The backend reuses the replay engine's scheduling model verbatim
//! ([`schedule_offsets`]): each trace packet becomes receivable once its
//! scheduled offset has elapsed since the first `rx_burst` call, so
//! [`Pacing::TimestampFaithful`] and [`Pacing::RateRescaled`] arrivals look
//! to the service exactly as they would to the in-process replay — and
//! [`Pacing::Unpaced`] delivers as fast as the service polls. `rx_burst`
//! never blocks: packets whose send time has not arrived are simply not
//! ready yet, which keeps the service's control socket responsive while a
//! paced trace plays.

use crate::backend::{IoError, LinkCounters, LinkStats, PacketIo};
use crate::echo::ECHO_LEN;
use menshen_core::Verdict;
use menshen_packet::Packet;
use menshen_runtime::EgressSink;
use menshen_trace::{schedule_offsets, Pacing};
use std::sync::Arc;
use std::time::Instant;

struct TraceShared {
    counters: LinkCounters,
}

/// A finite trace source with replay-exact pacing. The egress side only
/// tallies (there is no peer to echo to); verdict accounting lives in the
/// runtime's conservation audit.
pub struct TraceIo {
    packets: Vec<Option<Packet>>,
    offsets: Vec<u64>,
    offered_pps: f64,
    cursor: usize,
    started: Option<Instant>,
    shared: Arc<TraceShared>,
}

struct TraceEgress {
    shared: Arc<TraceShared>,
}

impl TraceIo {
    /// Wraps `trace` under the given pacing policy. The clock starts at the
    /// first `rx_burst` call, not at construction.
    pub fn new(trace: Vec<Packet>, pacing: Pacing) -> TraceIo {
        let (offsets, offered_pps) = schedule_offsets(&trace, pacing);
        TraceIo {
            packets: trace.into_iter().map(Some).collect(),
            offsets,
            offered_pps,
            cursor: 0,
            started: None,
            shared: Arc::new(TraceShared {
                counters: LinkCounters::default(),
            }),
        }
    }

    /// The schedule's offered rate, packets per second
    /// (`f64::INFINITY` when unpaced).
    pub fn offered_pps(&self) -> f64 {
        self.offered_pps
    }

    /// Packets not yet delivered (nor drained).
    pub fn remaining(&self) -> usize {
        self.packets.len() - self.cursor
    }
}

impl PacketIo for TraceIo {
    fn label(&self) -> &'static str {
        "trace"
    }

    fn rx_burst(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, IoError> {
        if self.cursor >= self.packets.len() || max == 0 {
            return Ok(0);
        }
        let start = *self.started.get_or_insert_with(Instant::now);
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let mut delivered = 0usize;
        while delivered < max && self.cursor < self.packets.len() {
            if self.offsets[self.cursor] > elapsed_ns {
                break; // not due yet — pacing preserved, caller polls again
            }
            let packet = self.packets[self.cursor]
                .take()
                .expect("each trace slot is delivered once");
            self.cursor += 1;
            self.shared.counters.record_rx(packet.len());
            out.push(packet);
            delivered += 1;
        }
        Ok(delivered)
    }

    fn egress(&self) -> Arc<dyn EgressSink> {
        Arc::new(TraceEgress {
            shared: Arc::clone(&self.shared),
        })
    }

    fn exhausted(&self) -> bool {
        self.cursor >= self.packets.len()
    }

    fn drain(&mut self) -> Result<u64, IoError> {
        let discarded = (self.packets.len() - self.cursor) as u64;
        self.cursor = self.packets.len();
        self.shared.counters.rx_drained.add(discarded);
        Ok(discarded)
    }

    fn link_stats(&self) -> LinkStats {
        self.shared.counters.snapshot()
    }
}

impl EgressSink for TraceEgress {
    fn transmit(&self, _packet: &Packet, _verdict: &Verdict) {
        self.shared.counters.record_tx(ECHO_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_packet::PacketBuilder;

    fn trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                let mut p =
                    PacketBuilder::udp_data(2, [10, 0, 0, 1], [10, 0, 0, i as u8], 1, 2, &[]);
                p.timestamp_ns = i as u64 * 1_000_000; // 1 ms apart
                p
            })
            .collect()
    }

    #[test]
    fn unpaced_trace_delivers_immediately_and_exhausts() {
        let mut io = TraceIo::new(trace(10), Pacing::Unpaced);
        assert!(!io.exhausted());
        let mut out = Vec::new();
        assert_eq!(io.rx_burst(&mut out, 4).unwrap(), 4);
        assert_eq!(io.rx_burst(&mut out, 100).unwrap(), 6);
        assert_eq!(io.rx_burst(&mut out, 100).unwrap(), 0);
        assert!(io.exhausted());
        assert_eq!(io.link_stats().rx_packets, 10);
    }

    #[test]
    fn paced_trace_withholds_future_packets() {
        // 1 ms inter-arrival, rescaled to 10 s per packet: only the first
        // packet (offset 0) is due within the test's lifetime.
        let mut io = TraceIo::new(trace(5), Pacing::RateRescaled { pps: 0.1 });
        let mut out = Vec::new();
        assert_eq!(io.rx_burst(&mut out, 100).unwrap(), 1);
        assert_eq!(io.rx_burst(&mut out, 100).unwrap(), 0);
        assert!(!io.exhausted());
        assert_eq!(io.remaining(), 4);
    }

    #[test]
    fn drain_discards_the_tail() {
        let mut io = TraceIo::new(trace(8), Pacing::Unpaced);
        let mut out = Vec::new();
        io.rx_burst(&mut out, 3).unwrap();
        assert_eq!(io.drain().unwrap(), 5);
        assert!(io.exhausted());
        assert_eq!(io.rx_burst(&mut out, 100).unwrap(), 0);
        let stats = io.link_stats();
        assert_eq!(stats.rx_packets, 3);
        assert_eq!(stats.rx_drained, 5);
    }
}
