//! Pluggable packet I/O for the Menshen runtime: the boundary where the
//! sharded pipeline meets an actual network.
//!
//! Everything upstream of this crate moves packets through in-process calls;
//! everything in it is about running Menshen as a **long-lived service**
//! under traffic that arrives from outside the process. The shape follows
//! the DPDK deployments the paper targets — one NIC RX queue per dispatcher,
//! burst receive into the dispatch plane, verdict-driven transmit back out:
//!
//! * [`PacketIo`] — the backend trait: burst rx, an [`EgressSink`] for
//!   verdict-driven tx, drain semantics, and per-backend [`LinkStats`]
//!   that feed the `menshen_core::metrics` registry;
//! * [`InProcessIo`] — today's `submit_owned` path behind the trait: a
//!   caller injects packets through a handle and reads echoed verdicts back;
//! * [`TraceIo`] — `crates/trace` replay behind the trait, preserving the
//!   replay engine's exact [`Pacing`](menshen_trace::Pacing) model;
//! * [`UdpSocketIo`] — a real `std::net` data plane: one UDP socket per rx
//!   queue, nonblocking burst receive of encapsulated frames, and a compact
//!   per-packet verdict echo ([`echo`]) sent back to the learned peer;
//! * [`Service`] — the runner: a [`ShardedRuntime`](menshen_runtime::ShardedRuntime)
//!   behind any backend, a line-oriented TCP control socket for live
//!   reconfig (load/unload module, resize, metrics, audit) while traffic
//!   flows, and graceful drain on shutdown (stop rx → flush barrier →
//!   conservation audit → report).

pub mod backend;
pub mod echo;
pub mod inprocess;
pub mod service;
pub mod trace_io;
pub mod udp;

pub use backend::{IoError, LinkCounters, LinkStats, PacketIo};
pub use echo::{
    decode_echo, drop_reason_code, encode_echo, EchoRecord, ECHO_KIND_DROPPED, ECHO_KIND_FORWARDED,
    ECHO_LEN, ECHO_MAGIC, ECHO_TOKEN_LEN, ECHO_VERSION,
};
pub use inprocess::{InProcessHandle, InProcessIo};
pub use menshen_runtime::EgressSink;
pub use service::{
    control_request, DrainReport, PollOutcome, Service, ServiceConfig, ServiceError,
};
pub use trace_io::TraceIo;
pub use udp::{UdpEgress, UdpSocketIo};
