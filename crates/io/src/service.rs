//! [`Service`]: a [`ShardedRuntime`] behind a [`PacketIo`] backend.
//!
//! The service owns three loops folded into one [`poll`](Service::poll)
//! call, so a single thread can run the whole data plane:
//!
//! 1. **rx** — burst-receive from the backend and submit to the runtime;
//! 2. **control** — service a line-oriented TCP control socket
//!    (`127.0.0.1`, loopback only) for live reconfiguration — load/unload
//!    modules, resize the shard set, snapshot metrics — while traffic
//!    flows;
//! 3. **egress** — already wired: the backend's [`EgressSink`] was
//!    installed on the runtime at construction and runs on the worker
//!    threads.
//!
//! Shutdown is [`graceful_drain`](Service::graceful_drain): stop rx →
//! discard late arrivals at the I/O edge → flush barrier → conservation
//! audit → report. The returned [`DrainReport`] accounts for every packet
//! that ever crossed the edge: `rx_packets == audit.submitted`, the audit
//! balances, and anything discarded after rx stopped is explicitly counted.
//!
//! # Control protocol
//!
//! One UTF-8 request line per reply. Replies are a single `ok ...` /
//! `err ...` line, except `METRICS`, which streams the Prometheus
//! exposition terminated by a lone `.` line.
//!
//! | request | reply |
//! |---|---|
//! | `PING` | `ok pong` |
//! | `EPOCH` | `ok <current epoch>` |
//! | `STATS` | `ok packets=<n> forwarded=<n> dropped=<n>` |
//! | `LINK` | `ok rx=<n> rx_bytes=<n> rx_errors=<n> rx_drained=<n> tx=<n> tx_bytes=<n> tx_errors=<n>` |
//! | `AUDIT` | `ok balanced=<bool> submitted=<n> processed=<n> in_flight=<n>` |
//! | `METRICS` | Prometheus text, then `.` |
//! | `LOAD <id> <name>` | `ok module <id> epoch <e>` — installs a passthrough module |
//! | `UNLOAD <id>` | `ok module <id> epoch <e>` |
//! | `RESIZE <shards>` | `ok shards <from>-><to> pause_us <n>` |
//! | `DRAIN` | `ok draining` — asks the serve loop to exit |
//! | `QUIT` | `ok bye` — closes this control connection |

use crate::backend::{IoError, LinkStats, PacketIo};
use menshen_core::{MenshenPipeline, MetricsSnapshot, ModuleConfig, ModuleId};
use menshen_runtime::{
    ConservationAudit, RuntimeError, RuntimeOptions, ShardStats, ShardedRuntime,
};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Errors surfaced by the service runner.
#[derive(Debug)]
pub enum ServiceError {
    /// The packet I/O backend failed.
    Io(IoError),
    /// The control listener failed.
    Socket {
        /// What the service was doing.
        context: &'static str,
        /// The underlying OS error.
        error: std::io::Error,
    },
    /// The runtime reported an error.
    Runtime(RuntimeError),
    /// [`Service::graceful_drain`] was called on a service that already
    /// drained. The first drain stopped rx, audited the books and shut the
    /// runtime down; repeating any of that would double-count, so the
    /// second call gets this typed refusal instead.
    AlreadyDrained,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "packet I/O: {e}"),
            ServiceError::Socket { context, error } => write!(f, "{context}: {error}"),
            ServiceError::Runtime(e) => write!(f, "runtime: {e}"),
            ServiceError::AlreadyDrained => write!(f, "service already drained"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Socket { error, .. } => Some(error),
            ServiceError::Runtime(e) => Some(e),
            ServiceError::AlreadyDrained => None,
        }
    }
}

impl From<IoError> for ServiceError {
    fn from(e: IoError) -> Self {
        ServiceError::Io(e)
    }
}

impl From<RuntimeError> for ServiceError {
    fn from(e: RuntimeError) -> Self {
        ServiceError::Runtime(e)
    }
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards for the runtime.
    pub shards: usize,
    /// Dispatchers (rx queues in the per-NIC-queue model).
    pub dispatchers: usize,
    /// Packets per rx burst / runtime submission.
    pub burst_size: usize,
    /// Whether to open the loopback control listener.
    pub control: bool,
    /// Deadline applied to every runtime control-plane wait
    /// ([`ShardedRuntime::set_control_timeout`]); epochs that fail to
    /// publish within it surface as `RuntimeError::EpochTimeout` instead of
    /// hanging the serve loop.
    pub control_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            dispatchers: 1,
            burst_size: 64,
            control: true,
            control_timeout: Duration::from_secs(10),
        }
    }
}

/// What one [`Service::poll`] call accomplished — lets callers idle
/// (sleep/park) only when nothing moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// Packets received from the backend and submitted to the runtime.
    pub received: usize,
    /// Control requests served.
    pub control_requests: usize,
    /// True once a `DRAIN` control request asked the serve loop to exit.
    pub drain_requested: bool,
}

impl PollOutcome {
    /// True when the poll neither moved packets nor served control traffic.
    pub fn idle(&self) -> bool {
        self.received == 0 && self.control_requests == 0
    }
}

/// The graceful-shutdown accounting: every packet that ever crossed the
/// I/O edge is in exactly one of these buckets.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// The runtime's conservation audit, taken after the final flush.
    pub audit: ConservationAudit,
    /// The backend's final link statistics.
    pub link: LinkStats,
    /// Packets that arrived after rx stopped and were discarded at the edge
    /// (also in `link.rx_drained`).
    pub rx_discarded: u64,
    /// Aggregate shard tallies.
    pub stats: ShardStats,
    /// True when the books balance: the audit is clean *and* the runtime
    /// accepted exactly the packets the link delivered.
    pub balanced: bool,
}

struct ControlConn {
    reader: BufReader<TcpStream>,
    line: String,
}

/// A network-attached Menshen service: runtime + backend + control socket.
pub struct Service {
    runtime: ShardedRuntime,
    backend: Box<dyn PacketIo>,
    listener: Option<TcpListener>,
    conns: Vec<ControlConn>,
    rx_buf: Vec<menshen_packet::Packet>,
    burst_size: usize,
    received: u64,
    drain_requested: bool,
    drained: bool,
    num_stages: usize,
}

impl Service {
    /// Stands up a threaded runtime from `template`, installs the backend's
    /// egress sink, and (unless disabled) binds the loopback control
    /// listener.
    pub fn new(
        template: &MenshenPipeline,
        backend: Box<dyn PacketIo>,
        config: ServiceConfig,
    ) -> Result<Service, ServiceError> {
        let mut options =
            RuntimeOptions::threaded(config.shards).with_dispatchers(config.dispatchers);
        options.burst_size = config.burst_size.max(1);
        let mut runtime = ShardedRuntime::from_pipeline(template, options);
        runtime.set_control_timeout(Some(config.control_timeout));
        runtime.set_egress(Some(backend.egress()));
        let listener = if config.control {
            let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).map_err(|error| {
                ServiceError::Socket {
                    context: "binding control listener",
                    error,
                }
            })?;
            listener
                .set_nonblocking(true)
                .map_err(|error| ServiceError::Socket {
                    context: "setting control listener nonblocking",
                    error,
                })?;
            Some(listener)
        } else {
            None
        };
        Ok(Service {
            runtime,
            backend,
            listener,
            conns: Vec::new(),
            rx_buf: Vec::new(),
            burst_size: config.burst_size.max(1),
            received: 0,
            drain_requested: false,
            drained: false,
            num_stages: template.params().num_stages,
        })
    }

    /// The control listener's address, if one was opened.
    pub fn control_addr(&self) -> Option<SocketAddr> {
        self.listener.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The underlying runtime — for direct control-plane calls (rule
    /// installs, module loads) from the owning process.
    pub fn runtime_mut(&mut self) -> &mut ShardedRuntime {
        &mut self.runtime
    }

    /// The backend's current link statistics.
    pub fn link_stats(&self) -> LinkStats {
        self.backend.link_stats()
    }

    /// Packets received from the backend and submitted so far.
    pub fn packets_received(&self) -> u64 {
        self.received
    }

    /// True once the backend is a finite source that has emitted everything.
    pub fn source_exhausted(&self) -> bool {
        self.backend.exhausted()
    }

    /// True once a control peer has requested `DRAIN`.
    pub fn drain_requested(&self) -> bool {
        self.drain_requested
    }

    /// One scheduling quantum: service control connections, then move one
    /// rx burst into the runtime. Never blocks.
    pub fn poll(&mut self) -> Result<PollOutcome, ServiceError> {
        let mut outcome = PollOutcome {
            control_requests: self.poll_control()?,
            ..PollOutcome::default()
        };
        self.rx_buf.clear();
        let burst = self.burst_size;
        let got = self.backend.rx_burst(&mut self.rx_buf, burst)?;
        if got > 0 {
            let batch = std::mem::take(&mut self.rx_buf);
            self.runtime.submit_owned(batch)?;
            self.received += got as u64;
            outcome.received = got;
        }
        outcome.drain_requested = self.drain_requested;
        Ok(outcome)
    }

    /// Runs [`poll`](Service::poll) until `DRAIN` is requested, the finite
    /// source is exhausted, or `deadline` passes (if given); parks briefly
    /// on idle polls. Returns the number of packets received over the run.
    pub fn serve(&mut self, deadline: Option<Duration>) -> Result<u64, ServiceError> {
        let started = Instant::now();
        let before = self.received;
        loop {
            let outcome = self.poll()?;
            if outcome.drain_requested {
                break;
            }
            if self.backend.exhausted() {
                break;
            }
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    break;
                }
            }
            if outcome.idle() {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        Ok(self.received - before)
    }

    /// A combined runtime + I/O metrics snapshot: the PR-7 exposition plus
    /// `menshen_io_*` link counters.
    pub fn metrics_snapshot(&mut self) -> Result<MetricsSnapshot, ServiceError> {
        let mut snapshot = self.runtime.metrics_snapshot()?;
        self.backend
            .link_stats()
            .push_metrics(&mut snapshot, self.backend.label());
        Ok(snapshot)
    }

    /// Graceful shutdown: stop rx → drain the I/O edge → flush barrier →
    /// conservation audit → runtime shutdown → report. The control
    /// listener closes with it. Idempotent in the typed sense: a second
    /// call returns [`ServiceError::AlreadyDrained`] instead of
    /// double-counting against an already-shut runtime.
    pub fn graceful_drain(&mut self) -> Result<DrainReport, ServiceError> {
        if self.drained {
            return Err(ServiceError::AlreadyDrained);
        }
        self.drained = true;
        // 0. Close the control edge: no further reconfiguration can race
        //    the final books.
        self.listener = None;
        self.conns.clear();
        // 1. Stop rx: simply stop calling rx_burst. Anything that arrives
        //    from here on is discarded at the edge, visibly.
        let rx_discarded = self.backend.drain()?;
        // 2. Flush barrier: every packet already submitted reaches a
        //    verdict, and (because egress transmit happens before the
        //    progress board advances) every verdict reached the sink.
        self.runtime.flush();
        // 3. Books: the audit quiesces the pipeline again and balances the
        //    tallies against the per-tenant ledgers.
        let audit = self.runtime.conservation_audit()?;
        let stats = self.runtime.total_stats();
        let link = self.backend.link_stats();
        self.runtime.shutdown();
        let balanced = audit.is_balanced() && audit.submitted == link.rx_packets;
        Ok(DrainReport {
            audit,
            link,
            rx_discarded,
            stats,
            balanced,
        })
    }

    fn poll_control(&mut self) -> Result<usize, ServiceError> {
        let Some(listener) = &self.listener else {
            return Ok(0);
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(ControlConn {
                            reader: BufReader::new(stream),
                            line: String::new(),
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(error) => {
                    return Err(ServiceError::Socket {
                        context: "accepting control connection",
                        error,
                    });
                }
            }
        }
        let mut served = 0usize;
        let mut index = 0usize;
        while index < self.conns.len() {
            match self.poll_conn(index) {
                ConnPoll::Kept => index += 1,
                ConnPoll::Closed => {
                    self.conns.swap_remove(index);
                }
                ConnPoll::Served => {
                    served += 1;
                    index += 1;
                }
            }
        }
        Ok(served)
    }

    fn poll_conn(&mut self, index: usize) -> ConnPoll {
        let conn = &mut self.conns[index];
        conn.line.clear();
        match conn.reader.read_line(&mut conn.line) {
            Ok(0) => ConnPoll::Closed, // peer hung up
            Ok(_) => {
                let request = std::mem::take(&mut self.conns[index].line);
                let request = request.trim().to_string();
                if request.is_empty() {
                    return ConnPoll::Served;
                }
                let (reply, close) = self.handle_request(&request);
                let conn = &mut self.conns[index];
                let stream = conn.reader.get_mut();
                let ok = stream
                    .write_all(reply.as_bytes())
                    .and_then(|_| stream.write_all(b"\n"))
                    .is_ok();
                if !ok || close {
                    ConnPoll::Closed
                } else {
                    ConnPoll::Served
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => ConnPoll::Kept,
            Err(e) if e.kind() == ErrorKind::Interrupted => ConnPoll::Kept,
            Err(_) => ConnPoll::Closed,
        }
    }

    /// Executes one control request; returns (reply, close-connection).
    /// Never panics: runtime errors become `err` replies.
    fn handle_request(&mut self, request: &str) -> (String, bool) {
        let mut parts = request.split_whitespace();
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let reply = match verb.as_str() {
            "PING" => "ok pong".to_string(),
            "EPOCH" => format!("ok {}", self.runtime.current_epoch()),
            "STATS" => {
                let stats = self.runtime.total_stats();
                format!(
                    "ok packets={} forwarded={} dropped={}",
                    stats.packets, stats.forwarded, stats.dropped
                )
            }
            "LINK" => {
                let link = self.backend.link_stats();
                format!(
                    "ok rx={} rx_bytes={} rx_errors={} rx_drained={} tx={} tx_bytes={} tx_errors={}",
                    link.rx_packets,
                    link.rx_bytes,
                    link.rx_errors,
                    link.rx_drained,
                    link.tx_packets,
                    link.tx_bytes,
                    link.tx_errors
                )
            }
            "AUDIT" => match self.runtime.conservation_audit() {
                Ok(audit) => format!(
                    "ok balanced={} submitted={} processed={} in_flight={}",
                    audit.is_balanced(),
                    audit.submitted,
                    audit.processed,
                    audit.in_flight
                ),
                Err(e) => format!("err {e}"),
            },
            "METRICS" => match self.metrics_snapshot() {
                Ok(snapshot) => {
                    let mut text = snapshot.to_prometheus();
                    if !text.ends_with('\n') {
                        text.push('\n');
                    }
                    text.push('.');
                    text
                }
                Err(e) => format!("err {e}"),
            },
            "LOAD" => match (parts.next().map(str::parse::<u16>), parts.next()) {
                (Some(Ok(id)), name) => {
                    let name = name.unwrap_or("tenant").to_string();
                    let config = ModuleConfig::empty(ModuleId::new(id), name, self.num_stages);
                    match self.runtime.load_module(&config) {
                        Ok(()) => {
                            format!("ok module {id} epoch {}", self.runtime.current_epoch())
                        }
                        Err(e) => format!("err {e}"),
                    }
                }
                _ => "err usage: LOAD <module-id> [name]".to_string(),
            },
            "UNLOAD" => match parts.next().map(str::parse::<u16>) {
                Some(Ok(id)) => match self.runtime.unload_module(ModuleId::new(id)) {
                    Ok(()) => format!("ok module {id} epoch {}", self.runtime.current_epoch()),
                    Err(e) => format!("err {e}"),
                },
                _ => "err usage: UNLOAD <module-id>".to_string(),
            },
            "RESIZE" => match parts.next().map(str::parse::<usize>) {
                Some(Ok(shards)) if shards >= 1 => match self.runtime.resize(shards) {
                    Ok(report) => format!(
                        "ok shards {}->{} pause_us {}",
                        report.from_shards,
                        report.to_shards,
                        report.pause.as_micros()
                    ),
                    Err(e) => format!("err {e}"),
                },
                _ => "err usage: RESIZE <shards>".to_string(),
            },
            "DRAIN" => {
                self.drain_requested = true;
                "ok draining".to_string()
            }
            "QUIT" => return ("ok bye".to_string(), true),
            _ => format!("err unknown request: {verb}"),
        };
        (reply, false)
    }
}

enum ConnPoll {
    Kept,
    Served,
    Closed,
}

/// Client-side helper: connects to a service's control socket (retrying
/// until `timeout`, so a just-spawned service has time to bind), sends one
/// request line, and returns the reply — all lines for `METRICS` (the `.`
/// terminator stripped), one line otherwise.
pub fn control_request(
    addr: SocketAddr,
    request: &str,
    timeout: Duration,
) -> std::io::Result<String> {
    let deadline = Instant::now() + timeout;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "control connection closed before reply",
        ));
    }
    if request.trim().eq_ignore_ascii_case("METRICS") && !line.starts_with("err") {
        let mut body = String::new();
        loop {
            let trimmed = line.trim_end();
            if trimmed == "." {
                break;
            }
            body.push_str(trimmed);
            body.push('\n');
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "metrics stream ended without terminator",
                ));
            }
        }
        return Ok(body);
    }
    Ok(line.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inprocess::InProcessIo;
    use menshen_packet::PacketBuilder;
    use menshen_rmt::TABLE5;

    fn template() -> MenshenPipeline {
        MenshenPipeline::new(TABLE5)
    }

    fn frames(vlan: u16, n: usize) -> Vec<menshen_packet::Packet> {
        (0..n)
            .map(|i| {
                let seq = (i as u32).to_be_bytes();
                PacketBuilder::udp_data(vlan, [10, 0, 0, 1], [10, 0, 0, 2], 7, 80, &seq)
            })
            .collect()
    }

    #[test]
    fn serve_drain_balances_the_books() {
        let (io, handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        handle.inject(frames(3, 200));
        while service.packets_received() < 200 {
            service.poll().unwrap();
        }
        let report = service.graceful_drain().unwrap();
        assert!(report.balanced, "unbalanced drain: {report:?}");
        assert_eq!(report.audit.submitted, 200);
        assert_eq!(report.link.rx_packets, 200);
        assert_eq!(report.link.tx_packets, 200, "every verdict echoed");
        assert_eq!(report.rx_discarded, 0);
        assert_eq!(handle.echoes().len(), 200);
    }

    #[test]
    fn late_arrivals_are_discarded_and_counted() {
        let (io, handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        handle.inject(frames(3, 50));
        while service.packets_received() < 50 {
            service.poll().unwrap();
        }
        // Arrives after rx stops: must be discarded at the edge, on the
        // books as rx_drained, and absent from the audit.
        handle.inject(frames(3, 7));
        let report = service.graceful_drain().unwrap();
        assert!(report.balanced);
        assert_eq!(report.audit.submitted, 50);
        assert_eq!(report.rx_discarded, 7);
        assert_eq!(report.link.rx_drained, 7);
    }

    #[test]
    fn control_socket_serves_reconfiguration_under_traffic() {
        let (io, handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        let addr = service.control_addr().expect("control listener");
        let client = std::thread::spawn(move || {
            let t = Duration::from_secs(10);
            [
                "PING",
                "LOAD 9 tenant-nine",
                "RESIZE 3",
                "STATS",
                "LINK",
                "AUDIT",
                "UNLOAD 9",
                "BOGUS",
                "DRAIN",
            ]
            .iter()
            .map(|req| control_request(addr, req, t).unwrap())
            .collect::<Vec<_>>()
        });
        // Keep traffic flowing while the client reconfigures.
        let mut injected = 0usize;
        while !service.drain_requested() {
            if injected < 10_000 {
                handle.inject(frames(3, 32));
                injected += 32;
            }
            service.poll().unwrap();
        }
        let replies = client.join().unwrap();
        assert_eq!(replies[0], "ok pong");
        assert_eq!(
            replies[1].split(' ').take(3).collect::<Vec<_>>(),
            ["ok", "module", "9"]
        );
        assert!(replies[2].starts_with("ok shards 2->3"), "{}", replies[2]);
        assert!(replies[3].starts_with("ok packets="), "{}", replies[3]);
        assert!(replies[4].starts_with("ok rx="), "{}", replies[4]);
        assert!(replies[5].starts_with("ok balanced=true"), "{}", replies[5]);
        assert!(replies[6].starts_with("ok module 9"), "{}", replies[6]);
        assert!(replies[7].starts_with("err unknown"), "{}", replies[7]);
        assert_eq!(replies[8], "ok draining");

        let report = service.graceful_drain().unwrap();
        assert!(report.balanced, "reconfig under traffic lost packets");
    }

    #[test]
    fn metrics_exposition_covers_the_io_edge() {
        let (io, handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        let addr = service.control_addr().unwrap();
        handle.inject(frames(3, 64));
        while service.packets_received() < 64 {
            service.poll().unwrap();
        }
        let client = std::thread::spawn(move || {
            control_request(addr, "METRICS", Duration::from_secs(10)).unwrap()
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !client.is_finished() {
            assert!(Instant::now() < deadline, "metrics request hung");
            service.poll().unwrap();
        }
        let body = client.join().unwrap();
        assert!(
            body.contains("menshen_io_rx_packets_total{backend=\"inprocess\"} 64"),
            "io series missing from exposition:\n{body}"
        );
        assert!(
            body.contains("menshen_io_tx_packets_total"),
            "tx series missing:\n{body}"
        );
        service.graceful_drain().unwrap();
    }

    #[test]
    fn second_drain_is_a_typed_refusal() {
        let (io, handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        handle.inject(frames(3, 16));
        while service.packets_received() < 16 {
            service.poll().unwrap();
        }
        let report = service.graceful_drain().unwrap();
        assert!(report.balanced);
        match service.graceful_drain() {
            Err(ServiceError::AlreadyDrained) => {}
            other => panic!("second drain must refuse, got {other:?}"),
        }
    }

    #[test]
    fn epoch_and_quit_requests() {
        let (io, _handle) = InProcessIo::new();
        let mut service =
            Service::new(&template(), Box::new(io), ServiceConfig::default()).unwrap();
        let addr = service.control_addr().unwrap();
        let client = std::thread::spawn(move || {
            let t = Duration::from_secs(10);
            let epoch = control_request(addr, "EPOCH", t).unwrap();
            let bye = control_request(addr, "QUIT", t).unwrap();
            (epoch, bye)
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while !client.is_finished() {
            assert!(Instant::now() < deadline, "control request hung");
            service.poll().unwrap();
        }
        let (epoch, bye) = client.join().unwrap();
        assert!(epoch.starts_with("ok "), "{epoch}");
        assert_eq!(bye, "ok bye");
        service.graceful_drain().unwrap();
    }
}
