//! NetCache (simplified) — an in-network key-value cache (Table 3).
//!
//! The real NetCache [Jin et al., SOSP'17] serves hot key-value pairs from
//! switch stateful memory. Following the paper's own simplification (§5
//! footnote 4: no hot-key tagging), this module caches a small set of keys
//! and serves, for each cached key, a per-key statistic held in the module's
//! stateful memory: the number of times the key has been requested. Every
//! read both returns the statistic in the value field and updates it — which
//! exercises exactly the pipeline features the original needs (custom KV
//! header, exact match on the key, per-module stateful memory accessed
//! through the segment table) and gives the behaviour-isolation experiments a
//! stateful oracle.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Byte offset of the key-value header (start of the UDP payload).
pub const HEADER_OFFSET: usize = 46;
/// The cached keys.
pub const CACHED_KEYS: [u32; 4] = [100, 101, 102, 103];
/// Read-request opcode.
pub const OP_READ: u16 = 1;

/// DSL source of the simplified NetCache module.
pub const SOURCE: &str = r#"
module netcache {
    header kv_hdr {
        op : 16;
        key : 32;
        value : 32;
    }
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
        extract kv_hdr;
    }
    state hit_counters[16];
    table cache_lookup {
        key = { kv_hdr.key; }
        actions = { serve_slot_0; serve_slot_1; serve_slot_2; serve_slot_3; }
        size = 16;
    }
    action serve_slot_0() { kv_hdr.value = hit_counters.count(0); set_port(1); }
    action serve_slot_1() { kv_hdr.value = hit_counters.count(1); set_port(1); }
    action serve_slot_2() { kv_hdr.value = hit_counters.count(2); set_port(1); }
    action serve_slot_3() { kv_hdr.value = hit_counters.count(3); set_port(1); }
    apply {
        cache_lookup.apply();
    }
}
"#;

/// The NetCache evaluated program.
///
/// The oracle is stateful (it must predict the per-key hit count), so the
/// program keeps its own model of the counters, keyed by module ID so that
/// several instances can coexist in one test.
#[derive(Default)]
pub struct NetCache {
    model: Mutex<HashMap<(u16, u32), u64>>,
}

#[allow(clippy::new_without_default)]
impl NetCache {
    /// Creates a NetCache program with a fresh oracle model.
    pub fn new() -> Self {
        NetCache::default()
    }

    fn build_packet(module_id: u16, key: u32) -> Packet {
        let mut payload = Vec::with_capacity(10);
        payload.extend_from_slice(&OP_READ.to_be_bytes());
        payload.extend_from_slice(&key.to_be_bytes());
        payload.extend_from_slice(&0u32.to_be_bytes());
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 4, 0, 1],
            [10, 4, 0, 2],
            50_000,
            8888,
            &payload,
        )
    }
}

impl EvaluatedProgram for NetCache {
    fn name(&self) -> &'static str {
        "NetCache"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let key = FieldRef::new("kv_hdr", "key");
        let stage = compiled
            .table("cache_lookup")
            .expect("declared table")
            .stage;
        let mut config = compiled.config.clone();
        let actions = [
            "serve_slot_0",
            "serve_slot_1",
            "serve_slot_2",
            "serve_slot_3",
        ];
        for (slot, cached_key) in CACHED_KEYS.iter().enumerate() {
            config.stages[stage].rules.push(compiled.rule(
                "cache_lookup",
                &[(&key, u64::from(*cached_key))],
                actions[slot],
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                // 80 % of requests hit the cached keys (a hot-key workload),
                // the rest miss.
                let key = if rng.gen_range(0..10) < 8 {
                    CACHED_KEYS[rng.gen_range(0..CACHED_KEYS.len())]
                } else {
                    rng.gen_range(1000..2000)
                };
                Self::build_packet(module_id, key)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let key = match input.read_be(HEADER_OFFSET + 2, 4) {
            Some(key) => key as u32,
            None => return false,
        };
        let module_id = input.vlan_id().map(|v| v.value()).unwrap_or(0);
        match verdict {
            Verdict::Forwarded { packet, .. } => {
                let value = packet.read_be(HEADER_OFFSET + 6, 4);
                if CACHED_KEYS.contains(&key) {
                    // Cache hit: the returned value is the previous hit count.
                    let mut model = self.model.lock().expect("oracle model lock");
                    let counter = model.entry((module_id, key)).or_insert(0);
                    let expected = *counter;
                    *counter += 1;
                    value == Some(expected)
                } else {
                    // Cache miss: the packet passes through unchanged.
                    value == Some(0)
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::{MenshenPipeline, ModuleId};
    use menshen_rmt::TABLE5;

    #[test]
    fn hit_counters_increase_per_key() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let cache = NetCache::new();
        pipeline.load_module(&cache.build(7).unwrap()).unwrap();

        for expected in 0..3u64 {
            match pipeline.process(NetCache::build_packet(7, 100)) {
                Verdict::Forwarded { packet, .. } => {
                    assert_eq!(packet.read_be(HEADER_OFFSET + 6, 4), Some(expected));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // A different key has its own counter.
        match pipeline.process(NetCache::build_packet(7, 103)) {
            Verdict::Forwarded { packet, .. } => {
                assert_eq!(packet.read_be(HEADER_OFFSET + 6, 4), Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The counters live in the module's stateful memory.
        assert_eq!(pipeline.read_stateful(ModuleId::new(7), 0, 0), Some(3));
        assert_eq!(pipeline.read_stateful(ModuleId::new(7), 0, 3), Some(1));
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let cache = NetCache::new();
        pipeline.load_module(&cache.build(7).unwrap()).unwrap();
        for packet in cache.packets(7, 60, 21) {
            let verdict = pipeline.process(packet.clone());
            assert!(cache.check_output(&packet, &verdict));
        }
    }
}
