//! Firewall — a stateless firewall that blocks certain traffic
//! (tutorial program, Table 3).
//!
//! The module matches on the (source IP, UDP destination port) pair and drops
//! packets on the block list; everything else is forwarded towards port 1.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{DropReason, ModuleConfig, Verdict};
use menshen_packet::{Ipv4Address, Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DSL source of the Firewall module.
pub const SOURCE: &str = r#"
module firewall {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table acl {
        key = { ipv4.src_addr; udp.dst_port; }
        actions = { block; allow; }
        size = 16;
    }
    action block() {
        mark_drop();
    }
    action allow() {
        set_port(1);
    }
    apply {
        acl.apply();
    }
}
"#;

/// The (source IP, destination port) pairs on the block list.
pub fn block_list() -> Vec<(Ipv4Address, u16)> {
    vec![
        (Ipv4Address::new(10, 0, 0, 13), 80),
        (Ipv4Address::new(10, 0, 0, 66), 443),
        (Ipv4Address::new(192, 168, 7, 7), 53),
    ]
}

/// Explicitly allowed pairs (hit the `allow` action).
pub fn allow_list() -> Vec<(Ipv4Address, u16)> {
    vec![
        (Ipv4Address::new(10, 0, 0, 1), 80),
        (Ipv4Address::new(10, 0, 0, 2), 443),
    ]
}

/// The Firewall evaluated program.
pub struct Firewall;

impl Firewall {
    fn build_packet(module_id: u16, src: Ipv4Address, dst_port: u16) -> Packet {
        PacketBuilder::new().with_vlan(module_id).build_udp(
            src,
            [10, 0, 9, 9],
            33333,
            dst_port,
            &[0u8; 16],
        )
    }
}

impl EvaluatedProgram for Firewall {
    fn name(&self) -> &'static str {
        "Firewall"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let src = FieldRef::new("ipv4", "src_addr");
        let port = FieldRef::new("udp", "dst_port");
        let stage = compiled.table("acl").expect("declared table").stage;
        let mut config = compiled.config.clone();
        for (ip, dst_port) in block_list() {
            config.stages[stage].rules.push(compiled.rule(
                "acl",
                &[(&src, u64::from(ip.to_u32())), (&port, u64::from(dst_port))],
                "block",
            )?);
        }
        for (ip, dst_port) in allow_list() {
            config.stages[stage].rules.push(compiled.rule(
                "acl",
                &[(&src, u64::from(ip.to_u32())), (&port, u64::from(dst_port))],
                "allow",
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocked = block_list();
        let allowed = allow_list();
        (0..count)
            .map(|_| {
                let roll = rng.gen_range(0..3);
                let (src, port) = match roll {
                    0 => blocked[rng.gen_range(0..blocked.len())],
                    1 => allowed[rng.gen_range(0..allowed.len())],
                    _ => (
                        Ipv4Address::new(172, 16, rng.gen_range(0..4), rng.gen_range(1..250)),
                        rng.gen_range(1024..2048),
                    ),
                };
                Self::build_packet(module_id, src, port)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let src = match input.ipv4_src() {
            Some(src) => src,
            None => return false,
        };
        let port = match input.udp_dst_port() {
            Some(port) => port,
            None => return false,
        };
        let is_blocked = block_list().contains(&(src, port));
        match verdict {
            Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                ..
            } => is_blocked,
            Verdict::Forwarded { packet, .. } => {
                // The firewall never rewrites packet contents.
                !is_blocked && packet.bytes() == input.bytes()
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn blocks_listed_flows_and_passes_others() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Firewall.build(2).unwrap()).unwrap();

        let blocked = Firewall::build_packet(2, Ipv4Address::new(10, 0, 0, 13), 80);
        assert!(matches!(
            pipeline.process(blocked),
            Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                ..
            }
        ));

        // Same source, different port: passes.
        let passes = Firewall::build_packet(2, Ipv4Address::new(10, 0, 0, 13), 8080);
        assert!(pipeline.process(passes).is_forwarded());

        // Explicitly allowed flow routed to port 1.
        let allowed = Firewall::build_packet(2, Ipv4Address::new(10, 0, 0, 1), 80);
        match pipeline.process(allowed) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Firewall.build(2).unwrap()).unwrap();
        for packet in Firewall.packets(2, 60, 99) {
            let verdict = pipeline.process(packet.clone());
            assert!(Firewall.check_output(&packet, &verdict));
        }
    }
}
