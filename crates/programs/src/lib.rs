//! The evaluated packet-processing modules of Table 3.
//!
//! The paper evaluates Menshen with six tutorial-style P4 programs (CALC,
//! Firewall, Load Balancing, QoS, Source Routing, Multicast), simplified
//! versions of the NetCache and NetChain research systems, and a system-level
//! module providing routing/multicast to everything else. This crate rewrites
//! each of them in the Menshen DSL, compiles them with `menshen-compiler`,
//! installs their concrete match-action rules, and pairs each with a workload
//! generator and an output oracle so behaviour-isolation experiments (§5.1)
//! can check that every module behaves exactly as it would running alone.
//!
//! Simplifications (mirroring the paper's own, §5 footnote 4): NetCache does
//! not tag hot keys — its cache entries return per-key hit counters from
//! stateful memory; NetChain implements only the sequencer. Both exercise the
//! same pipeline features (custom headers, exact match, per-module stateful
//! memory) as the originals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calc;
pub mod firewall;
pub mod load_balancing;
pub mod multicast;
pub mod netcache;
pub mod netchain;
pub mod qos;
pub mod source_routing;
pub mod system;

use menshen_compiler::CompileError;
use menshen_core::{ModuleConfig, SystemModule, Verdict};
use menshen_packet::Packet;

/// A program from the paper's evaluation: DSL source, loadable configuration,
/// a workload, and an oracle for behaviour-isolation checks.
pub trait EvaluatedProgram {
    /// Program name as it appears in Table 3.
    fn name(&self) -> &'static str;

    /// The DSL source of the module.
    fn source(&self) -> &'static str;

    /// Compiles the module for `module_id` and installs its concrete rules.
    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError>;

    /// Installs any state the program expects in the system-level module
    /// (routes, multicast groups). Default: nothing.
    fn configure_system(&self, _system: &mut SystemModule) {}

    /// Generates `count` workload packets for the module, deterministically
    /// from `seed`.
    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet>;

    /// Checks that the pipeline's verdict for `input` is what the program
    /// would produce running alone (the behaviour-isolation oracle).
    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool;
}

/// All eight evaluated modules of Table 3, in the paper's order.
pub fn all_programs() -> Vec<Box<dyn EvaluatedProgram>> {
    vec![
        Box::new(calc::Calc),
        Box::new(firewall::Firewall),
        Box::new(load_balancing::LoadBalancing),
        Box::new(qos::Qos),
        Box::new(source_routing::SourceRouting),
        Box::new(netcache::NetCache::new()),
        Box::new(netchain::NetChain::new()),
        Box::new(multicast::Multicast),
    ]
}

/// The names of the programs plotted in Figures 8 and 9 (the eight modules of
/// Table 3 minus Multicast, whose logic lives in the system-level module in
/// the paper's setup, plus the system-level program itself).
pub fn figure8_program_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("CALC", calc::SOURCE),
        ("Firewall", firewall::SOURCE),
        ("Load Balancing", load_balancing::SOURCE),
        ("QoS", qos::SOURCE),
        ("Source Routing", source_routing::SOURCE),
        ("NetCache", netcache::SOURCE),
        ("NetChain", netchain::SOURCE),
        ("System-level", system::SOURCE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::{MenshenPipeline, ModuleId};
    use menshen_rmt::TABLE5;

    #[test]
    fn every_program_compiles_and_loads() {
        for (index, program) in all_programs().into_iter().enumerate() {
            let module_id = (index + 1) as u16;
            let config = program
                .build(module_id)
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", program.name()));
            assert_eq!(config.module_id, ModuleId::new(module_id));
            let mut pipeline = MenshenPipeline::new(TABLE5);
            program.configure_system(pipeline.system_mut());
            pipeline
                .load_module(&config)
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", program.name()));
        }
    }

    #[test]
    fn every_program_passes_its_own_oracle_in_isolation() {
        for (index, program) in all_programs().into_iter().enumerate() {
            let module_id = (index + 1) as u16;
            let config = program.build(module_id).unwrap();
            let mut pipeline = MenshenPipeline::new(TABLE5);
            program.configure_system(pipeline.system_mut());
            pipeline.load_module(&config).unwrap();
            for packet in program.packets(module_id, 40, 7) {
                let verdict = pipeline.process(packet.clone());
                assert!(
                    program.check_output(&packet, &verdict),
                    "{}: oracle rejected verdict {verdict:?} for its own traffic",
                    program.name()
                );
            }
        }
    }

    #[test]
    fn workloads_are_deterministic_in_the_seed() {
        for program in all_programs() {
            let a = program.packets(5, 10, 42);
            let b = program.packets(5, 10, 42);
            let bytes_a: Vec<_> = a.iter().map(|p| p.bytes().to_vec()).collect();
            let bytes_b: Vec<_> = b.iter().map(|p| p.bytes().to_vec()).collect();
            assert_eq!(bytes_a, bytes_b, "{}", program.name());
            assert_eq!(a.len(), 10);
        }
    }

    #[test]
    fn figure8_sources_all_parse() {
        for (name, source) in figure8_program_sources() {
            menshen_compiler::parse_module(source)
                .unwrap_or_else(|e| panic!("{name} source does not parse: {e}"));
        }
        assert_eq!(figure8_program_sources().len(), 8);
    }
}
