//! CALC — return a value computed from a parsed opcode and operands
//! (tutorial program, Table 3).
//!
//! Packets carry a custom header right after UDP: a 16-bit opcode, two 32-bit
//! operands and a 32-bit result field. The module matches on the opcode and
//! writes `operand_a ± operand_b` into the result field, or drops the packet
//! for the "drop" opcode.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{DropReason, ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Opcode for addition.
pub const OP_ADD: u16 = 1;
/// Opcode for subtraction.
pub const OP_SUB: u16 = 2;
/// Opcode that drops the packet.
pub const OP_DROP: u16 = 3;

/// Byte offset of the CALC header within the frame (start of the UDP payload).
pub const HEADER_OFFSET: usize = 46;

/// DSL source of the CALC module.
pub const SOURCE: &str = r#"
module calc {
    header calc_hdr {
        opcode : 16;
        operand_a : 32;
        operand_b : 32;
        result : 32;
    }
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
        extract calc_hdr;
    }
    table calc_table {
        key = { calc_hdr.opcode; }
        actions = { do_add; do_sub; do_drop; }
        size = 16;
    }
    action do_add() {
        calc_hdr.result = calc_hdr.operand_a + calc_hdr.operand_b;
    }
    action do_sub() {
        calc_hdr.result = calc_hdr.operand_a - calc_hdr.operand_b;
    }
    action do_drop() {
        mark_drop();
    }
    apply {
        calc_table.apply();
    }
}
"#;

/// The CALC evaluated program.
pub struct Calc;

impl Calc {
    fn build_packet(module_id: u16, opcode: u16, a: u32, b: u32) -> Packet {
        let mut payload = Vec::with_capacity(14);
        payload.extend_from_slice(&opcode.to_be_bytes());
        payload.extend_from_slice(&a.to_be_bytes());
        payload.extend_from_slice(&b.to_be_bytes());
        payload.extend_from_slice(&0u32.to_be_bytes()); // result placeholder
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            4000,
            5000,
            &payload,
        )
    }

    fn read_operands(packet: &Packet) -> Option<(u16, u32, u32)> {
        Some((
            packet.read_be(HEADER_OFFSET, 2)? as u16,
            packet.read_be(HEADER_OFFSET + 2, 4)? as u32,
            packet.read_be(HEADER_OFFSET + 6, 4)? as u32,
        ))
    }
}

impl EvaluatedProgram for Calc {
    fn name(&self) -> &'static str {
        "CALC"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let opcode = FieldRef::new("calc_hdr", "opcode");
        let stage = compiled.table("calc_table").expect("declared table").stage;
        let mut config = compiled.config.clone();
        for (value, action) in [(OP_ADD, "do_add"), (OP_SUB, "do_sub"), (OP_DROP, "do_drop")] {
            config.stages[stage].rules.push(compiled.rule(
                "calc_table",
                &[(&opcode, u64::from(value))],
                action,
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let opcode = *[OP_ADD, OP_SUB, OP_DROP]
                    .get(rng.gen_range(0..3usize))
                    .expect("index in range");
                // Keep operands ordered so subtraction never wraps; wrapping is
                // well-defined in the ALU but makes the oracle noisier to read.
                let a: u32 = rng.gen_range(1_000..1_000_000);
                let b: u32 = rng.gen_range(0..1_000);
                Self::build_packet(module_id, opcode, a, b)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let Some((opcode, a, b)) = Self::read_operands(input) else {
            return false;
        };
        match (opcode, verdict) {
            (
                OP_DROP,
                Verdict::Dropped {
                    reason: DropReason::ModuleDiscard,
                    ..
                },
            ) => true,
            (OP_ADD, Verdict::Forwarded { packet, .. }) => {
                packet.read_be(HEADER_OFFSET + 10, 4) == Some(u64::from(a.wrapping_add(b)))
            }
            (OP_SUB, Verdict::Forwarded { packet, .. }) => {
                packet.read_be(HEADER_OFFSET + 10, 4) == Some(u64::from(a.wrapping_sub(b)))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn add_sub_and_drop_behave() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Calc.build(3).unwrap()).unwrap();

        let add = Calc::build_packet(3, OP_ADD, 700, 42);
        match pipeline.process(add) {
            Verdict::Forwarded { packet, .. } => {
                assert_eq!(packet.read_be(HEADER_OFFSET + 10, 4), Some(742));
            }
            other => panic!("unexpected {other:?}"),
        }

        let sub = Calc::build_packet(3, OP_SUB, 700, 42);
        match pipeline.process(sub) {
            Verdict::Forwarded { packet, .. } => {
                assert_eq!(packet.read_be(HEADER_OFFSET + 10, 4), Some(658));
            }
            other => panic!("unexpected {other:?}"),
        }

        let drop = Calc::build_packet(3, OP_DROP, 1, 2);
        assert!(matches!(
            pipeline.process(drop),
            Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                ..
            }
        ));

        // Unknown opcodes miss the table and pass through unchanged.
        let unknown = Calc::build_packet(3, 9, 5, 5);
        match pipeline.process(unknown) {
            Verdict::Forwarded { packet, .. } => {
                assert_eq!(packet.read_be(HEADER_OFFSET + 10, 4), Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oracle_accepts_pipeline_output() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Calc.build(3).unwrap()).unwrap();
        for packet in Calc.packets(3, 30, 1) {
            let verdict = pipeline.process(packet.clone());
            assert!(Calc.check_output(&packet, &verdict));
        }
    }
}
