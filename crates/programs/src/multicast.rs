//! Multicast — replicate packets based on their destination IP address
//! (tutorial program, Table 3).
//!
//! The module admits traffic destined to its multicast groups; replication
//! itself is performed by the system-level module (§3.3), which owns the
//! group-to-port mapping — exactly how the paper integrates multicast into
//! the system-level module.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, SystemModule, Verdict};
use menshen_packet::{Ipv4Address, Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The multicast groups the module serves, with their replication port lists.
pub fn groups() -> Vec<(Ipv4Address, Vec<u16>)> {
    vec![
        (Ipv4Address::new(224, 0, 1, 1), vec![1, 2, 3]),
        (Ipv4Address::new(224, 0, 1, 2), vec![4, 5]),
    ]
}

/// DSL source of the Multicast module.
pub const SOURCE: &str = r#"
module multicast {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table group_membership {
        key = { ipv4.dst_addr; }
        actions = { admit; }
        size = 16;
    }
    action admit() {
        set_port(63);
    }
    apply {
        group_membership.apply();
    }
}
"#;

/// The Multicast evaluated program.
pub struct Multicast;

impl Multicast {
    fn build_packet(module_id: u16, dst: Ipv4Address) -> Packet {
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 6, 0, 1],
            dst,
            20_000,
            30_000,
            &[0u8; 24],
        )
    }
}

impl EvaluatedProgram for Multicast {
    fn name(&self) -> &'static str {
        "Multicast"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let dst = FieldRef::new("ipv4", "dst_addr");
        let stage = compiled
            .table("group_membership")
            .expect("declared table")
            .stage;
        let mut config = compiled.config.clone();
        for (group, _) in groups() {
            config.stages[stage].rules.push(compiled.rule(
                "group_membership",
                &[(&dst, u64::from(group.to_u32()))],
                "admit",
            )?);
        }
        Ok(config)
    }

    fn configure_system(&self, system: &mut SystemModule) {
        for (group, ports) in groups() {
            system.add_multicast_group(group, ports);
        }
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = groups();
        (0..count)
            .map(|_| {
                let dst = if rng.gen_bool(0.7) {
                    groups[rng.gen_range(0..groups.len())].0
                } else {
                    Ipv4Address::new(10, 6, 0, rng.gen_range(2..200))
                };
                Self::build_packet(module_id, dst)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let dst = match input.ipv4_dst() {
            Some(dst) => dst,
            None => return false,
        };
        let expected_ports = groups()
            .into_iter()
            .find(|(g, _)| *g == dst)
            .map(|(_, p)| p);
        match verdict {
            Verdict::Forwarded { ports, .. } => match expected_ports {
                Some(expected) => ports == &expected,
                None => ports.len() == 1,
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn group_traffic_is_replicated() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        Multicast.configure_system(pipeline.system_mut());
        pipeline.load_module(&Multicast.build(9).unwrap()).unwrap();

        match pipeline.process(Multicast::build_packet(9, Ipv4Address::new(224, 0, 1, 1))) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![1, 2, 3]),
            other => panic!("unexpected {other:?}"),
        }
        match pipeline.process(Multicast::build_packet(9, Ipv4Address::new(224, 0, 1, 2))) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![4, 5]),
            other => panic!("unexpected {other:?}"),
        }
        // Unicast traffic takes a single port.
        match pipeline.process(Multicast::build_packet(9, Ipv4Address::new(10, 6, 0, 50))) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        Multicast.configure_system(pipeline.system_mut());
        pipeline.load_module(&Multicast.build(9).unwrap()).unwrap();
        for packet in Multicast.packets(9, 40, 17) {
            let verdict = pipeline.process(packet.clone());
            assert!(Multicast.check_output(&packet, &verdict));
        }
    }
}
