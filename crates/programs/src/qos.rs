//! QoS — set quality of service based on traffic type (tutorial program,
//! Table 3).
//!
//! The module classifies traffic by its UDP destination port and steers each
//! class to a different output queue (modelled as switch ports with different
//! priorities): video to the high-priority queue, voice to medium, bulk to
//! low. Unclassified traffic takes the best-effort default path.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// UDP port carrying video traffic.
pub const VIDEO_PORT: u16 = 5001;
/// UDP port carrying voice traffic.
pub const VOICE_PORT: u16 = 5002;
/// UDP port carrying bulk-transfer traffic.
pub const BULK_PORT: u16 = 5003;

/// Output queue (port) for the high-priority class.
pub const HIGH_QUEUE: u16 = 7;
/// Output queue (port) for the medium-priority class.
pub const MEDIUM_QUEUE: u16 = 4;
/// Output queue (port) for the low-priority class.
pub const LOW_QUEUE: u16 = 1;

/// DSL source of the QoS module.
pub const SOURCE: &str = r#"
module qos {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table classify {
        key = { udp.dst_port; }
        actions = { high_priority; medium_priority; low_priority; }
        size = 16;
    }
    action high_priority() { set_port(7); }
    action medium_priority() { set_port(4); }
    action low_priority() { set_port(1); }
    apply {
        classify.apply();
    }
}
"#;

/// The QoS evaluated program.
pub struct Qos;

impl Qos {
    fn build_packet(module_id: u16, dst_port: u16) -> Packet {
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 2, 0, 1],
            [10, 2, 0, 2],
            40000,
            dst_port,
            &[0u8; 64],
        )
    }

    /// The queue a given destination port classifies into, if any.
    pub fn queue_for(dst_port: u16) -> Option<u16> {
        match dst_port {
            VIDEO_PORT => Some(HIGH_QUEUE),
            VOICE_PORT => Some(MEDIUM_QUEUE),
            BULK_PORT => Some(LOW_QUEUE),
            _ => None,
        }
    }
}

impl EvaluatedProgram for Qos {
    fn name(&self) -> &'static str {
        "QoS"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let dst_port = FieldRef::new("udp", "dst_port");
        let stage = compiled.table("classify").expect("declared table").stage;
        let mut config = compiled.config.clone();
        for (port, action) in [
            (VIDEO_PORT, "high_priority"),
            (VOICE_PORT, "medium_priority"),
            (BULK_PORT, "low_priority"),
        ] {
            config.stages[stage].rules.push(compiled.rule(
                "classify",
                &[(&dst_port, u64::from(port))],
                action,
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let dst_port = match rng.gen_range(0..4) {
                    0 => VIDEO_PORT,
                    1 => VOICE_PORT,
                    2 => BULK_PORT,
                    _ => rng.gen_range(6000..7000),
                };
                Self::build_packet(module_id, dst_port)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let dst_port = match input.udp_dst_port() {
            Some(port) => port,
            None => return false,
        };
        match verdict {
            Verdict::Forwarded { ports, .. } => match Self::queue_for(dst_port) {
                Some(queue) => ports == &vec![queue],
                None => ports.len() == 1, // best-effort default path
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn classes_map_to_queues() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Qos.build(5).unwrap()).unwrap();
        for (port, queue) in [
            (VIDEO_PORT, HIGH_QUEUE),
            (VOICE_PORT, MEDIUM_QUEUE),
            (BULK_PORT, LOW_QUEUE),
        ] {
            match pipeline.process(Qos::build_packet(5, port)) {
                Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![queue]),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Unclassified traffic still forwards (default path).
        assert!(pipeline.process(Qos::build_packet(5, 9999)).is_forwarded());
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&Qos.build(5).unwrap()).unwrap();
        for packet in Qos.packets(5, 40, 11) {
            let verdict = pipeline.process(packet.clone());
            assert!(Qos.check_output(&packet, &verdict));
        }
    }
}
