//! NetChain (simplified) — an in-network sequencer (Table 3).
//!
//! The real NetChain [Jin et al., NSDI'18] provides sub-RTT chain-replicated
//! coordination; the evaluated version in the paper is a simplified
//! sequencer. This module stamps every request packet with a strictly
//! increasing sequence number drawn from the module's stateful memory —
//! exercising the read-add-write (`loadd`) stateful ALU path through the
//! segment table.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Byte offset of the sequencer header (start of the UDP payload).
pub const HEADER_OFFSET: usize = 46;
/// Opcode for a "next sequence number" request.
pub const OP_SEQUENCE: u16 = 1;

/// DSL source of the simplified NetChain module.
pub const SOURCE: &str = r#"
module netchain {
    header chain_hdr {
        op : 16;
        seq : 32;
    }
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
        extract chain_hdr;
    }
    state sequencer[4];
    table sequence_requests {
        key = { chain_hdr.op; }
        actions = { assign_sequence; }
        size = 16;
    }
    action assign_sequence() {
        chain_hdr.seq = sequencer.count(0);
        set_port(2);
    }
    apply {
        sequence_requests.apply();
    }
}
"#;

/// The NetChain evaluated program.
#[derive(Default)]
pub struct NetChain {
    next_seq: Mutex<HashMap<u16, u64>>,
}

#[allow(clippy::new_without_default)]
impl NetChain {
    /// Creates a NetChain program with a fresh oracle model.
    pub fn new() -> Self {
        NetChain::default()
    }

    fn build_packet(module_id: u16, op: u16) -> Packet {
        let mut payload = Vec::with_capacity(6);
        payload.extend_from_slice(&op.to_be_bytes());
        payload.extend_from_slice(&0u32.to_be_bytes());
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 5, 0, 1],
            [10, 5, 0, 2],
            60_000,
            9999,
            &payload,
        )
    }
}

impl EvaluatedProgram for NetChain {
    fn name(&self) -> &'static str {
        "NetChain"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let op = FieldRef::new("chain_hdr", "op");
        let stage = compiled
            .table("sequence_requests")
            .expect("declared table")
            .stage;
        let mut config = compiled.config.clone();
        config.stages[stage].rules.push(compiled.rule(
            "sequence_requests",
            &[(&op, u64::from(OP_SEQUENCE))],
            "assign_sequence",
        )?);
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                // Mostly sequencing requests, occasionally an unrelated opcode
                // that must pass through untouched.
                let op = if rng.gen_range(0..10) < 9 {
                    OP_SEQUENCE
                } else {
                    7
                };
                Self::build_packet(module_id, op)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let op = match input.read_be(HEADER_OFFSET, 2) {
            Some(op) => op as u16,
            None => return false,
        };
        let module_id = input.vlan_id().map(|v| v.value()).unwrap_or(0);
        match verdict {
            Verdict::Forwarded { packet, .. } => {
                let seq = packet.read_be(HEADER_OFFSET + 2, 4);
                if op == OP_SEQUENCE {
                    let mut model = self.next_seq.lock().expect("oracle model lock");
                    let counter = model.entry(module_id).or_insert(0);
                    let expected = *counter;
                    *counter += 1;
                    seq == Some(expected)
                } else {
                    seq == Some(0)
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn sequence_numbers_are_strictly_increasing() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let chain = NetChain::new();
        pipeline.load_module(&chain.build(8).unwrap()).unwrap();
        let mut previous = None;
        for _ in 0..10 {
            match pipeline.process(NetChain::build_packet(8, OP_SEQUENCE)) {
                Verdict::Forwarded { packet, ports, .. } => {
                    let seq = packet.read_be(HEADER_OFFSET + 2, 4).unwrap();
                    if let Some(prev) = previous {
                        assert_eq!(seq, prev + 1);
                    } else {
                        assert_eq!(seq, 0);
                    }
                    previous = Some(seq);
                    assert_eq!(ports, vec![2]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Non-sequencing packets are untouched.
        match pipeline.process(NetChain::build_packet(8, 7)) {
            Verdict::Forwarded { packet, .. } => {
                assert_eq!(packet.read_be(HEADER_OFFSET + 2, 4), Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let chain = NetChain::new();
        pipeline.load_module(&chain.build(8).unwrap()).unwrap();
        for packet in chain.packets(8, 50, 8) {
            let verdict = pipeline.process(packet.clone());
            assert!(chain.check_output(&packet, &verdict));
        }
    }
}
