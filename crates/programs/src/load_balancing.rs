//! Load Balancing — steer traffic based on flow header information
//! (tutorial program, Table 3).
//!
//! Flows (identified by their UDP source port) are pinned to one of four
//! backends; the module rewrites the destination UDP port to the backend's
//! service port and steers the packet out of the backend's switch port.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of backends traffic is spread across.
pub const NUM_BACKENDS: u16 = 4;
/// First UDP source port of the pinned flows.
pub const FLOW_PORT_BASE: u16 = 1000;
/// Number of pinned flows. Kept at 8 so the load balancer can share a stage's
/// 16-entry exact-match table with other tenants in the multi-module
/// experiments of §5.1.
pub const NUM_FLOWS: u16 = 8;

/// DSL source of the Load Balancing module.
pub const SOURCE: &str = r#"
module load_balancer {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table flow_steering {
        key = { udp.src_port; }
        actions = { to_backend_1; to_backend_2; to_backend_3; to_backend_4; }
        size = 16;
    }
    action to_backend_1() { udp.dst_port = 8001; set_port(11); }
    action to_backend_2() { udp.dst_port = 8002; set_port(12); }
    action to_backend_3() { udp.dst_port = 8003; set_port(13); }
    action to_backend_4() { udp.dst_port = 8004; set_port(14); }
    apply {
        flow_steering.apply();
    }
}
"#;

/// The backend index (0-based) a flow with `src_port` is pinned to.
pub fn backend_for(src_port: u16) -> u16 {
    (src_port.wrapping_sub(FLOW_PORT_BASE)) % NUM_BACKENDS
}

/// The Load Balancing evaluated program.
pub struct LoadBalancing;

impl LoadBalancing {
    fn build_packet(module_id: u16, src_port: u16) -> Packet {
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 1, 0, 1],
            [10, 1, 0, 100],
            src_port,
            80,
            &[0u8; 32],
        )
    }
}

impl EvaluatedProgram for LoadBalancing {
    fn name(&self) -> &'static str {
        "Load Balancing"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let src_port = FieldRef::new("udp", "src_port");
        let stage = compiled
            .table("flow_steering")
            .expect("declared table")
            .stage;
        let mut config = compiled.config.clone();
        let actions = [
            "to_backend_1",
            "to_backend_2",
            "to_backend_3",
            "to_backend_4",
        ];
        for flow in 0..NUM_FLOWS {
            let port = FLOW_PORT_BASE + flow;
            let action = actions[usize::from(backend_for(port))];
            config.stages[stage].rules.push(compiled.rule(
                "flow_steering",
                &[(&src_port, u64::from(port))],
                action,
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let src_port = FLOW_PORT_BASE + rng.gen_range(0..NUM_FLOWS);
                Self::build_packet(module_id, src_port)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let src_port = match input
            .parse_headers()
            .ok()
            .and_then(|h| h.udp)
            .and_then(|off| input.read_be(off, 2))
        {
            Some(port) => port as u16,
            None => return false,
        };
        let backend = backend_for(src_port);
        match verdict {
            Verdict::Forwarded { packet, ports, .. } => {
                packet.udp_dst_port() == Some(8001 + backend) && ports == &vec![11 + backend]
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn flows_are_pinned_to_backends() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&LoadBalancing.build(4).unwrap())
            .unwrap();
        // The same flow always lands on the same backend.
        for _ in 0..3 {
            let packet = LoadBalancing::build_packet(4, 1002);
            match pipeline.process(packet) {
                Verdict::Forwarded { packet, ports, .. } => {
                    assert_eq!(packet.udp_dst_port(), Some(8003));
                    assert_eq!(ports, vec![13]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Different flows spread across all four backends.
        let mut seen = std::collections::HashSet::new();
        for flow in 0..NUM_FLOWS {
            let packet = LoadBalancing::build_packet(4, FLOW_PORT_BASE + flow);
            if let Verdict::Forwarded { ports, .. } = pipeline.process(packet) {
                seen.insert(ports[0]);
            }
        }
        assert_eq!(seen.len(), usize::from(NUM_BACKENDS));
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&LoadBalancing.build(4).unwrap())
            .unwrap();
        for packet in LoadBalancing.packets(4, 50, 5) {
            let verdict = pipeline.process(packet.clone());
            assert!(LoadBalancing.check_output(&packet, &verdict));
        }
    }
}
