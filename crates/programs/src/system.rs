//! The system-level module (§3.3), as a DSL program.
//!
//! The behavioural form of the system-level module (virtual-IP translation,
//! routing, multicast, device statistics) lives in
//! `menshen_core::SystemModule` and wraps every tenant module at run time.
//! The paper also *compiles* the system-level module like any other program
//! (120 lines of P4-16 whose configuration is placed in the first and last
//! pipeline stages), and Figures 8 and 9 include it in the compilation- and
//! configuration-time sweeps — so this file provides the DSL source and a
//! helper to compile it.

use menshen_compiler::{compile_source, CompileError, CompileOptions, CompiledModule};

/// DSL source of the system-level module: a routing table (physical IP →
/// output port) in its first half and an ARP-style rewrite of the Ethernet
/// destination in its second half.
pub const SOURCE: &str = r#"
// System-level module: basic forwarding and routing services provided to all
// tenant modules (multicast group expansion is handled by the traffic
// manager model).
module system_level {
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
    }
    table ipv4_routes {
        key = { ipv4.dst_addr; }
        actions = { route_port_1; route_port_2; route_port_3; route_port_4; }
        size = 16;
    }
    table arp_rewrite {
        key = { ipv4.dst_addr; }
        actions = { set_next_hop_mac; }
        size = 16;
    }
    action route_port_1() { set_port(1); }
    action route_port_2() { set_port(2); }
    action route_port_3() { set_port(3); }
    action route_port_4() { set_port(4); }
    action set_next_hop_mac() {
        ethernet.dst_addr = 2;
        ethernet.src_addr = 1;
    }
    apply {
        ipv4_routes.apply();
        arp_rewrite.apply();
    }
}
"#;

/// The module ID reserved for the system-level module.
pub const SYSTEM_MODULE_ID: u16 = 0x0fff;

/// Compiles the system-level module.
pub fn compile_system_module() -> Result<CompiledModule, CompileError> {
    compile_source(SOURCE, &CompileOptions::new(SYSTEM_MODULE_ID))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_module_compiles() {
        let compiled = compile_system_module().unwrap();
        assert_eq!(compiled.config.name, "system_level");
        assert_eq!(compiled.tables.len(), 2);
        // The routing table and the ARP rewrite land in consecutive stages.
        assert_eq!(compiled.table("ipv4_routes").unwrap().stage, 0);
        assert_eq!(compiled.table("arp_rewrite").unwrap().stage, 1);
    }

    #[test]
    fn system_module_generates_entries_for_figure8() {
        let compiled = compile_source(
            SOURCE,
            &CompileOptions::new(SYSTEM_MODULE_ID).with_initial_entries(64),
        )
        .unwrap();
        assert_eq!(
            compiled.generated_entries(),
            128,
            "64 entries in each of 2 tables"
        );
    }
}
