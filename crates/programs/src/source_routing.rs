//! Source Routing — route packets based on parsed header information
//! (tutorial program, Table 3).
//!
//! The sender embeds the desired egress port in a small source-routing header
//! carried after UDP; the module matches on that field and steers the packet
//! accordingly.

use crate::EvaluatedProgram;
use menshen_compiler::{compile_source, CompileError, CompileOptions, FieldRef};
use menshen_core::{ModuleConfig, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Byte offset of the source-routing header (start of the UDP payload).
pub const HEADER_OFFSET: usize = 46;
/// Number of egress ports the module knows how to steer to.
pub const NUM_PORTS: u16 = 4;

/// DSL source of the Source Routing module.
pub const SOURCE: &str = r#"
module source_routing {
    header sr_hdr {
        next_hop : 16;
        hops_remaining : 16;
    }
    parser {
        extract ethernet;
        extract vlan;
        extract ipv4;
        extract udp;
        extract sr_hdr;
    }
    table route_by_hop {
        key = { sr_hdr.next_hop; }
        actions = { to_port_1; to_port_2; to_port_3; to_port_4; }
        size = 16;
    }
    action to_port_1() { set_port(1); sr_hdr.hops_remaining = sr_hdr.hops_remaining - 1; }
    action to_port_2() { set_port(2); sr_hdr.hops_remaining = sr_hdr.hops_remaining - 1; }
    action to_port_3() { set_port(3); sr_hdr.hops_remaining = sr_hdr.hops_remaining - 1; }
    action to_port_4() { set_port(4); sr_hdr.hops_remaining = sr_hdr.hops_remaining - 1; }
    apply {
        route_by_hop.apply();
    }
}
"#;

/// The Source Routing evaluated program.
pub struct SourceRouting;

impl SourceRouting {
    fn build_packet(module_id: u16, next_hop: u16, hops_remaining: u16) -> Packet {
        let mut payload = Vec::with_capacity(4);
        payload.extend_from_slice(&next_hop.to_be_bytes());
        payload.extend_from_slice(&hops_remaining.to_be_bytes());
        PacketBuilder::new().with_vlan(module_id).build_udp(
            [10, 3, 0, 1],
            [10, 3, 0, 2],
            7000,
            7001,
            &payload,
        )
    }
}

impl EvaluatedProgram for SourceRouting {
    fn name(&self) -> &'static str {
        "Source Routing"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn build(&self, module_id: u16) -> Result<ModuleConfig, CompileError> {
        let compiled = compile_source(SOURCE, &CompileOptions::new(module_id))?;
        let next_hop = FieldRef::new("sr_hdr", "next_hop");
        let stage = compiled
            .table("route_by_hop")
            .expect("declared table")
            .stage;
        let mut config = compiled.config.clone();
        let actions = ["to_port_1", "to_port_2", "to_port_3", "to_port_4"];
        for hop in 1..=NUM_PORTS {
            config.stages[stage].rules.push(compiled.rule(
                "route_by_hop",
                &[(&next_hop, u64::from(hop))],
                actions[usize::from(hop - 1)],
            )?);
        }
        Ok(config)
    }

    fn packets(&self, module_id: u16, count: usize, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let hop = rng.gen_range(1..=NUM_PORTS);
                let remaining = rng.gen_range(1..8);
                Self::build_packet(module_id, hop, remaining)
            })
            .collect()
    }

    fn check_output(&self, input: &Packet, verdict: &Verdict) -> bool {
        let next_hop = match input.read_be(HEADER_OFFSET, 2) {
            Some(hop) => hop as u16,
            None => return false,
        };
        let remaining = input.read_be(HEADER_OFFSET + 2, 2).unwrap_or(0) as u16;
        match verdict {
            Verdict::Forwarded { packet, ports, .. } => {
                ports == &vec![next_hop]
                    && packet.read_be(HEADER_OFFSET + 2, 2)
                        == Some(u64::from(remaining.wrapping_sub(1)))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_core::MenshenPipeline;
    use menshen_rmt::TABLE5;

    #[test]
    fn packets_follow_their_embedded_route() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&SourceRouting.build(6).unwrap())
            .unwrap();
        for hop in 1..=NUM_PORTS {
            match pipeline.process(SourceRouting::build_packet(6, hop, 5)) {
                Verdict::Forwarded { packet, ports, .. } => {
                    assert_eq!(ports, vec![hop]);
                    assert_eq!(packet.read_be(HEADER_OFFSET + 2, 2), Some(4));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oracle_matches_pipeline() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&SourceRouting.build(6).unwrap())
            .unwrap();
        for packet in SourceRouting.packets(6, 40, 3) {
            let verdict = pipeline.process(packet.clone());
            assert!(SourceRouting.check_output(&packet, &verdict));
        }
    }
}
