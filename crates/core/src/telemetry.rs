//! Latency telemetry: a log-bucketed, HDR-style histogram.
//!
//! The sharded runtime records one of these per shard and merges them on
//! snapshot, and the trace-replay engine records one per run, so the type has
//! three hard requirements:
//!
//! * **fixed memory** — the bucket array never grows, no matter how many
//!   samples are recorded or how large they are (`u64` nanoseconds cover
//!   ~584 years, all representable);
//! * **bounded relative error** — values are bucketed log-linearly with
//!   [`SUB_BUCKET_BITS`] sub-buckets per power of two, so any reported
//!   quantile is within `2^-SUB_BUCKET_BITS` (≈3.1%) of the exact
//!   sample quantile;
//! * **mergeable** — two histograms merge by adding bucket counts, which is
//!   exact (not an approximation), so per-shard recording plus
//!   dispatcher-side merging loses nothing.
//!
//! No `unsafe`, no dependencies; the whole structure is ~15 KiB once the
//! first sample lands (allocation is deferred so empty histograms — e.g. in
//! a defaulted shard snapshot — cost nothing).

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BUCKET_BITS` linear sub-buckets, bounding the relative
/// quantisation error of any recorded value by `2^-SUB_BUCKET_BITS`.
pub const SUB_BUCKET_BITS: u32 = 5;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Values below `SUB_BUCKETS` are recorded exactly (the linear region);
/// octaves `SUB_BUCKET_BITS..=63` each contribute `SUB_BUCKETS` buckets.
const BUCKET_COUNT: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// The quantiles the runtime and benches report by convention.
pub const REPORTED_QUANTILES: [(f64, &str); 4] = [
    (0.50, "p50"),
    (0.90, "p90"),
    (0.99, "p99"),
    (0.999, "p99.9"),
];

/// A log-bucketed latency histogram over `u64` values (nanoseconds by
/// convention). See the module docs for the design constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket counts; allocated lazily on the first `record`.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Index of the bucket `value` falls into.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    // 2^exp <= value < 2^(exp+1), with exp >= SUB_BUCKET_BITS.
    let exp = 63 - value.leading_zeros();
    let sub = (value >> (exp - SUB_BUCKET_BITS)) as usize - SUB_BUCKETS;
    SUB_BUCKETS + (exp - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + sub
}

/// Highest value that maps to bucket `index` (the bucket's reported
/// representative: quantiles never under-report).
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let offset = index - SUB_BUCKETS;
    let exp = SUB_BUCKET_BITS + (offset / SUB_BUCKETS) as u32;
    let sub = (offset % SUB_BUCKETS) as u64;
    let width = 1u64 << (exp - SUB_BUCKET_BITS);
    ((SUB_BUCKETS as u64 + sub) << (exp - SUB_BUCKET_BITS)) + (width - 1)
}

/// Lowest value that maps to bucket `index`.
fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let offset = index - SUB_BUCKETS;
    let exp = SUB_BUCKET_BITS + (offset / SUB_BUCKETS) as u32;
    let sub = (offset % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (exp - SUB_BUCKET_BITS)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_COUNT];
            self.min = u64::MAX;
        }
        self.counts[bucket_index(value)] += count;
        self.total += count;
        self.sum += u128::from(value) * u128::from(count);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self` by adding bucket counts — exact, so
    /// per-shard histograms merged at the dispatcher equal one histogram
    /// recorded centrally.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKET_COUNT];
            self.min = u64::MAX;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns `self − baseline`, where `baseline` must be an earlier
    /// snapshot of the *same* recording stream (every bucket count a prefix
    /// of this histogram's). Bucket counts, total and sum subtract exactly;
    /// `min`/`max` are recovered from the delta's outermost non-empty
    /// buckets, so they are accurate to within one sub-bucket rather than
    /// exact. This is what lets a caller measure one run's latency on a
    /// reused runtime whose histograms are cumulative.
    ///
    /// A baseline that is *not* a prefix — any bucket where it exceeds this
    /// histogram, e.g. a snapshot kept across a runtime reset or taken from
    /// a different stream — is detected and surfaced as
    /// [`BaselineMismatch`] instead of silently under-reporting via
    /// saturating per-bucket subtraction.
    pub fn subtracting(
        &self,
        baseline: &LatencyHistogram,
    ) -> core::result::Result<LatencyHistogram, BaselineMismatch> {
        if baseline.total == 0 {
            return Ok(self.clone());
        }
        if baseline.total > self.total {
            return Err(BaselineMismatch {
                bucket: None,
                current: self.total,
                baseline: baseline.total,
            });
        }
        let mut delta = LatencyHistogram {
            counts: vec![0; BUCKET_COUNT],
            total: self.total - baseline.total,
            sum: self.sum.saturating_sub(baseline.sum),
            min: u64::MAX,
            max: 0,
        };
        let mut first = None;
        let mut last = None;
        for index in 0..BUCKET_COUNT {
            let mine = self.counts.get(index).copied().unwrap_or(0);
            let theirs = baseline.counts.get(index).copied().unwrap_or(0);
            if theirs > mine {
                return Err(BaselineMismatch {
                    bucket: Some(index),
                    current: mine,
                    baseline: theirs,
                });
            }
            let remaining = mine - theirs;
            delta.counts[index] = remaining;
            if remaining > 0 {
                first.get_or_insert(index);
                last = Some(index);
            }
        }
        if let (Some(first), Some(last)) = (first, last) {
            delta.min = bucket_lower_bound(first).max(self.min);
            delta.max = bucket_upper_bound(last).min(self.max);
        } else {
            delta.total = 0;
            delta.sum = 0;
        }
        Ok(delta)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded values (tracked outside the buckets, so
    /// it is not subject to bucket quantisation). Zero when empty.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Cumulative counts at power-of-two upper bounds: `(le, count_le)`
    /// pairs where `le = 2^k − 1` and `count_le` is the number of recorded
    /// values `≤ le`. Octave boundaries coincide with bucket boundaries, so
    /// the counts are exact, and the series is non-decreasing in both
    /// coordinates — exactly the shape a Prometheus histogram exposition
    /// needs. The last pair's bound covers the observed maximum. Empty when
    /// nothing was recorded.
    pub fn cumulative_octaves(&self) -> Vec<(u64, u64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut prefix = vec![0u64; self.counts.len()];
        let mut running = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            running += count;
            prefix[index] = running;
        }
        let mut out = Vec::new();
        for k in 0..=64u32 {
            let boundary = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
            out.push((boundary, prefix[bucket_index(boundary)]));
            if boundary >= self.max {
                break;
            }
        }
        out
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value.
    ///
    /// **Empty sentinel:** returns `0` when nothing was recorded (the
    /// internal `u64::MAX` initializer never leaks). Check
    /// [`is_empty`](Self::is_empty) to distinguish "no samples" from "a
    /// recorded zero".
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, tracked outside the buckets).
    ///
    /// **Empty sentinel:** returns `0.0` when nothing was recorded — the
    /// same convention as [`min`](Self::min), [`max`](Self::max) and
    /// [`quantile`](Self::quantile). Callers that must distinguish "no
    /// samples" from "all samples were zero" check
    /// [`is_empty`](Self::is_empty) (or [`count`](Self::count)) first.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`): the upper bound of the
    /// bucket containing the `ceil(q · count)`-th recorded value, clamped to
    /// the observed maximum. Within one bucket's relative error
    /// (`2^-SUB_BUCKET_BITS`) of the exact sorted-sample quantile.
    ///
    /// **Empty sentinel:** returns `0` when nothing was recorded, for every
    /// `q` — so an empty histogram's [`percentiles`](Self::percentiles) is
    /// `Percentiles::default()`. Check [`is_empty`](Self::is_empty) first
    /// when zero is a meaningful latency in context.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: the conventionally reported percentile set, derived
    /// from [`REPORTED_QUANTILES`] so the struct can never drift from the
    /// workspace-wide reporting convention.
    pub fn percentiles(&self) -> Percentiles {
        let q = [
            self.quantile(REPORTED_QUANTILES[0].0),
            self.quantile(REPORTED_QUANTILES[1].0),
            self.quantile(REPORTED_QUANTILES[2].0),
            self.quantile(REPORTED_QUANTILES[3].0),
        ];
        Percentiles {
            count: self.total,
            min_ns: self.min(),
            mean_ns: self.mean(),
            p50_ns: q[0],
            p90_ns: q[1],
            p99_ns: q[2],
            p999_ns: q[3],
            max_ns: self.max,
        }
    }
}

/// Error from [`LatencyHistogram::subtracting`]: the claimed baseline is not
/// an earlier snapshot of the same recording stream — somewhere it counts
/// more samples than the histogram it is subtracted from. The classic cause
/// is a stale baseline held across a runtime reset (or a resize that
/// replaced shards), where silent saturating subtraction would under-report
/// latency instead of flagging the measurement as invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineMismatch {
    /// The first offending bucket index, or `None` when the totals already
    /// disagree.
    pub bucket: Option<usize>,
    /// The histogram's count at that point.
    pub current: u64,
    /// The baseline's (larger) count at that point.
    pub baseline: u64,
}

impl core::fmt::Display for BaselineMismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.bucket {
            Some(bucket) => write!(
                f,
                "inconsistent latency baseline: bucket {bucket} counts {} in the baseline \
                 but only {} in the histogram (stale or foreign baseline)",
                self.baseline, self.current
            ),
            None => write!(
                f,
                "inconsistent latency baseline: baseline holds {} samples, histogram only {}",
                self.baseline, self.current
            ),
        }
    }
}

impl std::error::Error for BaselineMismatch {}

/// The percentile summary the runtime and benches report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Number of recorded values.
    pub count: u64,
    /// Minimum, nanoseconds.
    pub min_ns: u64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// 50th percentile, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
}

impl Percentiles {
    /// The quantile fields in [`REPORTED_QUANTILES`] order, paired with
    /// their conventional labels: `(q, label, value_ns)`. Exporters iterate
    /// this instead of hard-coding field names, so adding a quantile to the
    /// convention is a one-place change.
    pub fn reported(&self) -> [(f64, &'static str, u64); REPORTED_QUANTILES.len()] {
        let values = [self.p50_ns, self.p90_ns, self.p99_ns, self.p999_ns];
        let mut out = [(0.0, "", 0u64); REPORTED_QUANTILES.len()];
        for (slot, ((q, label), value)) in out
            .iter_mut()
            .zip(REPORTED_QUANTILES.iter().zip(values.iter()))
        {
            *slot = (*q, label, *value);
        }
        out
    }
}

/// A lock-free occupancy gauge with a high-watermark.
///
/// The sharded runtime's hot paths (ring push/pop, dispatcher burst
/// assembly) record instantaneous depths here with relaxed atomics: the
/// gauge is telemetry, not synchronisation, so a reader may observe a value
/// that is a few operations stale — never a torn one. The high-watermark is
/// maintained with `fetch_max`, so it is exact over the gauge's lifetime
/// even under concurrent observers.
#[derive(Debug, Default)]
pub struct Gauge {
    value: core::sync::atomic::AtomicU64,
    high_watermark: core::sync::atomic::AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Records the current level (and folds it into the high-watermark).
    pub fn observe(&self, value: u64) {
        use core::sync::atomic::Ordering::Relaxed;
        self.value.store(value, Relaxed);
        self.high_watermark.fetch_max(value, Relaxed);
    }

    /// The most recently observed level.
    pub fn get(&self) -> u64 {
        self.value.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// The largest level ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
            .load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Increments the level by `delta` (occupancy-style: a push onto a
    /// queue). The post-increment level is folded into the high-watermark
    /// atomically enough for telemetry: under concurrent `add`s each
    /// observer folds in the level *it* produced, so the watermark is at
    /// least the largest level any single observer saw. Returns the new
    /// level.
    pub fn add(&self, delta: u64) -> u64 {
        use core::sync::atomic::Ordering::Relaxed;
        let level = self.value.fetch_add(delta, Relaxed).wrapping_add(delta);
        self.high_watermark.fetch_max(level, Relaxed);
        level
    }

    /// Decrements the level by `delta` (occupancy-style: a pop off a
    /// queue), **saturating at zero**: a `sub` that races ahead of its
    /// matching `add` — or plain double-accounting in the caller — clamps
    /// instead of wrapping to ~2^64, which would poison the watermark
    /// forever. Returns the new level.
    pub fn sub(&self, delta: u64) -> u64 {
        use core::sync::atomic::Ordering::Relaxed;
        let mut current = self.value.load(Relaxed);
        loop {
            let next = current.saturating_sub(delta);
            match self
                .value
                .compare_exchange_weak(current, next, Relaxed, Relaxed)
            {
                Ok(_) => return next,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_level_and_high_watermark() {
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0);
        assert_eq!(gauge.high_watermark(), 0);
        gauge.observe(7);
        gauge.observe(3);
        assert_eq!(gauge.get(), 3, "the gauge reports the latest level");
        assert_eq!(gauge.high_watermark(), 7, "the watermark never regresses");
        gauge.observe(11);
        assert_eq!(gauge.high_watermark(), 11);
    }

    #[test]
    fn gauge_add_sub_track_occupancy_with_underflow_guard() {
        let gauge = Gauge::new();
        assert_eq!(gauge.add(3), 3);
        assert_eq!(gauge.add(4), 7);
        assert_eq!(gauge.sub(2), 5);
        assert_eq!(gauge.get(), 5);
        assert_eq!(gauge.high_watermark(), 7, "watermark saw the peak");
        // Underflow saturates at zero instead of wrapping to ~2^64.
        assert_eq!(gauge.sub(100), 0);
        assert_eq!(gauge.get(), 0);
        assert_eq!(
            gauge.high_watermark(),
            7,
            "a clamped sub never moves the watermark"
        );
    }

    #[test]
    fn gauge_is_consistent_under_concurrent_observers() {
        use std::sync::Arc;

        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let gauge = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let gauge = Arc::clone(&gauge);
                std::thread::spawn(move || {
                    // Balanced add/sub pairs, plus a spurious sub per loop
                    // that may race ahead of any add: the guard must clamp,
                    // never wrap.
                    for _ in 0..OPS {
                        gauge.add(2);
                        gauge.sub(1);
                        gauge.sub(1);
                        gauge.sub(1); // unmatched: exercises saturation
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // Every add was matched by at least one sub and unmatched subs
        // saturate, so the level ends in 0..=adds and never wraps.
        assert!(
            gauge.get() <= THREADS as u64 * OPS * 2,
            "level {} wrapped past the total added",
            gauge.get()
        );
        let watermark = gauge.high_watermark();
        assert!(watermark >= 1, "at least one post-add level was folded in");
        assert!(
            watermark <= THREADS as u64 * OPS * 2,
            "watermark {watermark} exceeds the total ever added"
        );
    }

    #[test]
    fn percentiles_follow_reported_quantiles_convention() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p = h.percentiles();
        // The struct fields must equal quantile() at exactly the
        // REPORTED_QUANTILES points — no drifted hard-coded constants.
        for (q, label, value) in p.reported() {
            assert_eq!(value, h.quantile(q), "{label} (q={q}) drifted");
        }
        let labels: Vec<&str> = p.reported().iter().map(|(_, l, _)| *l).collect();
        assert_eq!(labels, vec!["p50", "p90", "p99", "p99.9"]);
        assert_eq!(p.reported().len(), REPORTED_QUANTILES.len());
    }

    #[test]
    fn empty_histogram_sentinels_are_zero_across_the_api() {
        // The documented empty-sentinel contract: min/max/quantile return 0,
        // mean returns 0.0, and the derived Percentiles is the default.
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0, "u64::MAX initializer must not leak");
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.percentiles(), Percentiles::default());
        for (_, _, value) in h.percentiles().reported() {
            assert_eq!(value, 0);
        }
    }

    #[test]
    fn bucket_round_trip_bounds_error() {
        for value in (0u64..10_000)
            .chain((1..54).map(|e| (1u64 << e) - 1))
            .chain((1..54).map(|e| 1u64 << e))
            .chain((1..54).map(|e| (1u64 << e) + 1))
        {
            let upper = bucket_upper_bound(bucket_index(value));
            assert!(upper >= value, "upper bound {upper} < value {value}");
            let error = upper - value;
            assert!(
                (error as f64) <= (value as f64) / SUB_BUCKETS as f64 + 1.0,
                "value {value}: error {error} exceeds one sub-bucket"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentiles(), Percentiles::default());
    }

    #[test]
    fn merge_equals_central_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut central = LatencyHistogram::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..5_000u64 {
            // SplitMix64 step, inline to keep the crate dependency-free.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let value = (z ^ (z >> 31)) % 10_000_000;
            if i % 2 == 0 {
                a.record(value);
            } else {
                b.record(value);
            }
            central.record(value);
        }
        a.merge(&b);
        assert_eq!(a, central);
        assert_eq!(a.count(), 5_000);
    }

    #[test]
    fn subtracting_a_prefix_recovers_the_suffix() {
        let mut first_run = LatencyHistogram::new();
        let mut cumulative = LatencyHistogram::new();
        let mut suffix_only = LatencyHistogram::new();
        for i in 0..1000u64 {
            let value = (i * 977) % 500_000;
            first_run.record(value);
            cumulative.record(value);
        }
        let baseline = cumulative.clone();
        for i in 0..800u64 {
            let value = 1_000 + (i * 7919) % 90_000;
            cumulative.record(value);
            suffix_only.record(value);
        }
        let delta = cumulative.subtracting(&baseline).unwrap();
        assert_eq!(delta.count(), 800);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(delta.quantile(q), suffix_only.quantile(q), "q {q}");
        }
        assert!((delta.mean() - suffix_only.mean()).abs() < 1e-9);
        // min/max are bucket-accurate.
        assert!(delta.min() <= suffix_only.min());
        assert!(delta.max() >= suffix_only.max());
        // Subtracting everything leaves an empty histogram.
        let empty = cumulative.subtracting(&cumulative).unwrap();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.5), 0);
        // Subtracting an empty baseline is the identity.
        assert_eq!(
            cumulative.subtracting(&LatencyHistogram::new()).unwrap(),
            cumulative
        );
    }

    #[test]
    fn stale_baselines_are_detected_not_under_reported() {
        // A "reset" stream: the stale baseline from before the reset counts
        // samples the fresh histogram never saw. Saturating subtraction used
        // to return a silently wrong (under-counted) delta; now it errors.
        let mut stale_baseline = LatencyHistogram::new();
        for i in 0..500u64 {
            stale_baseline.record(1_000 + i * 13);
        }
        let mut after_reset = LatencyHistogram::new();
        for i in 0..200u64 {
            after_reset.record(2_000 + i * 7);
        }
        let err = after_reset.subtracting(&stale_baseline).unwrap_err();
        assert_eq!(err.current, 200);
        assert_eq!(err.baseline, 500);
        assert!(err.to_string().contains("inconsistent"), "{err}");

        // Equal totals but shifted buckets (a *different* stream of the same
        // length): caught per bucket.
        let mut other_stream = LatencyHistogram::new();
        for i in 0..200u64 {
            other_stream.record(9_000_000 + i);
        }
        let err = after_reset.subtracting(&other_stream).unwrap_err();
        assert!(err.bucket.is_some());
        assert!(err.baseline > err.current);
    }

    /// Property test (seeded-loop style): for random histograms `a`, `b`,
    /// `(a merged b).subtracting(a) == b` bucket-exactly, and subtracting in
    /// the wrong direction errors whenever `a` has a bucket `b` lacks.
    #[test]
    fn subtract_after_merge_round_trips() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 1u64..=8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            for _ in 0..rng.gen_range(1..3000) {
                let octave = rng.gen_range(0u32..40);
                a.record(rng.gen_range(0u64..(1u64 << octave).max(2)));
            }
            for _ in 0..rng.gen_range(1..3000) {
                let octave = rng.gen_range(0u32..40);
                b.record(rng.gen_range(0u64..(1u64 << octave).max(2)));
            }
            let mut merged = a.clone();
            merged.merge(&b);
            let recovered = merged.subtracting(&a).unwrap();
            assert_eq!(recovered.count(), b.count(), "seed {seed}");
            assert_eq!(recovered.counts, b.counts, "seed {seed}: bucket-exact");
            // Quantiles agree to the bucket: counts are identical, and the
            // only permitted difference is the clamp to the observed max,
            // which subtraction recovers bucket-accurately rather than
            // exactly.
            for q in [0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    bucket_index(recovered.quantile(q)),
                    bucket_index(b.quantile(q)),
                    "seed {seed} q {q}"
                );
                assert!(recovered.quantile(q) >= b.quantile(q), "seed {seed} q {q}");
            }
            // min/max recovery is bucket-accurate.
            assert!(recovered.min() <= b.min() && recovered.max() >= b.max());
            // The merged histogram is a superset of both inputs; each input
            // subtracts cleanly from it in either order.
            assert_eq!(merged.subtracting(&b).unwrap().counts, a.counts);
            // But subtracting the *merged* histogram from a part must fail
            // (unless the other part recorded nothing in every bucket, which
            // the generator above makes effectively impossible).
            assert!(a.subtracting(&merged).is_err(), "seed {seed}");
        }
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut recorded = LatencyHistogram::new();
        recorded.record(42);
        let mut empty = LatencyHistogram::new();
        empty.merge(&recorded);
        assert_eq!(empty, recorded);
        recorded.merge(&LatencyHistogram::new());
        assert_eq!(empty, recorded);
    }

    /// Property test (seeded-loop style, like the rest of the workspace):
    /// recorded quantiles stay within one bucket's relative error of the
    /// exact sorted-sample quantile, across uniform, exponential-ish and
    /// heavy-tailed samples.
    #[test]
    fn quantiles_match_exact_within_one_bucket() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 1u64..=6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<u64> = (0..10_000)
                .map(|i| match (seed + i) % 3 {
                    // Uniform microsecond-scale latencies.
                    0 => rng.gen_range(0u64..2_000_000),
                    // Exponential-ish: uniform mantissa at a random octave.
                    1 => {
                        let octave = rng.gen_range(0u32..36);
                        rng.gen_range(0u64..(1u64 << octave).max(2))
                    }
                    // Heavy tail: rare huge values.
                    _ => {
                        if rng.gen_bool(0.01) {
                            rng.gen_range(1_000_000_000u64..100_000_000_000)
                        } else {
                            rng.gen_range(100u64..10_000)
                        }
                    }
                })
                .collect();
            let mut histogram = LatencyHistogram::new();
            for &value in &samples {
                histogram.record(value);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let estimate = histogram.quantile(q);
                assert!(
                    estimate >= exact,
                    "seed {seed} q {q}: estimate {estimate} under-reports exact {exact}"
                );
                let allowed = exact / (SUB_BUCKETS as u64) + 1;
                assert!(
                    estimate - exact <= allowed,
                    "seed {seed} q {q}: estimate {estimate} vs exact {exact} \
                     (allowed error {allowed})"
                );
            }
        }
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
