//! Space partitioning of match-action table entries and stateful memory.
//!
//! Resources that are plentiful enough to be divided at flow granularity —
//! CAM/action-table entries and stateful memory words — are space-partitioned
//! across modules: each module owns a contiguous range of addresses and the
//! allocator guarantees ranges never overlap (§3, Table 1). This module
//! provides the contiguous-range allocator the pipeline uses for both.

use crate::error::CoreError;
use crate::module::ModuleId;
use crate::Result;
use std::collections::BTreeMap;

/// A contiguous range `[start, start + len)` of a partitioned resource owned
/// by one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First unit of the range.
    pub start: usize,
    /// Number of units.
    pub len: usize,
}

impl Allocation {
    /// One past the last unit of the range.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// True if `index` falls inside the range.
    pub fn contains(&self, index: usize) -> bool {
        index >= self.start && index < self.end()
    }

    /// True if the two ranges share any unit.
    pub fn overlaps(&self, other: &Allocation) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Allocates contiguous, non-overlapping ranges of a fixed-capacity resource
/// to modules. Used for per-stage CAM/action-table addresses (contiguity is
/// also what makes ternary priorities per-module updatable, Appendix B) and
/// for per-stage stateful memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeAllocator {
    resource: String,
    capacity: usize,
    allocations: BTreeMap<ModuleId, Allocation>,
}

impl RangeAllocator {
    /// Creates an allocator for `capacity` units of `resource`.
    pub fn new(resource: impl Into<String>, capacity: usize) -> Self {
        RangeAllocator {
            resource: resource.into(),
            capacity,
            allocations: BTreeMap::new(),
        }
    }

    /// Total capacity in units.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently allocated.
    pub fn used(&self) -> usize {
        self.allocations.values().map(|a| a.len).sum()
    }

    /// Units still free (possibly fragmented).
    pub fn free(&self) -> usize {
        self.capacity - self.used()
    }

    /// The allocation of `module`, if any.
    pub fn allocation(&self, module: ModuleId) -> Option<Allocation> {
        self.allocations.get(&module).copied()
    }

    /// Allocates a contiguous range of `len` units for `module`.
    ///
    /// Fails if the module already holds a range or if no contiguous gap of
    /// the requested size exists. A request of zero units succeeds with an
    /// empty range at offset 0.
    pub fn allocate(&mut self, module: ModuleId, len: usize) -> Result<Allocation> {
        if self.allocations.contains_key(&module) {
            return Err(CoreError::ModuleAlreadyLoaded {
                module_id: module.value(),
            });
        }
        if len == 0 {
            let alloc = Allocation { start: 0, len: 0 };
            self.allocations.insert(module, alloc);
            return Ok(alloc);
        }
        let start = self
            .find_gap(len)
            .ok_or_else(|| CoreError::InsufficientResource {
                resource: self.resource.clone(),
                requested: len,
                available: self.free(),
            })?;
        let alloc = Allocation { start, len };
        self.allocations.insert(module, alloc);
        Ok(alloc)
    }

    /// Releases `module`'s range. Returns the released allocation, if any.
    pub fn release(&mut self, module: ModuleId) -> Option<Allocation> {
        self.allocations.remove(&module)
    }

    /// Finds the lowest-addressed gap of at least `len` units (first fit).
    fn find_gap(&self, len: usize) -> Option<usize> {
        let mut ranges: Vec<Allocation> = self
            .allocations
            .values()
            .filter(|a| a.len > 0)
            .copied()
            .collect();
        ranges.sort_by_key(|a| a.start);
        let mut cursor = 0usize;
        for range in &ranges {
            if range.start >= cursor && range.start - cursor >= len {
                return Some(cursor);
            }
            cursor = cursor.max(range.end());
        }
        if self.capacity >= cursor && self.capacity - cursor >= len {
            Some(cursor)
        } else {
            None
        }
    }

    /// All current allocations (module, range), ordered by module ID.
    pub fn allocations(&self) -> impl Iterator<Item = (ModuleId, Allocation)> + '_ {
        self.allocations.iter().map(|(m, a)| (*m, *a))
    }

    /// Checks the global invariant that no two modules' ranges overlap.
    /// Always true by construction; exposed for the property tests.
    pub fn verify_disjoint(&self) -> bool {
        let ranges: Vec<_> = self.allocations.values().filter(|a| a.len > 0).collect();
        for (i, a) in ranges.iter().enumerate() {
            for b in &ranges[i + 1..] {
                if a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_reuse() {
        let mut alloc = RangeAllocator::new("match entries", 16);
        let a = alloc.allocate(ModuleId::new(1), 8).unwrap();
        let b = alloc.allocate(ModuleId::new(2), 8).unwrap();
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 8);
        assert_eq!(alloc.free(), 0);
        assert!(alloc.allocate(ModuleId::new(3), 1).is_err());
        // Releasing module 1 frees its range for a new module.
        assert_eq!(alloc.release(ModuleId::new(1)), Some(a));
        let c = alloc.allocate(ModuleId::new(3), 4).unwrap();
        assert_eq!(c.start, 0);
        assert!(alloc.verify_disjoint());
        assert_eq!(alloc.capacity(), 16);
        assert_eq!(alloc.used(), 12);
    }

    #[test]
    fn double_allocation_rejected() {
        let mut alloc = RangeAllocator::new("stateful", 64);
        alloc.allocate(ModuleId::new(5), 10).unwrap();
        assert!(matches!(
            alloc.allocate(ModuleId::new(5), 10),
            Err(CoreError::ModuleAlreadyLoaded { module_id: 5 })
        ));
    }

    #[test]
    fn zero_length_allocation_is_fine() {
        let mut alloc = RangeAllocator::new("stateful", 4);
        let a = alloc.allocate(ModuleId::new(1), 0).unwrap();
        assert_eq!(a.len, 0);
        assert_eq!(alloc.free(), 4);
        let b = alloc.allocate(ModuleId::new(2), 4).unwrap();
        assert_eq!(b.start, 0);
    }

    #[test]
    fn fragmentation_requires_contiguous_fit() {
        let mut alloc = RangeAllocator::new("cam", 12);
        alloc.allocate(ModuleId::new(1), 4).unwrap(); // [0,4)
        alloc.allocate(ModuleId::new(2), 4).unwrap(); // [4,8)
        alloc.allocate(ModuleId::new(3), 4).unwrap(); // [8,12)
        alloc.release(ModuleId::new(1));
        alloc.release(ModuleId::new(3));
        // 8 units free but only 4 contiguous at either end.
        assert_eq!(alloc.free(), 8);
        assert!(alloc.allocate(ModuleId::new(4), 8).is_err());
        let a = alloc.allocate(ModuleId::new(5), 4).unwrap();
        assert_eq!(a.start, 0);
    }

    #[test]
    fn allocation_helpers() {
        let a = Allocation { start: 4, len: 4 };
        assert_eq!(a.end(), 8);
        assert!(a.contains(4));
        assert!(a.contains(7));
        assert!(!a.contains(8));
        assert!(a.overlaps(&Allocation { start: 7, len: 2 }));
        assert!(!a.overlaps(&Allocation { start: 8, len: 2 }));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Whatever sequence of allocations and releases happens, live ranges
    /// never overlap and never exceed capacity.
    #[test]
    fn allocations_stay_disjoint() {
        let mut rng = StdRng::seed_from_u64(0xa110c);
        for _ in 0..200 {
            let mut alloc = RangeAllocator::new("prop", 64);
            for _ in 0..rng.gen_range(1usize..60) {
                let module = ModuleId::new(rng.gen_range(1u16..40));
                let len = rng.gen_range(0usize..12);
                if rng.gen_bool(0.5) {
                    alloc.release(module);
                } else {
                    let _ = alloc.allocate(module, len);
                }
                assert!(alloc.verify_disjoint());
                assert!(alloc.used() <= alloc.capacity());
            }
        }
    }
}
