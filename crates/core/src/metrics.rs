//! The metrics registry and snapshot: the observability plane's data model.
//!
//! Three layers, each usable on its own:
//!
//! * **Live instruments** — [`Counter`] (lock-free monotonic),
//!   [`Gauge`](crate::telemetry::Gauge) (lock-free level + high-watermark)
//!   and [`LatencyHistogram`] (single-writer, merged on snapshot). A
//!   [`MetricsRegistry`] hands out shared handles keyed by
//!   `(name, labels)` so independent subsystems converge on one series.
//! * **[`MetricsSnapshot`]** — a point-in-time, order-canonical set of
//!   samples. Snapshots **merge** exactly (counters and gauge levels add,
//!   gauge watermarks max, histograms add bucket counts), and merging is
//!   commutative and associative, so per-shard snapshots folded in any
//!   order equal one central recording.
//! * **Exporters** — Prometheus text exposition (`to_prometheus`) and JSON
//!   (`to_json`, via `menshen-json`); both std-only. A strict
//!   line-validator ([`validate_prometheus`]) backs the test suite and the
//!   CI smoke job.
//!
//! Naming convention (see README "Observability"): every series is
//! `menshen_<subsystem>_<what>[_total|_ns]`, labeled by `tenant`, `shard`,
//! `dispatcher` or `stage` as applicable.
//!
//! The per-tenant SLO types live here too: [`VerdictLedger`] attributes
//! every packet to a verdict (forwarded, or one of the five
//! [`DropReason`]s), and [`TenantTelemetry`] pairs a ledger with a sojourn
//! histogram. The runtime threads one per tenant through every shard and
//! folds them on snapshot; the conservation audit cross-checks the ledgers
//! against the ingress count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use menshen_json::Json;

use crate::pipeline::{DropReason, Verdict};
use crate::telemetry::{BaselineMismatch, Gauge, LatencyHistogram};

/// A lock-free monotonically increasing counter.
///
/// The hot paths touch it with relaxed atomics only — it is telemetry, not
/// synchronisation. Cloned handles (via [`Arc`] from the registry) all feed
/// the same series.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Label set type: `(key, value)` pairs, canonically sorted by key.
pub type Labels = Vec<(String, String)>;

/// Builds a canonical (key-sorted) label set from string pairs.
pub fn labels<K: Into<String>, V: Into<String>>(pairs: impl IntoIterator<Item = (K, V)>) -> Labels {
    let mut out: Labels = pairs
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .collect();
    out.sort();
    out
}

/// True for a legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True for a legal Prometheus label key: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_key(key: &str) -> bool {
    let mut chars = key.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double-quote and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// One sampled value: counter total, gauge level + watermark, or a full
/// (mergeable) histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter total. Merges by addition.
    Counter(u64),
    /// Instantaneous level plus lifetime high-watermark. Levels merge by
    /// addition (occupancies across shards sum); watermarks by max.
    Gauge {
        /// The level at snapshot time.
        value: u64,
        /// The largest level ever observed.
        high_watermark: u64,
    },
    /// A full log-bucketed histogram. Merges bucket-exactly.
    Histogram(LatencyHistogram),
}

impl MetricValue {
    /// The Prometheus `# TYPE` keyword for this value.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(mine), MetricValue::Counter(theirs)) => *mine += *theirs,
            (
                MetricValue::Gauge {
                    value,
                    high_watermark,
                },
                MetricValue::Gauge {
                    value: other_value,
                    high_watermark: other_hwm,
                },
            ) => {
                *value += *other_value;
                *high_watermark = (*high_watermark).max(*other_hwm);
            }
            (MetricValue::Histogram(mine), MetricValue::Histogram(theirs)) => mine.merge(theirs),
            (mine, theirs) => panic!(
                "metric type conflict: cannot merge {} into {}",
                theirs.kind(),
                mine.kind()
            ),
        }
    }
}

/// One series at snapshot time: a name, a canonical label set, a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name (Prometheus-legal, by construction).
    pub name: String,
    /// Canonically sorted label pairs.
    pub labels: Labels,
    /// The sampled value.
    pub value: MetricValue,
}

/// A point-in-time set of metric samples, canonically ordered by
/// `(name, labels)`.
///
/// `merge` is exact, commutative and associative (see the merge rules on
/// [`MetricValue`]), so snapshots taken per shard / per dispatcher fold in
/// any order into the same aggregate — the property the runtime's
/// `retired_tally()`-style aggregation depends on and the property tests
/// pin down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no series were sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in canonical `(name, labels)` order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Adds a sample, folding it into an existing series with the same
    /// `(name, labels)` identity (same merge rules as [`Self::merge`]).
    ///
    /// # Panics
    /// On a Prometheus-illegal name or label key, or when the series
    /// already exists with a different metric type.
    pub fn push(&mut self, sample: MetricSample) {
        assert!(
            valid_metric_name(&sample.name),
            "illegal metric name {:?}",
            sample.name
        );
        for (key, _) in &sample.labels {
            assert!(valid_label_key(key), "illegal label key {key:?}");
        }
        let probe = self.samples.binary_search_by(|s| {
            (s.name.as_str(), &s.labels).cmp(&(sample.name.as_str(), &sample.labels))
        });
        match probe {
            Ok(found) => self.samples[found].value.merge(&sample.value),
            Err(insert_at) => self.samples.insert(insert_at, sample),
        }
    }

    /// Convenience: adds a counter sample.
    pub fn push_counter(&mut self, name: &str, labels: Labels, value: u64) {
        self.push(MetricSample {
            name: name.to_owned(),
            labels,
            value: MetricValue::Counter(value),
        });
    }

    /// Convenience: adds a gauge sample.
    pub fn push_gauge(&mut self, name: &str, labels: Labels, value: u64, high_watermark: u64) {
        self.push(MetricSample {
            name: name.to_owned(),
            labels,
            value: MetricValue::Gauge {
                value,
                high_watermark,
            },
        });
    }

    /// Convenience: adds a histogram sample.
    pub fn push_histogram(&mut self, name: &str, labels: Labels, histogram: LatencyHistogram) {
        self.push(MetricSample {
            name: name.to_owned(),
            labels,
            value: MetricValue::Histogram(histogram),
        });
    }

    /// Looks up one series by name and (unsorted is fine) labels.
    pub fn get(&self, name: &str, label_pairs: &[(&str, &str)]) -> Option<&MetricValue> {
        let wanted = labels(label_pairs.iter().map(|&(k, v)| (k, v)));
        self.samples
            .binary_search_by(|s| (s.name.as_str(), &s.labels).cmp(&(name, &wanted)))
            .ok()
            .map(|found| &self.samples[found].value)
    }

    /// Folds `other` into `self`, series by series: counters and gauge
    /// levels add, gauge watermarks max, histograms add bucket counts.
    /// Exact, commutative, associative.
    ///
    /// # Panics
    /// When the two snapshots disagree on a series' metric type.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for sample in &other.samples {
            self.push(sample.clone());
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` comment per metric name, label values
    /// escaped, histograms as cumulative `_bucket{le=…}` series at
    /// power-of-two bounds plus `_sum`/`_count`. Deterministic: samples are
    /// already canonically ordered.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.samples {
            if last_name != Some(sample.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", sample.name, sample.value.kind()));
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(value) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        value
                    ));
                }
                MetricValue::Gauge {
                    value,
                    high_watermark,
                } => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        value
                    ));
                    // The watermark rides along as a `peak` label variant of
                    // the same gauge rather than a second metric name, so the
                    // TYPE grouping stays one-name-one-type.
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some(("peak", "true"))),
                        high_watermark
                    ));
                }
                MetricValue::Histogram(histogram) => {
                    for (bound, count_le) in histogram.cumulative_octaves() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            sample.name,
                            render_labels(&sample.labels, Some(("le", &bound.to_string()))),
                            count_le
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some(("le", "+Inf"))),
                        histogram.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        histogram.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        histogram.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document: an array of series objects
    /// under `"metrics"`. Counters carry `value`; gauges `value` and
    /// `high_watermark`; histograms count/min/mean/max plus the
    /// [`REPORTED_QUANTILES`](crate::telemetry::REPORTED_QUANTILES) set.
    pub fn to_json(&self) -> Json {
        let series: Vec<Json> = self
            .samples
            .iter()
            .map(|sample| {
                let mut obj = Json::obj([
                    ("name", Json::from(sample.name.as_str())),
                    ("type", Json::from(sample.value.kind())),
                    (
                        "labels",
                        Json::obj(
                            sample
                                .labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
                        ),
                    ),
                ]);
                match &sample.value {
                    MetricValue::Counter(value) => obj.set("value", Json::from(*value)),
                    MetricValue::Gauge {
                        value,
                        high_watermark,
                    } => {
                        obj.set("value", Json::from(*value));
                        obj.set("high_watermark", Json::from(*high_watermark));
                    }
                    MetricValue::Histogram(histogram) => {
                        let p = histogram.percentiles();
                        obj.set("count", Json::from(p.count));
                        obj.set("min_ns", Json::from(p.min_ns));
                        obj.set("mean_ns", Json::from(p.mean_ns));
                        for (_, label, value) in p.reported() {
                            obj.set(label, Json::from(value));
                        }
                        obj.set("max_ns", Json::from(p.max_ns));
                    }
                }
                obj
            })
            .collect();
        Json::obj([("metrics", Json::Arr(series))])
    }
}

/// Renders `{k="v",…}` with optional one extra pair, or the empty string
/// when there are no labels at all.
fn render_labels(label_set: &Labels, extra: Option<(&str, &str)>) -> String {
    if label_set.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = label_set
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Strictly validates a Prometheus text exposition: every line is a
/// well-formed comment or sample, label values are correctly escaped, every
/// metric name has exactly one `# TYPE`, and no `(name, labels)` series
/// appears twice. Returns the number of sample lines.
///
/// This is the checker the unit tests, the CI observability smoke and the
/// bench assertions share — intentionally stricter than a scraper needs to
/// be.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (line_no, line) in text.lines().enumerate() {
        let describe = |msg: &str| format!("line {}: {msg}: {line:?}", line_no + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match words.next() {
                Some("TYPE") => {
                    let name = words.next().ok_or_else(|| describe("TYPE without name"))?;
                    let kind = words.next().ok_or_else(|| describe("TYPE without kind"))?;
                    if !valid_metric_name(name) {
                        return Err(describe("illegal metric name in TYPE"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(describe("unknown TYPE kind"));
                    }
                    if typed.insert(name.to_owned(), kind.to_owned()).is_some() {
                        return Err(describe("duplicate TYPE for metric"));
                    }
                }
                Some("HELP") => {}
                _ => return Err(describe("unknown comment (only # TYPE / # HELP)")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| describe("sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(describe("illegal metric name"));
        }
        let rest = &line[name_end..];
        let (label_text, value_text) = if let Some(body) = rest.strip_prefix('{') {
            let close = find_label_close(body).ok_or_else(|| describe("unterminated labels"))?;
            (&body[..close], body[close + 1..].trim_start())
        } else {
            ("", rest.trim_start())
        };
        let parsed = parse_label_pairs(label_text).map_err(|e| describe(&e))?;
        if value_text.is_empty() {
            return Err(describe("missing value"));
        }
        if value_text != "+Inf"
            && value_text != "-Inf"
            && value_text != "NaN"
            && value_text.parse::<f64>().is_err()
        {
            return Err(describe("unparseable value"));
        }
        let series_key = format!("{name}|{parsed:?}");
        if seen_series.contains(&series_key) {
            return Err(describe("duplicate series"));
        }
        seen_series.push(series_key);
        samples += 1;
    }
    Ok(samples)
}

/// Index of the unescaped closing `}` in a label body.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (index, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(index),
            _ => {}
        }
    }
    None
}

/// Parses `k="v",k2="v2"` (escapes honoured) into sorted pairs.
fn parse_label_pairs(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !valid_label_key(key) {
            return Err(format!("illegal label key {key:?}"));
        }
        let after = &rest[eq + 1..];
        let body = after.strip_prefix('"').ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (index, c) in body.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape \\{other}")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(index);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        pairs.push((key.to_owned(), value));
        rest = &body[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err("junk after label value".to_owned());
        }
    }
    pairs.sort();
    Ok(pairs)
}

/// A registered histogram handle: interior-mutable so many owners can
/// record into one series. Locked per record — meant for control-plane and
/// moderate-rate series; the packet hot path keeps its single-writer
/// shard-local histograms and merges on snapshot instead.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    inner: Arc<Mutex<LatencyHistogram>>,
}

impl HistogramHandle {
    /// Records one value.
    pub fn record(&self, value: u64) {
        self.inner.lock().expect("histogram poisoned").record(value);
    }

    /// A copy of the current histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.inner.lock().expect("histogram poisoned").clone()
    }
}

/// The live-instrument registry: get-or-create shared handles keyed by
/// `(name, labels)`, snapshot them all at once.
///
/// Registration takes a lock; the returned [`Arc`] handles are lock-free
/// ([`Counter`], [`Gauge`]) or per-record locked ([`HistogramHandle`]), so
/// the intended pattern is *register once at setup, hold the handle on the
/// hot path*.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<(String, Labels), Arc<Counter>>>,
    gauges: Mutex<BTreeMap<(String, Labels), Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<(String, Labels), HistogramHandle>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter for `(name, labels)`.
    ///
    /// # Panics
    /// On a Prometheus-illegal name or label key.
    pub fn counter(&self, name: &str, label_set: Labels) -> Arc<Counter> {
        assert!(valid_metric_name(name), "illegal metric name {name:?}");
        assert!(label_set.iter().all(|(k, _)| valid_label_key(k)));
        Arc::clone(
            self.counters
                .lock()
                .expect("registry poisoned")
                .entry((name.to_owned(), label_set))
                .or_default(),
        )
    }

    /// Gets or creates the gauge for `(name, labels)`.
    ///
    /// # Panics
    /// On a Prometheus-illegal name or label key.
    pub fn gauge(&self, name: &str, label_set: Labels) -> Arc<Gauge> {
        assert!(valid_metric_name(name), "illegal metric name {name:?}");
        assert!(label_set.iter().all(|(k, _)| valid_label_key(k)));
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry poisoned")
                .entry((name.to_owned(), label_set))
                .or_default(),
        )
    }

    /// Gets or creates the histogram for `(name, labels)`.
    ///
    /// # Panics
    /// On a Prometheus-illegal name or label key.
    pub fn histogram(&self, name: &str, label_set: Labels) -> HistogramHandle {
        assert!(valid_metric_name(name), "illegal metric name {name:?}");
        assert!(label_set.iter().all(|(k, _)| valid_label_key(k)));
        self.histograms
            .lock()
            .expect("registry poisoned")
            .entry((name.to_owned(), label_set))
            .or_default()
            .clone()
    }

    /// Samples every registered instrument into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for ((name, label_set), counter) in self.counters.lock().expect("registry poisoned").iter()
        {
            out.push_counter(name, label_set.clone(), counter.get());
        }
        for ((name, label_set), gauge) in self.gauges.lock().expect("registry poisoned").iter() {
            out.push_gauge(name, label_set.clone(), gauge.get(), gauge.high_watermark());
        }
        for ((name, label_set), histogram) in
            self.histograms.lock().expect("registry poisoned").iter()
        {
            out.push_histogram(name, label_set.clone(), histogram.snapshot());
        }
        out
    }
}

/// Attributes every packet a tenant offered to exactly one outcome:
/// forwarded, one of the five [`DropReason`]s, or a backpressure shed. The
/// conservation audit cross-checks `total()` against the runtime's ingress
/// count — a packet the ledger never saw is a packet the runtime lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictLedger {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Dropped: no VLAN tag, so no module ID.
    pub dropped_no_vlan: u64,
    /// Dropped: VLAN maps to no loaded module.
    pub dropped_unknown_module: u64,
    /// Dropped: the module was being reconfigured.
    pub dropped_reconfiguring: u64,
    /// Dropped: the module's program executed `discard`.
    pub dropped_module_discard: u64,
    /// Dropped: reconfiguration traffic on the untrusted path.
    pub dropped_untrusted_reconfig: u64,
    /// Shed before processing: this tenant's submission could not be queued
    /// within the bounded wait (its shard's ring stayed full), so the packet
    /// was dropped at ingress instead of head-of-line-blocking other
    /// tenants. The overloaded tenant pays for its own overload.
    pub dropped_backpressure: u64,
}

impl VerdictLedger {
    /// Attributes one verdict.
    pub fn record(&mut self, verdict: &Verdict) {
        match verdict {
            Verdict::Forwarded { .. } => self.forwarded += 1,
            Verdict::Dropped { reason, .. } => self.record_drop(*reason),
        }
    }

    /// Attributes one drop by reason.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::NoVlan => self.dropped_no_vlan += 1,
            DropReason::UnknownModule => self.dropped_unknown_module += 1,
            DropReason::BeingReconfigured => self.dropped_reconfiguring += 1,
            DropReason::ModuleDiscard => self.dropped_module_discard += 1,
            DropReason::UntrustedReconfiguration => self.dropped_untrusted_reconfig += 1,
        }
    }

    /// Attributes `count` packets shed at submission because the tenant's
    /// ring stayed full past the bounded wait.
    pub fn record_backpressure(&mut self, count: u64) {
        self.dropped_backpressure += count;
    }

    /// Total drops, all reasons (backpressure sheds included).
    pub fn dropped(&self) -> u64 {
        self.dropped_no_vlan
            + self.dropped_unknown_module
            + self.dropped_reconfiguring
            + self.dropped_module_discard
            + self.dropped_untrusted_reconfig
            + self.dropped_backpressure
    }

    /// Every packet the ledger attributed (forwarded + dropped).
    pub fn total(&self) -> u64 {
        self.forwarded + self.dropped()
    }

    /// Folds another ledger in (exact).
    pub fn add(&mut self, other: &VerdictLedger) {
        self.forwarded += other.forwarded;
        self.dropped_no_vlan += other.dropped_no_vlan;
        self.dropped_unknown_module += other.dropped_unknown_module;
        self.dropped_reconfiguring += other.dropped_reconfiguring;
        self.dropped_module_discard += other.dropped_module_discard;
        self.dropped_untrusted_reconfig += other.dropped_untrusted_reconfig;
        self.dropped_backpressure += other.dropped_backpressure;
    }

    /// `self − baseline`, or `None` when `baseline` is not an earlier
    /// snapshot of this ledger (some field would go negative).
    pub fn subtracting(&self, baseline: &VerdictLedger) -> Option<VerdictLedger> {
        let sub = |a: u64, b: u64| a.checked_sub(b);
        Some(VerdictLedger {
            forwarded: sub(self.forwarded, baseline.forwarded)?,
            dropped_no_vlan: sub(self.dropped_no_vlan, baseline.dropped_no_vlan)?,
            dropped_unknown_module: sub(
                self.dropped_unknown_module,
                baseline.dropped_unknown_module,
            )?,
            dropped_reconfiguring: sub(self.dropped_reconfiguring, baseline.dropped_reconfiguring)?,
            dropped_module_discard: sub(
                self.dropped_module_discard,
                baseline.dropped_module_discard,
            )?,
            dropped_untrusted_reconfig: sub(
                self.dropped_untrusted_reconfig,
                baseline.dropped_untrusted_reconfig,
            )?,
            dropped_backpressure: sub(self.dropped_backpressure, baseline.dropped_backpressure)?,
        })
    }

    /// The drop counts paired with their metric label values, in a fixed
    /// order — what the exporters iterate.
    pub fn drop_reasons(&self) -> [(&'static str, u64); 6] {
        [
            ("no_vlan", self.dropped_no_vlan),
            ("unknown_module", self.dropped_unknown_module),
            ("reconfiguring", self.dropped_reconfiguring),
            ("module_discard", self.dropped_module_discard),
            ("untrusted_reconfig", self.dropped_untrusted_reconfig),
            ("backpressure", self.dropped_backpressure),
        ]
    }
}

/// One tenant's SLO view: a sojourn histogram (ingress-to-verdict
/// nanoseconds, forwarded *and* dropped packets both count — a tenant's
/// experience includes its drops) plus the verdict ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantTelemetry {
    /// Ingress-to-verdict sojourn per packet.
    pub sojourn_ns: LatencyHistogram,
    /// Where every packet went.
    pub ledger: VerdictLedger,
}

impl TenantTelemetry {
    /// Records one packet's outcome and sojourn.
    pub fn record(&mut self, verdict: &Verdict, sojourn_ns: u64) {
        self.ledger.record(verdict);
        self.sojourn_ns.record(sojourn_ns);
    }

    /// Folds another tenant view in (exact — bucket addition plus ledger
    /// addition), so per-shard views merge into the tenant's global view.
    pub fn merge(&mut self, other: &TenantTelemetry) {
        self.ledger.add(&other.ledger);
        self.sojourn_ns.merge(&other.sojourn_ns);
    }

    /// `self − baseline` for measuring one run on a reused runtime; errors
    /// when the baseline is not a prefix of this stream.
    pub fn subtracting(
        &self,
        baseline: &TenantTelemetry,
    ) -> Result<TenantTelemetry, BaselineMismatch> {
        let ledger = self
            .ledger
            .subtracting(&baseline.ledger)
            .ok_or(BaselineMismatch {
                bucket: None,
                current: self.ledger.total(),
                baseline: baseline.ledger.total(),
            })?;
        Ok(TenantTelemetry {
            sojourn_ns: self.sojourn_ns.subtracting(&baseline.sojourn_ns)?,
            ledger,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(seed: u64) -> MetricsSnapshot {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut snap = MetricsSnapshot::new();
        for tenant in 0..rng.gen_range(1..5u32) {
            snap.push_counter(
                "menshen_tenant_forwarded_total",
                labels([("tenant", tenant.to_string())]),
                rng.gen_range(0..1_000_000),
            );
        }
        for shard in 0..rng.gen_range(1..4u32) {
            let value = rng.gen_range(0u64..64);
            snap.push_gauge(
                "menshen_ring_occupancy",
                labels([("shard", shard.to_string())]),
                value,
                value + rng.gen_range(0u64..64),
            );
            let mut h = LatencyHistogram::new();
            for _ in 0..rng.gen_range(1..500) {
                h.record(rng.gen_range(50..5_000_000));
            }
            snap.push_histogram(
                "menshen_shard_sojourn_ns",
                labels([("shard", shard.to_string())]),
                h,
            );
        }
        snap
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        for seed in 1u64..=6 {
            let a = sample_snapshot(seed);
            let b = sample_snapshot(seed + 100);
            let c = sample_snapshot(seed + 200);

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "seed {seed}: commutativity");

            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "seed {seed}: associativity");

            // Identity: merging an empty snapshot changes nothing.
            let mut with_empty = a.clone();
            with_empty.merge(&MetricsSnapshot::new());
            assert_eq!(with_empty, a, "seed {seed}: identity");
        }
    }

    #[test]
    fn merge_sums_counters_and_levels_maxes_watermarks() {
        let mut a = MetricsSnapshot::new();
        a.push_counter("pkts_total", labels([("tenant", "1")]), 10);
        a.push_gauge("depth", labels([("shard", "0")]), 3, 9);
        let mut b = MetricsSnapshot::new();
        b.push_counter("pkts_total", labels([("tenant", "1")]), 32);
        b.push_counter("pkts_total", labels([("tenant", "2")]), 7);
        b.push_gauge("depth", labels([("shard", "0")]), 4, 5);
        a.merge(&b);
        assert_eq!(
            a.get("pkts_total", &[("tenant", "1")]),
            Some(&MetricValue::Counter(42))
        );
        assert_eq!(
            a.get("pkts_total", &[("tenant", "2")]),
            Some(&MetricValue::Counter(7))
        );
        assert_eq!(
            a.get("depth", &[("shard", "0")]),
            Some(&MetricValue::Gauge {
                value: 7,
                high_watermark: 9
            })
        );
        assert_eq!(a.get("depth", &[("shard", "1")]), None);
    }

    #[test]
    #[should_panic(expected = "metric type conflict")]
    fn merging_mismatched_types_panics() {
        let mut a = MetricsSnapshot::new();
        a.push_counter("x", Vec::new(), 1);
        a.push_gauge("x", Vec::new(), 1, 1);
    }

    #[test]
    fn prometheus_output_validates_line_by_line() {
        for seed in 1u64..=4 {
            let snap = sample_snapshot(seed);
            let text = snap.to_prometheus();
            let samples = validate_prometheus(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: invalid exposition: {e}\n{text}"));
            assert!(samples >= snap.len(), "every series appears at least once");
        }
    }

    #[test]
    fn prometheus_escapes_label_values_and_forbids_duplicates() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("odd_labels_total", labels([("path", "a\\b\"c\nd")]), 1);
        let text = snap.to_prometheus();
        assert!(
            text.contains(r#"path="a\\b\"c\nd""#),
            "escaped exposition, got: {text}"
        );
        assert_eq!(validate_prometheus(&text), Ok(1));

        // The validator really rejects duplicate series…
        let dup = "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n";
        assert!(validate_prometheus(dup)
            .unwrap_err()
            .contains("duplicate series"));
        // …and duplicate TYPE lines.
        let dup_type = "# TYPE x counter\n# TYPE x counter\n";
        assert!(validate_prometheus(dup_type)
            .unwrap_err()
            .contains("duplicate TYPE"));
        // …and garbage.
        assert!(validate_prometheus("x{a=1} 5\n").is_err());
        assert!(validate_prometheus("x nope\n").is_err());
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_complete() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 100, 100, 5_000, 1_000_000] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::new();
        snap.push_histogram("sojourn_ns", labels([("tenant", "1")]), h.clone());
        let text = snap.to_prometheus();
        assert!(validate_prometheus(&text).is_ok(), "{text}");
        assert!(text.contains("# TYPE sojourn_ns histogram"));
        assert!(text.contains(r#"sojourn_ns_bucket{tenant="1",le="+Inf"} 5"#));
        assert!(text.contains(r#"sojourn_ns_count{tenant="1"} 5"#));
        assert!(text.contains(&format!(
            "sojourn_ns_sum{{tenant=\"1\"}} {}",
            3 + 100 + 100 + 5_000 + 1_000_000
        )));
        // Bucket counts are cumulative and end at the total.
        let octaves = h.cumulative_octaves();
        assert!(octaves
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(octaves.last().unwrap().1, 5);
        assert!(octaves.last().unwrap().0 >= 1_000_000);
    }

    #[test]
    fn json_export_parses_and_reports_quantile_convention() {
        let snap = sample_snapshot(3);
        let text = snap.to_json().pretty();
        let parsed = Json::parse(&text).expect("self-produced JSON parses");
        let metrics = match parsed.get("metrics") {
            Some(Json::Arr(items)) => items,
            other => panic!("metrics array missing: {other:?}"),
        };
        assert_eq!(metrics.len(), snap.len());
        for metric in metrics {
            assert!(metric.get("name").is_some());
            if let Some(Json::Str(kind)) = metric.get("type") {
                if kind == "histogram" {
                    for (_, label) in crate::telemetry::REPORTED_QUANTILES {
                        assert!(metric.get(label).is_some(), "missing {label}");
                    }
                }
            }
        }
    }

    #[test]
    fn registry_hands_out_shared_handles_and_snapshots() {
        let registry = MetricsRegistry::new();
        let c1 = registry.counter("pkts_total", labels([("tenant", "1")]));
        let c2 = registry.counter("pkts_total", labels([("tenant", "1")]));
        c1.add(5);
        c2.inc();
        let gauge = registry.gauge("depth", labels([("shard", "0")]));
        gauge.add(4);
        gauge.sub(1);
        let hist = registry.histogram("lat_ns", Vec::new());
        hist.record(100);
        hist.record(300);

        let snap = registry.snapshot();
        assert_eq!(
            snap.get("pkts_total", &[("tenant", "1")]),
            Some(&MetricValue::Counter(6)),
            "both handles fed one series"
        );
        assert_eq!(
            snap.get("depth", &[("shard", "0")]),
            Some(&MetricValue::Gauge {
                value: 3,
                high_watermark: 4
            })
        );
        match snap.get("lat_ns", &[]) {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("histogram missing: {other:?}"),
        }
        assert!(validate_prometheus(&snap.to_prometheus()).is_ok());
    }

    #[test]
    fn ledger_attributes_every_reason_and_subtracts() {
        let mut ledger = VerdictLedger::default();
        ledger.record(&Verdict::Dropped {
            reason: DropReason::NoVlan,
            module_id: None,
        });
        ledger.record_drop(DropReason::ModuleDiscard);
        ledger.record_drop(DropReason::UnknownModule);
        ledger.record_drop(DropReason::BeingReconfigured);
        ledger.record_drop(DropReason::UntrustedReconfiguration);
        ledger.record_backpressure(1);
        assert_eq!(ledger.dropped(), 6);
        assert_eq!(ledger.forwarded, 0);
        assert_eq!(ledger.total(), 6);
        let reasons = ledger.drop_reasons();
        assert_eq!(reasons.iter().map(|(_, n)| n).sum::<u64>(), 6);
        assert!(reasons.iter().all(|(_, n)| *n == 1));

        let baseline = ledger;
        let mut later = ledger;
        later.record_drop(DropReason::ModuleDiscard);
        let delta = later.subtracting(&baseline).unwrap();
        assert_eq!(delta.dropped_module_discard, 1);
        assert_eq!(delta.total(), 1);
        assert_eq!(
            baseline.subtracting(&later),
            None,
            "negative delta detected"
        );
    }

    #[test]
    fn tenant_telemetry_merges_like_central_recording() {
        let mut shard_a = TenantTelemetry::default();
        let mut shard_b = TenantTelemetry::default();
        let mut central = TenantTelemetry::default();
        for i in 0..1000u64 {
            let verdict = if i % 10 == 0 {
                Verdict::Dropped {
                    reason: DropReason::ModuleDiscard,
                    module_id: Some(7),
                }
            } else {
                Verdict::Dropped {
                    reason: DropReason::NoVlan,
                    module_id: None,
                }
            };
            let sojourn = 100 + (i * 37) % 50_000;
            if i % 2 == 0 {
                shard_a.record(&verdict, sojourn);
            } else {
                shard_b.record(&verdict, sojourn);
            }
            central.record(&verdict, sojourn);
        }
        let mut merged = shard_a.clone();
        merged.merge(&shard_b);
        assert_eq!(merged, central);
        assert_eq!(merged.ledger.total(), 1000);
        assert_eq!(merged.sojourn_ns.count(), 1000);

        // Baseline subtraction recovers the other shard's view: ledger
        // exactly, histogram bucket-exactly.
        let delta = central.subtracting(&shard_a).unwrap();
        assert_eq!(delta.ledger, shard_b.ledger);
        assert_eq!(delta.sojourn_ns.count(), shard_b.sojourn_ns.count());
        for q in [0.5, 0.99] {
            assert_eq!(delta.sojourn_ns.quantile(q), shard_b.sojourn_ns.quantile(q));
        }
    }
}
