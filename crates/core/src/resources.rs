//! The resource checker and resource-sharing policies (§3.4).
//!
//! Menshen checks allocations statically: a module is only admitted if its
//! compiled resource usage fits within the allocation the operator's sharing
//! policy grants it. Reassigning resources between running modules would
//! disrupt both, so admission control is the enforcement point.

use crate::error::CoreError;
use crate::module::{ModuleConfig, ResourceAllocation};
use crate::Result;
use menshen_rmt::params::PipelineParams;

/// Operator-specified policies for dividing the pipeline between modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Divide every resource evenly between `max_modules` modules.
    EqualShare {
        /// The number of modules the pipeline is provisioned for.
        max_modules: usize,
    },
    /// Grant each module exactly what it asks for, first come first served,
    /// until the pipeline is exhausted.
    FirstComeFirstServed,
}

/// The resource checker: turns a policy into per-module allocations and
/// verifies compiled modules against them.
#[derive(Debug, Clone)]
pub struct ResourceChecker {
    params: PipelineParams,
    policy: SharingPolicy,
}

impl ResourceChecker {
    /// Creates a checker for a pipeline with `params` under `policy`.
    pub fn new(params: PipelineParams, policy: SharingPolicy) -> Self {
        ResourceChecker { params, policy }
    }

    /// The allocation the policy grants a module that declares `usage`.
    pub fn grant(&self, usage: &ResourceAllocation) -> ResourceAllocation {
        match self.policy {
            SharingPolicy::EqualShare { max_modules } => {
                let share = |total: usize| (total / max_modules.max(1)).max(1);
                ResourceAllocation {
                    match_entries_per_stage: vec![
                        share(self.params.cam_depth);
                        self.params.num_stages
                    ],
                    stateful_words_per_stage: vec![
                        share(self.params.stateful_words);
                        self.params.num_stages
                    ],
                    phv_containers: menshen_rmt::params::PARSE_ACTIONS_PER_ENTRY,
                }
            }
            SharingPolicy::FirstComeFirstServed => usage.clone(),
        }
    }

    /// Checks that a compiled module fits within `allocation`. Returns the
    /// first violated resource as an error.
    pub fn check(&self, config: &ModuleConfig, allocation: &ResourceAllocation) -> Result<()> {
        let usage = config.usage();
        if usage.phv_containers > allocation.phv_containers {
            return Err(CoreError::AllocationExceeded {
                resource: "PHV containers (parser actions)".into(),
                used: usage.phv_containers,
                allocated: allocation.phv_containers,
            });
        }
        for (stage, used) in usage.match_entries_per_stage.iter().enumerate() {
            let allocated = allocation
                .match_entries_per_stage
                .get(stage)
                .copied()
                .unwrap_or(0);
            if *used > allocated {
                return Err(CoreError::AllocationExceeded {
                    resource: format!("match entries, stage {stage}"),
                    used: *used,
                    allocated,
                });
            }
        }
        for (stage, used) in usage.stateful_words_per_stage.iter().enumerate() {
            let allocated = allocation
                .stateful_words_per_stage
                .get(stage)
                .copied()
                .unwrap_or(0);
            if *used > allocated {
                return Err(CoreError::AllocationExceeded {
                    resource: format!("stateful memory, stage {stage}"),
                    used: *used,
                    allocated,
                });
            }
        }
        if config.stages.len() > self.params.num_stages {
            return Err(CoreError::AllocationExceeded {
                resource: "pipeline stages".into(),
                used: config.stages.len(),
                allocated: self.params.num_stages,
            });
        }
        Ok(())
    }

    /// The pipeline parameters this checker was built for.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// The active sharing policy.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{MatchRule, ModuleId};
    use menshen_rmt::action::VliwAction;
    use menshen_rmt::match_table::LookupKey;
    use menshen_rmt::TABLE5;

    fn config_with_rules(rules_in_stage_0: usize) -> ModuleConfig {
        let mut config = ModuleConfig::empty(ModuleId::new(1), "m", 5);
        for _ in 0..rules_in_stage_0 {
            config.stages[0].rules.push(MatchRule {
                key: LookupKey::default(),
                action: VliwAction::nop(),
            });
        }
        config
    }

    #[test]
    fn equal_share_divides_cam_entries() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::EqualShare { max_modules: 8 });
        let grant = checker.grant(&ResourceAllocation::uniform(5, 0, 0));
        assert_eq!(grant.match_entries_per_stage, vec![2; 5]);
        assert_eq!(grant.stateful_words_per_stage, vec![512; 5]);
        assert_eq!(
            checker.policy(),
            SharingPolicy::EqualShare { max_modules: 8 }
        );
    }

    #[test]
    fn over_allocation_is_rejected() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::EqualShare { max_modules: 8 });
        let allocation = ResourceAllocation::uniform(5, 2, 64);
        assert!(checker.check(&config_with_rules(2), &allocation).is_ok());
        let err = checker
            .check(&config_with_rules(3), &allocation)
            .unwrap_err();
        assert!(matches!(err, CoreError::AllocationExceeded { .. }));
        assert!(err.to_string().contains("stage 0"));
    }

    #[test]
    fn fcfs_grants_exactly_the_request() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        let config = config_with_rules(5);
        let grant = checker.grant(&config.usage());
        assert!(checker.check(&config, &grant).is_ok());
        assert_eq!(grant.match_entries_per_stage[0], 5);
    }

    #[test]
    fn too_many_parser_actions_rejected() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        let config = config_with_rules(0);
        let mut allocation = config.usage();
        allocation.phv_containers = 0;
        // Give the module a parser action so its usage exceeds the zero grant.
        let mut config = config;
        config.parser =
            menshen_rmt::config::ParserEntry::new(vec![menshen_rmt::config::ParseAction::new(
                0,
                menshen_rmt::phv::ContainerRef::h2(0),
            )
            .unwrap()])
            .unwrap();
        assert!(checker.check(&config, &allocation).is_err());
        assert_eq!(checker.params().num_stages, 5);
    }

    #[test]
    fn too_many_stages_rejected() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        let config = ModuleConfig::empty(ModuleId::new(2), "deep", 9);
        let err = checker.check(&config, &config.usage()).unwrap_err();
        assert!(err.to_string().contains("stages"));
    }

    #[test]
    fn stateful_over_use_rejected() {
        let checker = ResourceChecker::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        let mut config = ModuleConfig::empty(ModuleId::new(3), "stateful", 5);
        config.stages[2].stateful_words = 128;
        let mut allocation = config.usage();
        allocation.stateful_words_per_stage[2] = 64;
        let err = checker.check(&config, &allocation).unwrap_err();
        assert!(err.to_string().contains("stateful"));
    }
}
