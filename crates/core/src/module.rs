//! Module identities, per-module resource requests and compiled configurations.
//!
//! A *module* is one isolated packet-processing program (one tenant's P4
//! program in the paper's terminology). Modules are identified on the wire by
//! the packet's VLAN ID (12 bits) and inside the pipeline by the same value.

use crate::digest::DigestSpec;
use menshen_rmt::action::{AluOp, VliwAction};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParserEntry};
use menshen_rmt::match_table::{LookupKey, MatchKind};

/// A module identifier: the 12-bit VLAN ID carried by the module's packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u16);

impl ModuleId {
    /// Maximum representable module ID (12 bits).
    pub const MAX: u16 = 0x0fff;

    /// Creates a module ID, truncating to 12 bits.
    pub const fn new(id: u16) -> Self {
        ModuleId(id & Self::MAX)
    }

    /// The numeric value.
    pub const fn value(&self) -> u16 {
        self.0
    }
}

impl From<u16> for ModuleId {
    fn from(v: u16) -> Self {
        ModuleId::new(v)
    }
}

impl core::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "module {}", self.0)
    }
}

/// The amount of each partitioned resource a module is granted (per stage
/// where applicable). The resource checker compares a compiled module's usage
/// against this allocation before admission (§3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceAllocation {
    /// Match-action entries the module may occupy in each stage.
    pub match_entries_per_stage: Vec<usize>,
    /// Words of stateful memory the module may occupy in each stage.
    pub stateful_words_per_stage: Vec<usize>,
    /// Maximum number of PHV containers the module's parser may fill.
    pub phv_containers: usize,
}

impl ResourceAllocation {
    /// A uniform allocation: the same number of match entries and stateful
    /// words in each of `stages` stages.
    pub fn uniform(stages: usize, match_entries: usize, stateful_words: usize) -> Self {
        ResourceAllocation {
            match_entries_per_stage: vec![match_entries; stages],
            stateful_words_per_stage: vec![stateful_words; stages],
            phv_containers: 10,
        }
    }

    /// Total number of match entries across all stages.
    pub fn total_match_entries(&self) -> usize {
        self.match_entries_per_stage.iter().sum()
    }

    /// Total stateful words across all stages.
    pub fn total_stateful_words(&self) -> usize {
        self.stateful_words_per_stage.iter().sum()
    }
}

/// One match-action rule of a compiled module: a masked key and the VLIW
/// action to run on a hit. The module ID is appended by the pipeline when the
/// rule is installed, so a module cannot spoof another's rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchRule {
    /// The (already masked) lookup key.
    pub key: LookupKey,
    /// The VLIW action executed on a hit.
    pub action: VliwAction,
}

/// One longest-prefix-match rule of a compiled module. The action index is
/// *module-local*: it names an entry of the stage's
/// [`StageModuleConfig::table_actions`] list and is rebased onto the module's
/// partitioned action range when installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpmMatchRule {
    /// The prefix value (high bits significant, low bits ignored).
    pub prefix: u32,
    /// The prefix length in bits (0..=32).
    pub prefix_len: u8,
    /// Module-local action index into `table_actions`.
    pub action: u16,
}

/// One range (ternary interval) rule of a compiled module; action index is
/// module-local like [`LpmMatchRule::action`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeMatchRule {
    /// Inclusive lower bound of the matched field value.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Rule priority: higher wins; ties go to the earlier install.
    pub priority: u16,
    /// Module-local action index into `table_actions`.
    pub action: u16,
}

/// One rule for a flat (LPM or range) match table — the unit of incremental
/// rule install on the control path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRule {
    /// A longest-prefix-match rule.
    Lpm(LpmMatchRule),
    /// A range (ternary interval) rule.
    Range(RangeMatchRule),
}

/// Per-stage portion of a compiled module configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageModuleConfig {
    /// Key-extractor entry for this module in this stage, if the module has a
    /// table in this stage.
    pub key_extract: Option<KeyExtractEntry>,
    /// Key mask for this module in this stage.
    pub key_mask: Option<KeyMask>,
    /// How this stage's table matches: exact (CAM), LPM or range. LPM/range
    /// stages put their rules in `lpm_rules`/`range_rules` and their actions
    /// in `table_actions`; exact stages use `rules`.
    pub match_kind: MatchKind,
    /// Match-action rules to install in this stage (exact match kind).
    pub rules: Vec<MatchRule>,
    /// Shared VLIW actions for the LPM/range match kinds, installed into the
    /// module's partitioned action-table range; rules reference them by index.
    pub table_actions: Vec<VliwAction>,
    /// Longest-prefix-match rules (LPM match kind).
    pub lpm_rules: Vec<LpmMatchRule>,
    /// Range rules (range match kind).
    pub range_rules: Vec<RangeMatchRule>,
    /// Maximum rules the stage's LPM/range table may hold; 0 means the
    /// default ([`menshen_rmt::params::MATCH_TABLE_CAPACITY`]).
    pub table_capacity: usize,
    /// Words of stateful memory this module needs in this stage.
    pub stateful_words: usize,
}

impl StageModuleConfig {
    /// True if the module does nothing in this stage.
    pub fn is_empty(&self) -> bool {
        self.key_extract.is_none()
            && self.rules.is_empty()
            && self.table_actions.is_empty()
            && self.lpm_rules.is_empty()
            && self.range_rules.is_empty()
            && self.stateful_words == 0
    }
}

/// A fully compiled module: everything the software interface needs to load
/// it onto the pipeline. Produced by the Menshen compiler backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleConfig {
    /// The module's identity (VLAN ID).
    pub module_id: ModuleId,
    /// Human-readable name (for logs and statistics).
    pub name: String,
    /// Parser-table entry.
    pub parser: ParserEntry,
    /// Deparser-table entry.
    pub deparser: ParserEntry,
    /// Per-stage configuration, indexed by stage.
    pub stages: Vec<StageModuleConfig>,
    /// Operator pin hint: force tenant-affine pinning even when the module
    /// would qualify for state-compute replication (e.g. to keep digest
    /// overhead off the wire for a tenant known to fit one shard).
    pub pinned: bool,
}

impl ModuleConfig {
    /// Creates an empty configuration for `module_id` spanning `num_stages`.
    pub fn empty(module_id: ModuleId, name: impl Into<String>, num_stages: usize) -> Self {
        ModuleConfig {
            module_id,
            name: name.into(),
            parser: ParserEntry::default(),
            deparser: ParserEntry::default(),
            stages: vec![StageModuleConfig::default(); num_stages],
            pinned: false,
        }
    }

    /// Sets the pin hint (builder style). See [`ModuleConfig::pinned`].
    pub fn with_pinned(mut self, pinned: bool) -> Self {
        self.pinned = pinned;
        self
    }

    /// Total number of match-action rules across all stages, all match kinds.
    pub fn total_rules(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.rules.len() + s.lpm_rules.len() + s.range_rules.len())
            .sum()
    }

    /// Total stateful words requested across all stages.
    pub fn total_stateful_words(&self) -> usize {
        self.stages.iter().map(|s| s.stateful_words).sum()
    }

    /// The resource usage of this configuration, for admission control.
    pub fn usage(&self) -> ResourceAllocation {
        ResourceAllocation {
            // LPM/range rules live in their own per-module flat tables; what
            // they consume from the *partitioned* stage resources is one
            // action-table entry per shared action.
            match_entries_per_stage: self
                .stages
                .iter()
                .map(|s| s.rules.len() + s.table_actions.len())
                .collect(),
            stateful_words_per_stage: self.stages.iter().map(|s| s.stateful_words).collect(),
            phv_containers: self.parser.actions.len(),
        }
    }

    /// Classifies this module's stateful memory for replication across shard
    /// replicas, by walking every ALU of every compiled VLIW action — the
    /// same walk the compiler's static checker performs over register
    /// statements in the source, applied to the compiled form the runtime
    /// actually receives.
    ///
    /// Under 5-tuple RSS steering one tenant's flows spread over all shards
    /// and each shard updates its *own copy* of the module's stateful words
    /// (State-Compute Replication). That is semantics-preserving only when
    /// every update is additive, so per-shard copies merge exactly by
    /// summation: `loadd` (read-add-write) qualifies; `store` (overwrite
    /// with a packet-derived value) does not — the merged value of
    /// last-writer-wins state is undefined.
    pub fn state_mergeability(&self) -> StateMergeability {
        let mut touches_state = false;
        for (stage, config) in self.stages.iter().enumerate() {
            let actions = config
                .rules
                .iter()
                .map(|r| &r.action)
                .chain(config.table_actions.iter());
            for (rule_index, action) in actions.enumerate() {
                if action_overwrites_state(action) {
                    return StateMergeability::NonMergeable {
                        stage,
                        detail: format!(
                            "rule {rule_index} executes `store` (overwrites a \
                             stateful word); only additive state merges across \
                             shard replicas"
                        ),
                    };
                }
                touches_state |= action_touches_state(action);
            }
        }
        if touches_state {
            StateMergeability::Mergeable
        } else {
            StateMergeability::Stateless
        }
    }

    /// The per-module state-digest recipe, or `None` when the parser extracts
    /// more fields than a digest can carry. Derived entirely from the parser
    /// entry because every input the module's matching and ALUs can observe
    /// arrives through a parser-filled PHV container.
    pub fn digest_spec(&self) -> Option<DigestSpec> {
        DigestSpec::from_parser(self.module_id.value(), &self.parser)
    }

    /// Chooses how this module executes across shard replicas — the load-time
    /// refinement of [`ModuleConfig::state_mergeability`]:
    ///
    /// * mergeable (or stateless) state splits per shard and merges by
    ///   summation, so the module runs everywhere with no extra machinery;
    /// * non-mergeable state is *replicated*: every shard keeps a full copy
    ///   and the dispatcher broadcasts per-packet [`DigestSpec`] digests so
    ///   all copies advance identically (State-Compute Replication);
    /// * pinning — the old single-shard regime — remains for modules that
    ///   opt out via [`ModuleConfig::pinned`] or whose parsers are too wide
    ///   to digest.
    pub fn execution_mode(&self) -> ExecutionMode {
        match self.state_mergeability() {
            StateMergeability::Stateless | StateMergeability::Mergeable => ExecutionMode::Mergeable,
            StateMergeability::NonMergeable { .. } => {
                if self.pinned || self.digest_spec().is_none() {
                    ExecutionMode::Pinned
                } else {
                    ExecutionMode::Replicated
                }
            }
        }
    }
}

/// True if any ALU of `action` overwrites stateful memory (`store`) — the
/// operation that makes per-shard state replication non-mergeable.
pub fn action_overwrites_state(action: &VliwAction) -> bool {
    action
        .iter_active()
        .any(|(_, instruction)| instruction.op == AluOp::Store)
}

/// True if any ALU of `action` touches stateful memory at all.
pub fn action_touches_state(action: &VliwAction) -> bool {
    action
        .iter_active()
        .any(|(_, instruction)| instruction.op.is_stateful())
}

/// Whether a compiled module's stateful memory can be replicated per shard
/// and merged back by summation. See [`ModuleConfig::state_mergeability`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMergeability {
    /// The module never touches stateful memory; replication is trivially
    /// safe.
    Stateless,
    /// Every stateful update is additive (`loadd`); per-shard copies merge
    /// exactly by summation.
    Mergeable,
    /// At least one action overwrites stateful memory; replicated copies
    /// cannot be merged into a well-defined value.
    NonMergeable {
        /// The stage holding the offending rule.
        stage: usize,
        /// Which rule and why.
        detail: String,
    },
}

/// How a module's state executes across shard replicas under 5-tuple
/// steering — the three-way refinement of [`StateMergeability`] chosen at
/// load time. See [`ModuleConfig::execution_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// State is absent or additive: shards keep independent partial copies
    /// that merge exactly by summation.
    Mergeable,
    /// Non-mergeable state owned by exactly one shard; all of the tenant's
    /// traffic is steered there and resizes migrate the single copy.
    Pinned,
    /// Non-mergeable state replicated on every shard, kept bit-identical by
    /// replaying dispatcher-broadcast packet digests (State-Compute
    /// Replication); any replica's snapshot is authoritative.
    Replicated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_id_truncates_to_12_bits() {
        assert_eq!(ModuleId::new(0x1fff).value(), 0x0fff);
        assert_eq!(ModuleId::from(5u16).value(), 5);
        assert_eq!(ModuleId::new(7).to_string(), "module 7");
    }

    #[test]
    fn allocation_totals() {
        let alloc = ResourceAllocation::uniform(5, 4, 128);
        assert_eq!(alloc.total_match_entries(), 20);
        assert_eq!(alloc.total_stateful_words(), 640);
        assert_eq!(alloc.match_entries_per_stage.len(), 5);
    }

    #[test]
    fn empty_config_reports_zero_usage() {
        let config = ModuleConfig::empty(ModuleId::new(3), "calc", 5);
        assert_eq!(config.total_rules(), 0);
        assert_eq!(config.total_stateful_words(), 0);
        assert!(config.stages.iter().all(|s| s.is_empty()));
        let usage = config.usage();
        assert_eq!(usage.total_match_entries(), 0);
        assert_eq!(usage.phv_containers, 0);
    }

    #[test]
    fn state_mergeability_classification() {
        use menshen_rmt::action::AluInstruction;
        use menshen_rmt::phv::ContainerRef as C;

        let mut config = ModuleConfig::empty(ModuleId::new(1), "m", 3);
        assert_eq!(config.state_mergeability(), StateMergeability::Stateless);

        // Pure header rewrites stay stateless.
        config.stages[0].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop().with(C::h2(0), AluInstruction::set(80)),
        });
        assert_eq!(config.state_mergeability(), StateMergeability::Stateless);

        // Additive counters (`loadd`) are mergeable.
        config.stages[0].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop().with(C::h4(7), AluInstruction::loadd(0)),
        });
        assert_eq!(config.state_mergeability(), StateMergeability::Mergeable);

        // One `store` anywhere makes the whole module non-mergeable.
        config.stages[2].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop().with(C::h4(3), AluInstruction::store(C::h4(1), 4)),
        });
        match config.state_mergeability() {
            StateMergeability::NonMergeable { stage, detail } => {
                assert_eq!(stage, 2);
                assert!(detail.contains("store"), "{detail}");
            }
            other => panic!("expected NonMergeable, got {other:?}"),
        }
    }

    #[test]
    fn execution_mode_refines_mergeability() {
        use menshen_rmt::action::AluInstruction;
        use menshen_rmt::config::ParseAction;
        use menshen_rmt::phv::ContainerRef as C;

        let mut config = ModuleConfig::empty(ModuleId::new(1), "m", 3);
        assert_eq!(config.execution_mode(), ExecutionMode::Mergeable);

        config.stages[0].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop().with(C::h4(7), AluInstruction::loadd(0)),
        });
        assert_eq!(config.execution_mode(), ExecutionMode::Mergeable);

        // A store makes the module non-mergeable; with a digestible parser it
        // replicates instead of pinning.
        config.stages[0].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop().with(C::h4(3), AluInstruction::store(C::h4(1), 4)),
        });
        assert_eq!(config.execution_mode(), ExecutionMode::Replicated);

        // The operator pin hint forces the old single-shard regime.
        assert_eq!(
            config.clone().with_pinned(true).execution_mode(),
            ExecutionMode::Pinned
        );

        // A parser too wide to digest also falls back to pinning.
        config.parser = ParserEntry::new(
            (0..9)
                .map(|i| ParseAction::new(14 + 2 * i, C::h2(i % 8)).unwrap())
                .collect(),
        )
        .unwrap();
        assert!(config.digest_spec().is_none());
        assert_eq!(config.execution_mode(), ExecutionMode::Pinned);
    }

    #[test]
    fn usage_reflects_rules_and_state() {
        let mut config = ModuleConfig::empty(ModuleId::new(1), "m", 3);
        config.stages[1].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop(),
        });
        config.stages[2].stateful_words = 64;
        let usage = config.usage();
        assert_eq!(usage.match_entries_per_stage, vec![0, 1, 0]);
        assert_eq!(usage.stateful_words_per_stage, vec![0, 0, 64]);
        assert!(!config.stages[1].is_empty());
    }
}
