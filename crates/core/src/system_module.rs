//! The system-level module (§3.3).
//!
//! Menshen reserves the first and last pipeline stages for a system-level
//! module that provides OS-like services to tenant modules: it hides the
//! physical infrastructure behind per-tenant virtual IP addresses, performs
//! routing (physical IP → output port) and multicast, and exposes real-time
//! statistics (link utilisation, queue length) that tenant modules may read
//! but not modify.
//!
//! The P4/DSL source of the system-level module lives in `menshen-programs`;
//! this type is the *behavioural* form the pipeline invokes on every packet —
//! the first half before tenant processing, the second half after it.

use menshen_packet::Ipv4Address;
use menshen_rmt::phv::Phv;
use std::collections::HashMap;

/// Statistics the system-level module maintains and exposes to tenants
/// (read-only from their perspective; the static checker rejects programs
/// that write them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SystemStats {
    /// Packets observed on the ingress link.
    pub link_packets: u64,
    /// Bytes observed on the ingress link.
    pub link_bytes: u64,
    /// Current (simulated) output-queue occupancy in packets.
    pub queue_len: u32,
    /// Link utilisation over the last accounting window, 0.0–1.0.
    pub link_utilization: f64,
}

/// The system-level module: virtual-IP translation, routing, multicast and
/// device statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemModule {
    /// Per-tenant virtual IP → physical IP translation. Keyed by
    /// `(module_id, virtual_ip)` so tenants' virtual address spaces are
    /// independent of each other.
    vip_to_pip: HashMap<(u16, u32), u32>,
    /// Physical IP → output port routing table (device-wide).
    routes: HashMap<u32, u16>,
    /// Multicast groups: destination IP → replication port list.
    multicast: HashMap<u32, Vec<u16>>,
    /// Default output port when no route matches.
    default_port: u16,
    stats: SystemStats,
}

/// Where the system-level module decided the packet should go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardingDecision {
    /// Send out of one port.
    Unicast(u16),
    /// Replicate to several ports.
    Multicast(Vec<u16>),
}

impl SystemModule {
    /// Creates a system-level module with an empty routing state.
    pub fn new() -> Self {
        SystemModule::default()
    }

    /// Sets the port used when no route matches.
    pub fn set_default_port(&mut self, port: u16) {
        self.default_port = port;
    }

    /// Installs a virtual-IP → physical-IP mapping for one tenant module.
    pub fn add_virtual_ip(
        &mut self,
        module_id: u16,
        virtual_ip: Ipv4Address,
        physical_ip: Ipv4Address,
    ) {
        self.vip_to_pip
            .insert((module_id, virtual_ip.to_u32()), physical_ip.to_u32());
    }

    /// Installs a route: packets destined to `physical_ip` leave through `port`.
    pub fn add_route(&mut self, physical_ip: Ipv4Address, port: u16) {
        self.routes.insert(physical_ip.to_u32(), port);
    }

    /// Installs a multicast group for `group_ip`.
    pub fn add_multicast_group(&mut self, group_ip: Ipv4Address, ports: Vec<u16>) {
        self.multicast.insert(group_ip.to_u32(), ports);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Zeroes the device statistics while keeping the routing configuration
    /// (virtual IPs, routes, multicast groups, default port). Used when
    /// snapshotting a pipeline into a fresh replica for a new worker shard.
    pub fn reset_stats(&mut self) {
        self.stats = SystemStats::default();
    }

    /// First half: runs before tenant processing. Updates link statistics and
    /// stamps the read-only statistics into the PHV metadata so tenant
    /// programs can react to them (e.g. congestion-aware logic).
    pub fn ingress(&mut self, phv: &mut Phv, packet_len: usize, now_cycle: u64) {
        self.stats.link_packets += 1;
        self.stats.link_bytes += packet_len as u64;
        // A trivial queue model: occupancy follows the low bits of arrival
        // order; good enough to exercise the "tenants can read queue length"
        // path without a full traffic-manager model.
        self.stats.queue_len = (self.stats.link_packets % 32) as u32;
        phv.metadata.queue_len = self.stats.queue_len;
        phv.metadata.enqueue_cycle = (now_cycle & 0xffff_ffff) as u32;
    }

    /// Records the link utilisation for the last accounting window (called by
    /// the testbed, which knows wall-clock rates).
    pub fn record_utilization(&mut self, utilization: f64) {
        self.stats.link_utilization = utilization.clamp(0.0, 1.0);
    }

    /// Second half: runs after tenant processing. Translates the destination
    /// (virtual) IP if the tenant uses virtual addressing, then chooses the
    /// output port(s). Tenant modules that already set an explicit egress
    /// port (metadata `dst_port != 0`) are respected.
    pub fn egress(&self, module_id: u16, dst_ip: Ipv4Address, phv: &Phv) -> ForwardingDecision {
        if let Some(ports) = self.multicast.get(&dst_ip.to_u32()) {
            return ForwardingDecision::Multicast(ports.clone());
        }
        if phv.metadata.dst_port != 0 {
            return ForwardingDecision::Unicast(phv.metadata.dst_port);
        }
        let physical = self
            .vip_to_pip
            .get(&(module_id, dst_ip.to_u32()))
            .copied()
            .unwrap_or_else(|| dst_ip.to_u32());
        let port = self
            .routes
            .get(&physical)
            .copied()
            .unwrap_or(self.default_port);
        ForwardingDecision::Unicast(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_and_default_port() {
        let mut sys = SystemModule::new();
        sys.set_default_port(63);
        sys.add_route(Ipv4Address::new(10, 0, 0, 2), 4);
        let phv = Phv::zeroed();
        assert_eq!(
            sys.egress(1, Ipv4Address::new(10, 0, 0, 2), &phv),
            ForwardingDecision::Unicast(4)
        );
        assert_eq!(
            sys.egress(1, Ipv4Address::new(10, 9, 9, 9), &phv),
            ForwardingDecision::Unicast(63)
        );
    }

    #[test]
    fn virtual_ips_are_per_module() {
        let mut sys = SystemModule::new();
        sys.add_route(Ipv4Address::new(172, 16, 0, 1), 1);
        sys.add_route(Ipv4Address::new(172, 16, 0, 2), 2);
        // The same virtual IP maps to different physical hosts per tenant.
        sys.add_virtual_ip(
            10,
            Ipv4Address::new(192, 168, 0, 5),
            Ipv4Address::new(172, 16, 0, 1),
        );
        sys.add_virtual_ip(
            11,
            Ipv4Address::new(192, 168, 0, 5),
            Ipv4Address::new(172, 16, 0, 2),
        );
        let phv = Phv::zeroed();
        assert_eq!(
            sys.egress(10, Ipv4Address::new(192, 168, 0, 5), &phv),
            ForwardingDecision::Unicast(1)
        );
        assert_eq!(
            sys.egress(11, Ipv4Address::new(192, 168, 0, 5), &phv),
            ForwardingDecision::Unicast(2)
        );
    }

    #[test]
    fn multicast_groups_replicate() {
        let mut sys = SystemModule::new();
        sys.add_multicast_group(Ipv4Address::new(224, 0, 1, 1), vec![1, 2, 5]);
        let phv = Phv::zeroed();
        assert_eq!(
            sys.egress(3, Ipv4Address::new(224, 0, 1, 1), &phv),
            ForwardingDecision::Multicast(vec![1, 2, 5])
        );
    }

    #[test]
    fn tenant_chosen_port_is_respected() {
        let mut sys = SystemModule::new();
        sys.add_route(Ipv4Address::new(10, 0, 0, 2), 4);
        let mut phv = Phv::zeroed();
        phv.metadata.dst_port = 9;
        assert_eq!(
            sys.egress(1, Ipv4Address::new(10, 0, 0, 2), &phv),
            ForwardingDecision::Unicast(9)
        );
    }

    #[test]
    fn ingress_updates_statistics() {
        let mut sys = SystemModule::new();
        let mut phv = Phv::zeroed();
        sys.ingress(&mut phv, 1500, 1000);
        sys.ingress(&mut phv, 64, 2000);
        let stats = sys.stats();
        assert_eq!(stats.link_packets, 2);
        assert_eq!(stats.link_bytes, 1564);
        assert_eq!(phv.metadata.enqueue_cycle, 2000);
        sys.record_utilization(1.7);
        assert_eq!(sys.stats().link_utilization, 1.0);
    }
}
