//! Reconfiguration packets and the daisy-chain configuration path.
//!
//! The pipeline is reconfigured exclusively through *reconfiguration packets*
//! travelling on a daisy chain that is physically separate from the data path
//! (§3.1, Appendix A). A reconfiguration packet is a UDP datagram with
//! destination port `0xf1f2` whose payload names a hardware resource (which
//! table, in which stage), an entry index, and the new entry bits (Figure 7).
//!
//! This module defines the structured form of those commands
//! ([`ReconfigCommand`]), their wire encoding to/from [`Packet`]s, and the
//! bookkeeping used by the configuration-time model (each command = one
//! packet = one daisy-chain write).

use crate::error::CoreError;
use crate::module::{LpmMatchRule, RangeMatchRule};
use crate::segment_table::SegmentEntry;
use crate::Result;
use menshen_packet::{Packet, PacketBuilder, RECONFIG_UDP_DPORT};
use menshen_rmt::action::VliwAction;
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParserEntry};
use menshen_rmt::match_table::LookupKey;
use menshen_rmt::params::KEY_BYTES;

/// Which programmable resource a reconfiguration command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The parser table (stage field ignored).
    Parser,
    /// The deparser table (stage field ignored).
    Deparser,
    /// A stage's key-extractor table.
    KeyExtractor,
    /// A stage's key-mask table.
    KeyMask,
    /// A stage's exact-match (CAM) table.
    MatchTable,
    /// A stage's VLIW action table.
    ActionTable,
    /// A stage's segment table.
    SegmentTable,
    /// A module slot's longest-prefix-match table (the index field addresses
    /// the module *slot*; the rule itself rides in the payload, since a
    /// million-entry table cannot be addressed by the 16-bit index).
    LpmTable,
    /// A module slot's range (ternary interval) table; addressed like
    /// [`ResourceKind::LpmTable`].
    RangeTable,
}

impl ResourceKind {
    /// 4-bit encoding used inside the 12-bit resource ID.
    pub const fn code(self) -> u8 {
        match self {
            ResourceKind::Parser => 1,
            ResourceKind::Deparser => 2,
            ResourceKind::KeyExtractor => 3,
            ResourceKind::KeyMask => 4,
            ResourceKind::MatchTable => 5,
            ResourceKind::ActionTable => 6,
            ResourceKind::SegmentTable => 7,
            ResourceKind::LpmTable => 8,
            ResourceKind::RangeTable => 9,
        }
    }

    /// Decodes the 4-bit resource code.
    pub fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            1 => ResourceKind::Parser,
            2 => ResourceKind::Deparser,
            3 => ResourceKind::KeyExtractor,
            4 => ResourceKind::KeyMask,
            5 => ResourceKind::MatchTable,
            6 => ResourceKind::ActionTable,
            7 => ResourceKind::SegmentTable,
            8 => ResourceKind::LpmTable,
            9 => ResourceKind::RangeTable,
            _ => return Err(CoreError::BadReconfigPacket("unknown resource kind")),
        })
    }
}

/// The new entry carried by a reconfiguration command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WritePayload {
    /// A parser-table entry.
    Parser(ParserEntry),
    /// A deparser-table entry.
    Deparser(ParserEntry),
    /// A key-extractor entry.
    KeyExtract(KeyExtractEntry),
    /// A key-mask entry.
    KeyMask(KeyMask),
    /// A CAM entry: the stored key and the owning module ID.
    MatchEntry {
        /// The stored (masked) key.
        key: LookupKey,
        /// The module that owns this entry.
        module_id: u16,
    },
    /// A VLIW action-table entry.
    Action(VliwAction),
    /// A segment-table entry.
    Segment(SegmentEntry),
    /// One LPM rule for the addressed module slot's LPM table.
    LpmRule(LpmMatchRule),
    /// One range rule for the addressed module slot's range table.
    RangeRule(RangeMatchRule),
    /// Clears the addressed entry (used when unloading a module).
    Clear,
}

impl WritePayload {
    /// The resource kind this payload is written to.
    pub fn kind(&self) -> Option<ResourceKind> {
        Some(match self {
            WritePayload::Parser(_) => ResourceKind::Parser,
            WritePayload::Deparser(_) => ResourceKind::Deparser,
            WritePayload::KeyExtract(_) => ResourceKind::KeyExtractor,
            WritePayload::KeyMask(_) => ResourceKind::KeyMask,
            WritePayload::MatchEntry { .. } => ResourceKind::MatchTable,
            WritePayload::Action(_) => ResourceKind::ActionTable,
            WritePayload::Segment(_) => ResourceKind::SegmentTable,
            WritePayload::LpmRule(_) => ResourceKind::LpmTable,
            WritePayload::RangeRule(_) => ResourceKind::RangeTable,
            WritePayload::Clear => return None,
        })
    }
}

/// One reconfiguration command: write `payload` into `kind`'s table of stage
/// `stage` at entry `index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigCommand {
    /// Target resource.
    pub kind: ResourceKind,
    /// Target stage (0-based; ignored for the parser and deparser).
    pub stage: u8,
    /// Entry index within the table: the module slot for overlay tables, the
    /// CAM/action address for partitioned tables. 16 bits, so partitioned
    /// tables deeper than 256 entries are addressable.
    pub index: u16,
    /// Whether this command clears the entry rather than writing it.
    pub clear: bool,
    /// The entry to write (ignored when `clear` is set).
    pub payload: WritePayload,
}

impl ReconfigCommand {
    /// Convenience constructor for a write command.
    pub fn write(kind: ResourceKind, stage: u8, index: u16, payload: WritePayload) -> Self {
        ReconfigCommand {
            kind,
            stage,
            index,
            clear: false,
            payload,
        }
    }

    /// Convenience constructor for a clear command.
    pub fn clear(kind: ResourceKind, stage: u8, index: u16) -> Self {
        ReconfigCommand {
            kind,
            stage,
            index,
            clear: true,
            payload: WritePayload::Clear,
        }
    }

    /// The 12-bit resource ID: 4-bit resource kind, 4-bit stage, 1 clear bit.
    pub fn resource_id(&self) -> u16 {
        (u16::from(self.kind.code()) & 0xf)
            | ((u16::from(self.stage) & 0xf) << 4)
            | (u16::from(self.clear) << 8)
    }

    /// Serialises the command payload into entry bytes.
    fn payload_bytes(&self) -> Vec<u8> {
        match &self.payload {
            WritePayload::Parser(entry) | WritePayload::Deparser(entry) => entry.encode_bytes(),
            WritePayload::KeyExtract(entry) => entry.encode().to_be_bytes().to_vec(),
            WritePayload::KeyMask(mask) => {
                let mut bytes = mask.bytes.to_vec();
                bytes.push(u8::from(mask.predicate));
                bytes
            }
            WritePayload::MatchEntry { key, module_id } => {
                let mut bytes = key.bytes.to_vec();
                bytes.push(u8::from(key.predicate));
                bytes.extend_from_slice(&module_id.to_be_bytes());
                bytes
            }
            WritePayload::Action(action) => action.encode_bytes(),
            WritePayload::Segment(entry) => entry.encode().to_be_bytes().to_vec(),
            WritePayload::LpmRule(rule) => {
                let mut bytes = rule.prefix.to_be_bytes().to_vec();
                bytes.push(rule.prefix_len);
                bytes.extend_from_slice(&rule.action.to_be_bytes());
                bytes
            }
            WritePayload::RangeRule(rule) => {
                let mut bytes = rule.lo.to_be_bytes().to_vec();
                bytes.extend_from_slice(&rule.hi.to_be_bytes());
                bytes.extend_from_slice(&rule.priority.to_be_bytes());
                bytes.extend_from_slice(&rule.action.to_be_bytes());
                bytes
            }
            WritePayload::Clear => Vec::new(),
        }
    }

    /// Deserialises entry bytes for `kind` into a payload.
    fn decode_payload(kind: ResourceKind, clear: bool, bytes: &[u8]) -> Result<WritePayload> {
        if clear {
            return Ok(WritePayload::Clear);
        }
        Ok(match kind {
            ResourceKind::Parser => {
                WritePayload::Parser(ParserEntry::decode_bytes(bytes).map_err(CoreError::Rmt)?)
            }
            ResourceKind::Deparser => {
                WritePayload::Deparser(ParserEntry::decode_bytes(bytes).map_err(CoreError::Rmt)?)
            }
            ResourceKind::KeyExtractor => {
                let array: [u8; 8] = bytes
                    .try_into()
                    .map_err(|_| CoreError::BadReconfigPacket("key extractor length"))?;
                WritePayload::KeyExtract(
                    KeyExtractEntry::decode(u64::from_be_bytes(array)).map_err(CoreError::Rmt)?,
                )
            }
            ResourceKind::KeyMask => {
                if bytes.len() != KEY_BYTES + 1 {
                    return Err(CoreError::BadReconfigPacket("key mask length"));
                }
                let mut mask = KeyMask::default();
                mask.bytes.copy_from_slice(&bytes[..KEY_BYTES]);
                mask.predicate = bytes[KEY_BYTES] != 0;
                WritePayload::KeyMask(mask)
            }
            ResourceKind::MatchTable => {
                if bytes.len() != KEY_BYTES + 3 {
                    return Err(CoreError::BadReconfigPacket("match entry length"));
                }
                let mut key = LookupKey::default();
                key.bytes.copy_from_slice(&bytes[..KEY_BYTES]);
                key.predicate = bytes[KEY_BYTES] != 0;
                let module_id = u16::from_be_bytes([bytes[KEY_BYTES + 1], bytes[KEY_BYTES + 2]]);
                WritePayload::MatchEntry { key, module_id }
            }
            ResourceKind::ActionTable => {
                WritePayload::Action(VliwAction::decode_bytes(bytes).map_err(CoreError::Rmt)?)
            }
            ResourceKind::SegmentTable => {
                let array: [u8; 2] = bytes
                    .try_into()
                    .map_err(|_| CoreError::BadReconfigPacket("segment entry length"))?;
                WritePayload::Segment(SegmentEntry::decode(u16::from_be_bytes(array)))
            }
            ResourceKind::LpmTable => {
                if bytes.len() != 7 {
                    return Err(CoreError::BadReconfigPacket("LPM rule length"));
                }
                WritePayload::LpmRule(LpmMatchRule {
                    prefix: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
                    prefix_len: bytes[4],
                    action: u16::from_be_bytes([bytes[5], bytes[6]]),
                })
            }
            ResourceKind::RangeTable => {
                if bytes.len() != 20 {
                    return Err(CoreError::BadReconfigPacket("range rule length"));
                }
                let word = |at: usize| {
                    let mut array = [0u8; 8];
                    array.copy_from_slice(&bytes[at..at + 8]);
                    u64::from_be_bytes(array)
                };
                WritePayload::RangeRule(RangeMatchRule {
                    lo: word(0),
                    hi: word(8),
                    priority: u16::from_be_bytes([bytes[16], bytes[17]]),
                    action: u16::from_be_bytes([bytes[18], bytes[19]]),
                })
            }
        })
    }

    /// Encodes the command into a reconfiguration packet: a VLAN-tagged UDP
    /// datagram with destination port [`RECONFIG_UDP_DPORT`] whose payload is
    /// `resource_id(2) | index(2) | length(2) | entry bytes`.
    pub fn to_packet(&self) -> Packet {
        let entry_bytes = self.payload_bytes();
        let mut payload = Vec::with_capacity(6 + entry_bytes.len());
        payload.extend_from_slice(&self.resource_id().to_be_bytes());
        payload.extend_from_slice(&self.index.to_be_bytes());
        payload.extend_from_slice(&(entry_bytes.len() as u16).to_be_bytes());
        payload.extend_from_slice(&entry_bytes);
        PacketBuilder::new().with_vlan(0).build_udp(
            [127, 0, 0, 1],
            [127, 0, 0, 2],
            0,
            RECONFIG_UDP_DPORT,
            &payload,
        )
    }

    /// Decodes a reconfiguration packet back into a command.
    pub fn from_packet(packet: &Packet) -> Result<Self> {
        if !packet.is_reconfiguration() {
            return Err(CoreError::BadReconfigPacket("wrong UDP destination port"));
        }
        let payload = packet
            .transport_payload()
            .ok_or(CoreError::BadReconfigPacket("no UDP payload"))?;
        if payload.len() < 6 {
            return Err(CoreError::BadReconfigPacket("payload too short"));
        }
        let resource_id = u16::from_be_bytes([payload[0], payload[1]]);
        let kind = ResourceKind::from_code((resource_id & 0xf) as u8)?;
        let stage = ((resource_id >> 4) & 0xf) as u8;
        let clear = (resource_id >> 8) & 1 == 1;
        let index = u16::from_be_bytes([payload[2], payload[3]]);
        let len = usize::from(u16::from_be_bytes([payload[4], payload[5]]));
        let entry_bytes = payload
            .get(6..6 + len)
            .ok_or(CoreError::BadReconfigPacket("entry truncated"))?;
        let payload = Self::decode_payload(kind, clear, entry_bytes)?;
        Ok(ReconfigCommand {
            kind,
            stage,
            index,
            clear,
            payload,
        })
    }
}

/// Number of 32-bit AXI-Lite writes needed to configure one entry of each
/// resource, used by the Appendix A comparison (Figure 12). The daisy-chain
/// path instead ships one packet per entry regardless of width.
pub fn axil_writes_for(kind: ResourceKind) -> u32 {
    let bits: u32 = match kind {
        ResourceKind::Parser | ResourceKind::Deparser => 160,
        ResourceKind::KeyExtractor => 38,
        ResourceKind::KeyMask => 193,
        ResourceKind::MatchTable => 205,
        ResourceKind::ActionTable => 625,
        ResourceKind::SegmentTable => 16,
        // prefix(32) + length(6) + action(16)
        ResourceKind::LpmTable => 54,
        // lo(64) + hi(64) + priority(16) + action(16)
        ResourceKind::RangeTable => 160,
    };
    bits.div_ceil(32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_rmt::action::AluInstruction;
    use menshen_rmt::config::ParseAction;
    use menshen_rmt::phv::ContainerRef as C;

    #[test]
    fn resource_kind_codes_round_trip() {
        for kind in [
            ResourceKind::Parser,
            ResourceKind::Deparser,
            ResourceKind::KeyExtractor,
            ResourceKind::KeyMask,
            ResourceKind::MatchTable,
            ResourceKind::ActionTable,
            ResourceKind::SegmentTable,
            ResourceKind::LpmTable,
            ResourceKind::RangeTable,
        ] {
            assert_eq!(ResourceKind::from_code(kind.code()).unwrap(), kind);
        }
        assert!(ResourceKind::from_code(0).is_err());
        assert!(ResourceKind::from_code(12).is_err());
    }

    fn round_trip(cmd: ReconfigCommand) {
        let packet = cmd.to_packet();
        assert!(packet.is_reconfiguration());
        let decoded = ReconfigCommand::from_packet(&packet).unwrap();
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn all_payload_kinds_round_trip_through_packets() {
        round_trip(ReconfigCommand::write(
            ResourceKind::Parser,
            0,
            3,
            WritePayload::Parser(
                ParserEntry::new(vec![ParseAction::new(34, C::h4(1)).unwrap()]).unwrap(),
            ),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::Deparser,
            0,
            3,
            WritePayload::Deparser(ParserEntry::default()),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::KeyExtractor,
            2,
            7,
            WritePayload::KeyExtract(KeyExtractEntry {
                slots_4b: [3, 2],
                ..Default::default()
            }),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::KeyMask,
            1,
            7,
            WritePayload::KeyMask(KeyMask::for_slots(
                [true, false, true, false, false, false],
                true,
            )),
        ));
        let mut key = LookupKey::default();
        key.bytes[12..16].copy_from_slice(&0x0a000002u32.to_be_bytes());
        round_trip(ReconfigCommand::write(
            ResourceKind::MatchTable,
            4,
            9,
            WritePayload::MatchEntry {
                key,
                module_id: 0x7ff,
            },
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::ActionTable,
            3,
            9,
            WritePayload::Action(VliwAction::nop().with(C::h2(0), AluInstruction::set(99))),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::SegmentTable,
            0,
            2,
            WritePayload::Segment(SegmentEntry::new(128, 64)),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::LpmTable,
            1,
            3,
            WritePayload::LpmRule(LpmMatchRule {
                prefix: 0x0a0b_0000,
                prefix_len: 17,
                action: 2,
            }),
        ));
        round_trip(ReconfigCommand::write(
            ResourceKind::RangeTable,
            2,
            4,
            WritePayload::RangeRule(RangeMatchRule {
                lo: 1024,
                hi: u64::MAX,
                priority: 7,
                action: 1,
            }),
        ));
        round_trip(ReconfigCommand::clear(ResourceKind::MatchTable, 2, 5));
        round_trip(ReconfigCommand::clear(ResourceKind::LpmTable, 0, 9));
    }

    #[test]
    fn data_packets_rejected_as_reconfig() {
        let data = PacketBuilder::udp_data(1, [1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[0u8; 16]);
        assert!(matches!(
            ReconfigCommand::from_packet(&data),
            Err(CoreError::BadReconfigPacket(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let cmd = ReconfigCommand::write(
            ResourceKind::SegmentTable,
            0,
            1,
            WritePayload::Segment(SegmentEntry::new(0, 16)),
        );
        let packet = cmd.to_packet();
        // Corrupt the declared length so the entry appears truncated.
        let mut bytes = packet.into_bytes();
        let payload_off = 46; // eth(14)+vlan(4)+ip(20)+udp(8)
        bytes[payload_off + 4] = 0xff;
        bytes[payload_off + 5] = 0xff;
        let corrupted = Packet::from_bytes(bytes);
        assert!(ReconfigCommand::from_packet(&corrupted).is_err());
    }

    #[test]
    fn axil_write_counts_match_entry_widths() {
        assert_eq!(axil_writes_for(ResourceKind::ActionTable), 20);
        assert_eq!(axil_writes_for(ResourceKind::MatchTable), 7);
        assert_eq!(axil_writes_for(ResourceKind::Parser), 5);
        assert_eq!(axil_writes_for(ResourceKind::KeyExtractor), 2);
        assert_eq!(axil_writes_for(ResourceKind::SegmentTable), 1);
        assert_eq!(axil_writes_for(ResourceKind::KeyMask), 7);
        assert_eq!(axil_writes_for(ResourceKind::LpmTable), 2);
        assert_eq!(axil_writes_for(ResourceKind::RangeTable), 5);
    }

    #[test]
    fn resource_id_packs_kind_stage_and_clear() {
        let cmd = ReconfigCommand::clear(ResourceKind::ActionTable, 4, 0);
        let id = cmd.resource_id();
        assert_eq!(id & 0xf, u16::from(ResourceKind::ActionTable.code()));
        assert_eq!((id >> 4) & 0xf, 4);
        assert_eq!((id >> 8) & 1, 1);
        assert!(id < (1 << 12), "resource ID fits in 12 bits");
    }
}
