//! Menshen: isolation mechanisms for high-speed packet-processing pipelines.
//!
//! This crate is the Rust reproduction of the core contribution of the
//! NSDI 2022 paper *"Isolation Mechanisms for High-Speed Packet-Processing
//! Pipelines"*: a set of lightweight primitives layered on an RMT pipeline so
//! that many independently developed packet-processing modules can share one
//! line-rate pipeline without interfering with each other.
//!
//! Two mechanisms do all the work (Table 1 of the paper):
//!
//! * **Space partitioning** for resources that are plentiful enough to divide
//!   at flow granularity — match-action table entries and stateful memory.
//!   Each module owns a contiguous, non-overlapping range
//!   ([`partition::RangeAllocator`]), and the module ID is appended to every
//!   match key so lookups can never alias across modules.
//! * **Overlays** for resources that are shared per packet — the parser,
//!   deparser, key extractor, key mask and segment table. Each gets a small
//!   per-module configuration table ([`overlay::OverlayTable`]) indexed by the
//!   packet's module ID (its VLAN ID).
//!
//! Around these sit the [`packet_filter::PacketFilter`] (secure separation of
//! reconfiguration traffic and the "being reconfigured" bitmap), the
//! [`reconfig`] daisy chain (the only way configuration is ever written), the
//! [`system_module::SystemModule`] (virtual IPs, routing, multicast, device
//! statistics), the [`resources::ResourceChecker`] (static admission control)
//! and the [`sw_interface::ControlPlane`] (the P4Runtime-like software
//! surface).
//!
//! The full multi-module data path is [`pipeline::MenshenPipeline`].
//!
//! # Quick example
//!
//! ```
//! use menshen_core::prelude::*;
//! use menshen_rmt::TABLE5;
//!
//! // An empty module that simply forwards its packets.
//! let module = ModuleConfig::empty(ModuleId::new(7), "forwarder", 5);
//! let mut pipeline = MenshenPipeline::new(TABLE5);
//! pipeline.load_module(&module).unwrap();
//! assert_eq!(pipeline.loaded_modules(), vec![ModuleId::new(7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod error;
pub mod metrics;
pub mod module;
pub mod overlay;
pub mod packet_filter;
pub mod partition;
pub mod pipeline;
pub mod profile;
pub mod reconfig;
pub mod resources;
pub mod segment_table;
pub mod sw_interface;
pub mod system_module;
pub mod telemetry;

pub use digest::{DigestField, DigestSpec, StateDigest, DIGEST_MAX_FIELDS};
pub use error::CoreError;
pub use metrics::{
    labels, validate_prometheus, Counter, HistogramHandle, Labels, MetricSample, MetricValue,
    MetricsRegistry, MetricsSnapshot, TenantTelemetry, VerdictLedger,
};
pub use module::{
    ExecutionMode, LpmMatchRule, MatchRule, ModuleConfig, ModuleId, RangeMatchRule,
    ResourceAllocation, StageModuleConfig, StateMergeability, TableRule,
};
pub use overlay::OverlayTable;
pub use packet_filter::{FilterDecision, PacketFilter};
pub use partition::{Allocation, RangeAllocator};
pub use pipeline::{
    DropReason, LoadReport, MenshenPipeline, ModuleCounters, ModuleState, Verdict, BURST_SIZE,
};
pub use profile::{Phase, StageProfile, DEFAULT_PROFILE_INTERVAL, PROFILE_PHASES};
pub use reconfig::{ReconfigCommand, ResourceKind, WritePayload};
pub use resources::{ResourceChecker, SharingPolicy};
pub use segment_table::{SegmentEntry, SegmentTable, SegmentTranslator};
pub use sw_interface::{ControlPlane, DeviceStats};
pub use system_module::{ForwardingDecision, SystemModule, SystemStats};
pub use telemetry::{BaselineMismatch, Gauge, LatencyHistogram, Percentiles};

/// Result alias used across the crate.
pub type Result<T> = core::result::Result<T, CoreError>;

/// Convenient glob-import surface for examples and downstream crates.
pub mod prelude {
    pub use crate::module::{
        LpmMatchRule, MatchRule, ModuleConfig, ModuleId, RangeMatchRule, StageModuleConfig,
        TableRule,
    };
    pub use crate::pipeline::{DropReason, MenshenPipeline, Verdict, BURST_SIZE};
    pub use crate::resources::SharingPolicy;
    pub use crate::sw_interface::ControlPlane;
    pub use crate::system_module::SystemModule;
}
