//! The packet filter at the head of the Menshen pipeline.
//!
//! The filter (§3.1, §4.1) separates untrusted data packets from
//! reconfiguration packets (recognised by UDP destination port `0xf1f2`),
//! discards data packets that carry no VLAN tag (and therefore no module ID),
//! drops data packets of a module that is currently being reconfigured (so
//! in-flight packets are never processed by a partially-written
//! configuration), and tags accepted packets with a packet-buffer number in
//! round-robin order for the parallel deparsers (§3.2).
//!
//! Two software-visible registers are exposed: the 32-bit "being
//! reconfigured" bitmap and the reconfiguration-packet counter.

use menshen_packet::Packet;

/// Number of parallel packet buffers/deparsers the filter round-robins over.
pub const NUM_PACKET_BUFFERS: u8 = 4;

/// What the filter decided to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// A data packet for `module_id`, assigned to packet buffer `buffer_tag`.
    Data {
        /// The module (VLAN) ID extracted from the packet.
        module_id: u16,
        /// The packet buffer / deparser this packet is steered to.
        buffer_tag: u8,
    },
    /// A reconfiguration packet to be forwarded to the daisy chain. Only
    /// trusted sources (the software interface) may inject these; the caller
    /// decides based on where the packet came from.
    Reconfiguration,
    /// Dropped: the packet carries no VLAN tag, so no module can be selected.
    DropNoVlan,
    /// Dropped: the packet's module is currently being reconfigured.
    DropBeingReconfigured {
        /// The module in question.
        module_id: u16,
    },
}

/// Per-decision counters kept by the filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterCounters {
    /// Data packets admitted.
    pub admitted: u64,
    /// Packets dropped for missing VLAN tags.
    pub dropped_no_vlan: u64,
    /// Packets dropped because their module was being reconfigured.
    pub dropped_reconfiguring: u64,
    /// Reconfiguration packets observed.
    pub reconfig_seen: u64,
}

/// The packet filter.
#[derive(Debug, Clone, Default)]
pub struct PacketFilter {
    /// Bit `i` set means the module occupying slot `i` is being reconfigured.
    bitmap: u32,
    /// Map from bitmap bit to module ID, so data packets can be matched
    /// against the bitmap (the prototype stores this association in software;
    /// keeping it here keeps the filter self-contained).
    slot_modules: [Option<u16>; 32],
    /// Counts reconfiguration packets that passed through the daisy chain.
    reconfig_counter: u32,
    next_buffer: u8,
    counters: FilterCounters,
}

impl PacketFilter {
    /// Creates a filter with a clear bitmap and zero counters.
    pub fn new() -> Self {
        PacketFilter::default()
    }

    /// Associates a bitmap bit (module slot) with a module ID.
    pub fn bind_slot(&mut self, slot: usize, module_id: u16) {
        if slot < 32 {
            self.slot_modules[slot] = Some(module_id);
        }
    }

    /// Removes the association for a slot.
    pub fn unbind_slot(&mut self, slot: usize) {
        if slot < 32 {
            self.slot_modules[slot] = None;
            self.bitmap &= !(1 << slot);
        }
    }

    /// Reads the "being reconfigured" bitmap (software register).
    pub fn bitmap(&self) -> u32 {
        self.bitmap
    }

    /// Writes the "being reconfigured" bitmap (software register).
    pub fn set_bitmap(&mut self, bitmap: u32) {
        self.bitmap = bitmap;
    }

    /// Marks one slot as being reconfigured.
    pub fn mark_reconfiguring(&mut self, slot: usize) {
        if slot < 32 {
            self.bitmap |= 1 << slot;
        }
    }

    /// Clears one slot's reconfiguration mark.
    pub fn clear_reconfiguring(&mut self, slot: usize) {
        if slot < 32 {
            self.bitmap &= !(1 << slot);
        }
    }

    /// Reads the reconfiguration-packet counter (software register).
    pub fn reconfig_counter(&self) -> u32 {
        self.reconfig_counter
    }

    /// Increments the reconfiguration-packet counter; called by the daisy
    /// chain when a reconfiguration packet has been applied.
    pub fn count_reconfig_packet(&mut self) {
        self.reconfig_counter = self.reconfig_counter.wrapping_add(1);
    }

    /// Filter statistics.
    pub fn counters(&self) -> FilterCounters {
        self.counters
    }

    /// Clears the filter's dynamic state — decision counters, the
    /// reconfiguration-packet counter and the buffer-tag round-robin position
    /// — while keeping its configuration (slot bindings and the "being
    /// reconfigured" bitmap). Used when snapshotting a pipeline into a fresh
    /// replica for a new worker shard.
    pub fn reset_dynamic_state(&mut self) {
        self.counters = FilterCounters::default();
        self.reconfig_counter = 0;
        self.next_buffer = 0;
    }

    /// Returns true if the module occupying any marked slot matches `module_id`.
    fn module_is_reconfiguring(&self, module_id: u16) -> bool {
        (0..32).any(|slot| {
            self.bitmap & (1 << slot) != 0 && self.slot_modules[slot] == Some(module_id)
        })
    }

    /// Classifies one incoming packet.
    pub fn classify(&mut self, packet: &Packet) -> FilterDecision {
        if packet.is_reconfiguration() {
            self.counters.reconfig_seen += 1;
            return FilterDecision::Reconfiguration;
        }
        let module_id = match packet.vlan_id() {
            Ok(vid) => vid.value(),
            Err(_) => {
                self.counters.dropped_no_vlan += 1;
                return FilterDecision::DropNoVlan;
            }
        };
        if self.module_is_reconfiguring(module_id) {
            self.counters.dropped_reconfiguring += 1;
            return FilterDecision::DropBeingReconfigured { module_id };
        }
        let buffer_tag = self.next_buffer;
        self.next_buffer = (self.next_buffer + 1) % NUM_PACKET_BUFFERS;
        self.counters.admitted += 1;
        FilterDecision::Data {
            module_id,
            buffer_tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_packet::{PacketBuilder, RECONFIG_UDP_DPORT};

    fn data_packet(vlan: u16) -> Packet {
        PacketBuilder::udp_data(vlan, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[0u8; 8])
    }

    #[test]
    fn classifies_data_and_reconfig() {
        let mut filter = PacketFilter::new();
        match filter.classify(&data_packet(7)) {
            FilterDecision::Data {
                module_id,
                buffer_tag,
            } => {
                assert_eq!(module_id, 7);
                assert_eq!(buffer_tag, 0);
            }
            other => panic!("unexpected decision {other:?}"),
        }
        let reconfig = PacketBuilder::udp_data(
            1,
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            9,
            RECONFIG_UDP_DPORT,
            &[0u8; 8],
        );
        assert_eq!(filter.classify(&reconfig), FilterDecision::Reconfiguration);
        assert_eq!(filter.counters().admitted, 1);
        assert_eq!(filter.counters().reconfig_seen, 1);
    }

    #[test]
    fn untagged_packets_dropped() {
        let mut filter = PacketFilter::new();
        let mut builder = PacketBuilder::new();
        builder.vlan = None;
        let pkt = builder.build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]);
        assert_eq!(filter.classify(&pkt), FilterDecision::DropNoVlan);
        assert_eq!(filter.counters().dropped_no_vlan, 1);
    }

    #[test]
    fn buffer_tags_round_robin() {
        let mut filter = PacketFilter::new();
        let tags: Vec<u8> = (0..8)
            .map(|_| match filter.classify(&data_packet(3)) {
                FilterDecision::Data { buffer_tag, .. } => buffer_tag,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn bitmap_drops_only_marked_module() {
        let mut filter = PacketFilter::new();
        filter.bind_slot(0, 10);
        filter.bind_slot(1, 11);
        filter.mark_reconfiguring(0);
        assert_eq!(filter.bitmap(), 1);
        assert_eq!(
            filter.classify(&data_packet(10)),
            FilterDecision::DropBeingReconfigured { module_id: 10 }
        );
        assert!(matches!(
            filter.classify(&data_packet(11)),
            FilterDecision::Data { module_id: 11, .. }
        ));
        filter.clear_reconfiguring(0);
        assert!(matches!(
            filter.classify(&data_packet(10)),
            FilterDecision::Data { module_id: 10, .. }
        ));
        assert_eq!(filter.counters().dropped_reconfiguring, 1);
    }

    #[test]
    fn software_registers() {
        let mut filter = PacketFilter::new();
        assert_eq!(filter.reconfig_counter(), 0);
        filter.count_reconfig_packet();
        filter.count_reconfig_packet();
        assert_eq!(filter.reconfig_counter(), 2);
        filter.set_bitmap(0xffff_ffff);
        assert_eq!(filter.bitmap(), 0xffff_ffff);
        filter.unbind_slot(3);
        assert_eq!(filter.bitmap() & (1 << 3), 0);
    }
}
