//! The Menshen pipeline: a multi-module RMT pipeline with isolation.
//!
//! [`MenshenPipeline`] composes the baseline RMT hardware (stages from
//! `menshen-rmt`) with Menshen's isolation primitives:
//!
//! * the **packet filter** (VLAN check, reconfiguration-packet separation,
//!   "being reconfigured" bitmap, buffer-tag round robin);
//! * **overlay tables** for the parser, deparser, key extractor, key mask and
//!   segment table — one entry per module, indexed per packet by module ID;
//! * **space partitioning** of CAM/action entries and stateful memory through
//!   contiguous per-module ranges;
//! * the **module ID appended to match keys**, so lookups can never hit
//!   another module's entries;
//! * the **system-level module** wrapped around tenant processing;
//! * the **daisy-chain reconfiguration path**, which is the *only* way to
//!   write configuration — reconfiguration packets arriving on the data path
//!   are dropped (§3.1 "secure reconfiguration").

use crate::error::CoreError;
use crate::module::{ModuleConfig, ModuleId};
use crate::overlay::OverlayTable;
use crate::packet_filter::{FilterDecision, PacketFilter};
use crate::partition::{Allocation, RangeAllocator};
use crate::reconfig::{ReconfigCommand, ResourceKind, WritePayload};
use crate::segment_table::{SegmentEntry, SegmentTable, SegmentTranslator};
use crate::system_module::{ForwardingDecision, SystemModule};
use crate::Result;
use menshen_packet::{Ipv4Address, Packet};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParserEntry};
use menshen_rmt::match_table::MatchEntry;
use menshen_rmt::params::PipelineParams;
use menshen_rmt::parser;
use menshen_rmt::phv::Phv;
use menshen_rmt::stage::{StageConfig, StageHardware};
use menshen_rmt::deparser;
use std::collections::HashMap;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No VLAN tag, so no module ID.
    NoVlan,
    /// The VLAN ID does not correspond to any loaded module.
    UnknownModule,
    /// The packet's module is currently being reconfigured.
    BeingReconfigured,
    /// The module's program executed a `discard` action.
    ModuleDiscard,
    /// A reconfiguration packet arrived on the untrusted data path.
    UntrustedReconfiguration,
}

/// The pipeline's verdict for one packet.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The packet was processed and forwarded to `ports`.
    Forwarded {
        /// The (possibly rewritten) packet.
        packet: Packet,
        /// Egress ports (one for unicast, several for multicast).
        ports: Vec<u16>,
        /// The final PHV (for tests and oracles).
        phv: Phv,
        /// The module that processed the packet.
        module_id: u16,
    },
    /// The packet was dropped.
    Dropped {
        /// Why it was dropped.
        reason: DropReason,
        /// The module it belonged to, when known.
        module_id: Option<u16>,
    },
}

impl Verdict {
    /// True if the packet was forwarded.
    pub fn is_forwarded(&self) -> bool {
        matches!(self, Verdict::Forwarded { .. })
    }

    /// The forwarded packet, if any.
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            Verdict::Forwarded { packet, .. } => Some(packet),
            Verdict::Dropped { .. } => None,
        }
    }
}

/// Per-module traffic counters (the performance-isolation statistics of §5.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleCounters {
    /// Packets admitted for this module.
    pub packets_in: u64,
    /// Packets forwarded for this module.
    pub packets_out: u64,
    /// Packets dropped (by discard actions or reconfiguration).
    pub packets_dropped: u64,
    /// Bytes admitted.
    pub bytes_in: u64,
    /// Bytes forwarded.
    pub bytes_out: u64,
}

/// Software-side record of one loaded module.
#[derive(Debug, Clone)]
struct ModuleRuntime {
    slot: usize,
    name: String,
    cam_ranges: Vec<Allocation>,
    stateful_ranges: Vec<Allocation>,
    counters: ModuleCounters,
}

/// Report returned by [`MenshenPipeline::load_module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// The overlay-table slot assigned to the module.
    pub slot: usize,
    /// Number of reconfiguration packets (daisy-chain writes) it took to load
    /// the module — the quantity Figure 9's configuration-time model uses.
    pub reconfig_packets: usize,
}

/// One match-action stage plus its Menshen isolation primitives.
#[derive(Debug, Clone)]
struct MenshenStage {
    hw: StageHardware,
    key_extract: OverlayTable<KeyExtractEntry>,
    key_mask: OverlayTable<KeyMask>,
    segment: SegmentTable,
    cam_alloc: RangeAllocator,
    stateful_alloc: RangeAllocator,
}

impl MenshenStage {
    fn new(params: &PipelineParams, stage_index: usize) -> Self {
        MenshenStage {
            hw: StageHardware::new(params),
            key_extract: OverlayTable::new("key extractor table", params.overlay_depth),
            key_mask: OverlayTable::new("key mask table", params.overlay_depth),
            segment: SegmentTable::new(params.overlay_depth),
            cam_alloc: RangeAllocator::new(
                format!("match entries, stage {stage_index}"),
                params.cam_depth,
            ),
            stateful_alloc: RangeAllocator::new(
                format!("stateful memory, stage {stage_index}"),
                params.stateful_words,
            ),
        }
    }
}

/// The Menshen pipeline.
#[derive(Debug, Clone)]
pub struct MenshenPipeline {
    params: PipelineParams,
    filter: PacketFilter,
    parser_table: OverlayTable<ParserEntry>,
    deparser_table: OverlayTable<ParserEntry>,
    stages: Vec<MenshenStage>,
    system: SystemModule,
    modules: HashMap<u16, ModuleRuntime>,
    slots: Vec<Option<u16>>,
    cycle: u64,
}

impl MenshenPipeline {
    /// Creates an empty pipeline with the given parameters.
    pub fn new(params: PipelineParams) -> Self {
        MenshenPipeline {
            filter: PacketFilter::new(),
            parser_table: OverlayTable::new("parser table", params.overlay_depth),
            deparser_table: OverlayTable::new("deparser table", params.overlay_depth),
            stages: (0..params.num_stages)
                .map(|i| MenshenStage::new(&params, i))
                .collect(),
            system: SystemModule::new(),
            modules: HashMap::new(),
            slots: vec![None; params.overlay_depth],
            cycle: 0,
            params,
        }
    }

    /// Creates a pipeline with the prototype parameters of Table 5.
    pub fn with_default_params() -> Self {
        Self::new(PipelineParams::default())
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// Mutable access to the system-level module (to install routes, virtual
    /// IPs and multicast groups).
    pub fn system_mut(&mut self) -> &mut SystemModule {
        &mut self.system
    }

    /// Read access to the system-level module.
    pub fn system(&self) -> &SystemModule {
        &self.system
    }

    /// Read access to the packet filter (its software registers).
    pub fn filter(&self) -> &PacketFilter {
        &self.filter
    }

    /// The module IDs currently loaded.
    pub fn loaded_modules(&self) -> Vec<ModuleId> {
        let mut ids: Vec<_> = self.modules.keys().map(|&id| ModuleId::new(id)).collect();
        ids.sort();
        ids
    }

    /// The slot a module occupies, if loaded.
    pub fn module_slot(&self, module: ModuleId) -> Option<usize> {
        self.modules.get(&module.value()).map(|m| m.slot)
    }

    /// Traffic counters for a module.
    pub fn module_counters(&self, module: ModuleId) -> Option<ModuleCounters> {
        self.modules.get(&module.value()).map(|m| m.counters)
    }

    /// Number of free module slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// The contiguous CAM range partitioned to `module` in `stage` at load
    /// time, if the module is loaded.
    pub fn module_cam_range(&self, module: ModuleId, stage: usize) -> Option<Allocation> {
        self.modules
            .get(&module.value())
            .and_then(|m| m.cam_ranges.get(stage))
            .copied()
    }

    /// The module ID that owns the CAM entry at `(stage, index)`, if occupied.
    pub fn cam_entry_owner(&self, stage: usize, index: usize) -> Option<u16> {
        self.stages.get(stage)?.hw.cam.entry(index).map(|e| e.module_id)
    }

    /// True if the CAM address at `(stage, index)` lies inside the range
    /// space-partitioned to a module other than `module`.
    pub fn cam_index_reserved_for_other(&self, stage: usize, index: usize, module: ModuleId) -> bool {
        self.stages
            .get(stage)
            .map(|s| {
                s.cam_alloc
                    .allocations()
                    .any(|(owner, range)| owner != module && range.contains(index))
            })
            .unwrap_or(false)
    }

    /// Reads one word of a module's stateful memory in `stage`, through the
    /// module's segment translation (the software statistics path).
    pub fn read_stateful(&self, module: ModuleId, stage: usize, local_address: u32) -> Option<u64> {
        let runtime = self.modules.get(&module.value())?;
        let stage_ref = self.stages.get(stage)?;
        let physical = stage_ref.segment.translate(runtime.slot, local_address)?;
        stage_ref.hw.stateful.peek(physical)
    }

    // -----------------------------------------------------------------------
    // Module lifecycle
    // -----------------------------------------------------------------------

    /// Builds the sequence of reconfiguration commands that loads `config`
    /// given a slot assignment and per-stage allocations. Exposed so the
    /// software interface and the configuration-time model can count and
    /// replay exactly the packets the daisy chain would carry.
    fn build_load_commands(
        &self,
        config: &ModuleConfig,
        slot: usize,
        cam_ranges: &[Allocation],
        stateful_ranges: &[Allocation],
    ) -> Vec<ReconfigCommand> {
        let mut commands = Vec::new();
        commands.push(ReconfigCommand::write(
            ResourceKind::Parser,
            0,
            slot as u8,
            WritePayload::Parser(config.parser.clone()),
        ));
        commands.push(ReconfigCommand::write(
            ResourceKind::Deparser,
            0,
            slot as u8,
            WritePayload::Deparser(config.deparser.clone()),
        ));
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            let stage = stage_idx as u8;
            if let Some(entry) = stage_cfg.key_extract {
                commands.push(ReconfigCommand::write(
                    ResourceKind::KeyExtractor,
                    stage,
                    slot as u8,
                    WritePayload::KeyExtract(entry),
                ));
            }
            if let Some(mask) = stage_cfg.key_mask {
                commands.push(ReconfigCommand::write(
                    ResourceKind::KeyMask,
                    stage,
                    slot as u8,
                    WritePayload::KeyMask(mask),
                ));
            }
            let cam_base = cam_ranges.get(stage_idx).map(|a| a.start).unwrap_or(0);
            for (i, rule) in stage_cfg.rules.iter().enumerate() {
                let index = (cam_base + i) as u8;
                commands.push(ReconfigCommand::write(
                    ResourceKind::MatchTable,
                    stage,
                    index,
                    WritePayload::MatchEntry {
                        key: rule.key,
                        module_id: config.module_id.value(),
                    },
                ));
                commands.push(ReconfigCommand::write(
                    ResourceKind::ActionTable,
                    stage,
                    index,
                    WritePayload::Action(rule.action.clone()),
                ));
            }
            if stage_cfg.stateful_words > 0 {
                let range = stateful_ranges.get(stage_idx).copied().unwrap_or(Allocation {
                    start: 0,
                    len: 0,
                });
                commands.push(ReconfigCommand::write(
                    ResourceKind::SegmentTable,
                    stage,
                    slot as u8,
                    WritePayload::Segment(SegmentEntry::new(range.start as u32, range.len as u32)),
                ));
            }
        }
        commands
    }

    /// Loads a compiled module onto the pipeline.
    ///
    /// This performs what the Menshen software does at load time: assign a
    /// module slot, carve out the module's share of each space-partitioned
    /// resource, mark the module as being reconfigured in the packet filter,
    /// stream the configuration in via the daisy chain, and finally clear the
    /// reconfiguration bit. Other modules' state is never touched.
    pub fn load_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let module_id = config.module_id;
        if self.modules.contains_key(&module_id.value()) {
            return Err(CoreError::ModuleAlreadyLoaded {
                module_id: module_id.value(),
            });
        }
        if config.stages.len() > self.params.num_stages {
            return Err(CoreError::Rmt(menshen_rmt::RmtError::TableIndexOutOfRange {
                table: "pipeline stages",
                index: config.stages.len(),
                depth: self.params.num_stages,
            }));
        }
        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(CoreError::NoFreeModuleSlot {
                capacity: self.params.overlay_depth,
            })?;

        // Space partitioning: reserve CAM and stateful ranges in every stage
        // the module uses. Roll back on failure so a rejected module leaves
        // no residue.
        let mut cam_ranges = Vec::new();
        let mut stateful_ranges = Vec::new();
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            let stage = &mut self.stages[stage_idx];
            let cam = match stage.cam_alloc.allocate(module_id, stage_cfg.rules.len()) {
                Ok(a) => a,
                Err(e) => {
                    self.rollback_allocations(module_id, stage_idx);
                    return Err(e);
                }
            };
            let stateful = match stage.stateful_alloc.allocate(module_id, stage_cfg.stateful_words) {
                Ok(a) => a,
                Err(e) => {
                    stage.cam_alloc.release(module_id);
                    self.rollback_allocations(module_id, stage_idx);
                    return Err(e);
                }
            };
            cam_ranges.push(cam);
            stateful_ranges.push(stateful);
        }

        let commands = self.build_load_commands(config, slot, &cam_ranges, &stateful_ranges);

        // Reconfiguration proper: mark the module, stream the packets, unmark.
        self.filter.bind_slot(slot, module_id.value());
        self.filter.mark_reconfiguring(slot);
        let mut applied = 0;
        for command in &commands {
            self.apply_command(command)?;
            applied += 1;
        }
        self.filter.clear_reconfiguring(slot);

        self.slots[slot] = Some(module_id.value());
        self.modules.insert(
            module_id.value(),
            ModuleRuntime {
                slot,
                name: config.name.clone(),
                cam_ranges,
                stateful_ranges,
                counters: ModuleCounters::default(),
            },
        );
        Ok(LoadReport {
            slot,
            reconfig_packets: applied,
        })
    }

    fn rollback_allocations(&mut self, module: ModuleId, up_to_stage: usize) {
        for stage in &mut self.stages[..up_to_stage] {
            stage.cam_alloc.release(module);
            stage.stateful_alloc.release(module);
        }
    }

    /// Updates an already-loaded module with a new configuration. The module's
    /// packets are dropped while the update streams in (the Figure 10
    /// experiment); other modules keep forwarding throughout.
    pub fn update_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let module_id = config.module_id;
        if !self.modules.contains_key(&module_id.value()) {
            return Err(CoreError::UnknownModule {
                module_id: module_id.value(),
            });
        }
        // The prototype reconfigures by rewriting the module's entries; the
        // simplest faithful model is unload + load preserving the counters.
        let counters = self.modules[&module_id.value()].counters;
        self.unload_module(module_id)?;
        let report = self.load_module(config)?;
        if let Some(runtime) = self.modules.get_mut(&module_id.value()) {
            runtime.counters = counters;
        }
        Ok(report)
    }

    /// Unloads a module: clears its overlay entries, match entries, stateful
    /// memory range, and frees its slot.
    pub fn unload_module(&mut self, module: ModuleId) -> Result<()> {
        let runtime = self
            .modules
            .remove(&module.value())
            .ok_or(CoreError::UnknownModule {
                module_id: module.value(),
            })?;
        let slot = runtime.slot;
        self.parser_table.clear(slot)?;
        self.deparser_table.clear(slot)?;
        for (stage_idx, stage) in self.stages.iter_mut().enumerate() {
            stage.key_extract.clear(slot)?;
            stage.key_mask.clear(slot)?;
            let _ = stage.segment.clear(slot);
            stage.hw.cam.clear_module(module.value());
            stage.cam_alloc.release(module);
            if let Some(range) = runtime.stateful_ranges.get(stage_idx) {
                if range.len > 0 {
                    stage
                        .hw
                        .stateful
                        .clear_range(range.start as u32, range.len as u32)
                        .map_err(CoreError::Rmt)?;
                }
            }
            stage.stateful_alloc.release(module);
        }
        self.filter.unbind_slot(slot);
        self.slots[slot] = None;
        Ok(())
    }

    /// The human-readable name a module was loaded with.
    pub fn module_name(&self, module: ModuleId) -> Option<&str> {
        self.modules.get(&module.value()).map(|m| m.name.as_str())
    }

    // -----------------------------------------------------------------------
    // Reconfiguration (trusted path)
    // -----------------------------------------------------------------------

    /// Applies one reconfiguration command, as the daisy chain would when the
    /// corresponding reconfiguration packet passes the target element.
    pub fn apply_command(&mut self, command: &ReconfigCommand) -> Result<()> {
        let stage_idx = usize::from(command.stage);
        let index = usize::from(command.index);
        match (&command.payload, command.kind) {
            (WritePayload::Parser(entry), _) => self.parser_table.write(index, entry.clone())?,
            (WritePayload::Deparser(entry), _) => self.deparser_table.write(index, entry.clone())?,
            (WritePayload::KeyExtract(entry), _) => {
                self.stage_mut(stage_idx)?.key_extract.write(index, *entry)?
            }
            (WritePayload::KeyMask(mask), _) => {
                self.stage_mut(stage_idx)?.key_mask.write(index, *mask)?
            }
            (WritePayload::MatchEntry { key, module_id }, _) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .cam
                    .install(
                        index,
                        MatchEntry {
                            key: *key,
                            module_id: *module_id,
                            action_index: index as u16,
                        },
                    )
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Action(action), _) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .install_action(index, action.clone())
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Segment(entry), _) => {
                self.stage_mut(stage_idx)?.segment.write(index, *entry)?
            }
            (WritePayload::Clear, ResourceKind::MatchTable) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .cam
                    .remove(index)
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Clear, ResourceKind::Parser) => self.parser_table.clear(index)?,
            (WritePayload::Clear, ResourceKind::Deparser) => self.deparser_table.clear(index)?,
            (WritePayload::Clear, ResourceKind::KeyExtractor) => {
                self.stage_mut(stage_idx)?.key_extract.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::KeyMask) => {
                self.stage_mut(stage_idx)?.key_mask.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::SegmentTable) => {
                self.stage_mut(stage_idx)?.segment.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::ActionTable) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .install_action(index, menshen_rmt::action::VliwAction::nop())
                    .map_err(CoreError::Rmt)?;
            }
        }
        self.filter.count_reconfig_packet();
        Ok(())
    }

    /// Applies a reconfiguration *packet* arriving over the trusted path
    /// (PCIe → daisy chain). Untrusted (data-path) reconfiguration attempts
    /// must go through [`process`](Self::process), which drops them.
    pub fn apply_reconfiguration_packet(&mut self, packet: &Packet) -> Result<()> {
        let command = ReconfigCommand::from_packet(packet)?;
        self.apply_command(&command)
    }

    fn stage_mut(&mut self, stage: usize) -> Result<&mut MenshenStage> {
        let depth = self.stages.len();
        self.stages
            .get_mut(stage)
            .ok_or(CoreError::Rmt(menshen_rmt::RmtError::TableIndexOutOfRange {
                table: "pipeline stages",
                index: stage,
                depth,
            }))
    }

    // -----------------------------------------------------------------------
    // Data path
    // -----------------------------------------------------------------------

    /// Pushes one packet through the data path and returns the verdict.
    pub fn process(&mut self, packet: Packet) -> Verdict {
        self.cycle += 1;
        let decision = self.filter.classify(&packet);
        let (module_id, buffer_tag) = match decision {
            FilterDecision::Reconfiguration => {
                // Data-path reconfiguration attempts are untrusted and dropped.
                return Verdict::Dropped {
                    reason: DropReason::UntrustedReconfiguration,
                    module_id: None,
                };
            }
            FilterDecision::DropNoVlan => {
                return Verdict::Dropped {
                    reason: DropReason::NoVlan,
                    module_id: None,
                }
            }
            FilterDecision::DropBeingReconfigured { module_id } => {
                if let Some(runtime) = self.modules.get_mut(&module_id) {
                    runtime.counters.packets_dropped += 1;
                }
                return Verdict::Dropped {
                    reason: DropReason::BeingReconfigured,
                    module_id: Some(module_id),
                };
            }
            FilterDecision::Data { module_id, buffer_tag } => (module_id, buffer_tag),
        };

        let slot = match self.modules.get(&module_id).map(|m| m.slot) {
            Some(slot) => slot,
            None => {
                return Verdict::Dropped {
                    reason: DropReason::UnknownModule,
                    module_id: Some(module_id),
                }
            }
        };

        let packet_len = packet.len();
        if let Some(runtime) = self.modules.get_mut(&module_id) {
            runtime.counters.packets_in += 1;
            runtime.counters.bytes_in += packet_len as u64;
        }

        // Parse with the module's own parser entry.
        let parser_entry = self.parser_table.read(slot).cloned().unwrap_or_default();
        let mut phv = match parser::parse(&packet, &parser_entry, module_id) {
            Ok(phv) => phv,
            Err(_) => {
                if let Some(runtime) = self.modules.get_mut(&module_id) {
                    runtime.counters.packets_dropped += 1;
                }
                return Verdict::Dropped {
                    reason: DropReason::ModuleDiscard,
                    module_id: Some(module_id),
                };
            }
        };
        phv.metadata.buffer_tag = 1 << buffer_tag;

        // System-level module, first half.
        self.system.ingress(&mut phv, packet_len, self.cycle);

        // Tenant stages with per-module overlay configuration.
        for stage in &mut self.stages {
            let config = StageConfig {
                key_extract: stage.key_extract.read(slot).copied().unwrap_or_default(),
                key_mask: stage.key_mask.read(slot).copied().unwrap_or_default(),
            };
            let translator = SegmentTranslator::new(stage.segment.read(slot));
            stage.hw.process(&mut phv, &config, &translator);
        }

        if phv.metadata.discard {
            if let Some(runtime) = self.modules.get_mut(&module_id) {
                runtime.counters.packets_dropped += 1;
            }
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }

        // Deparse with the module's deparser entry.
        let mut packet = packet;
        let deparser_entry = self.deparser_table.read(slot).cloned().unwrap_or_default();
        if deparser::deparse(&mut packet, &phv, &deparser_entry).is_err() {
            if let Some(runtime) = self.modules.get_mut(&module_id) {
                runtime.counters.packets_dropped += 1;
            }
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }

        // System-level module, second half: routing / multicast.
        let dst_ip = packet.ipv4_dst().unwrap_or(Ipv4Address::new(0, 0, 0, 0));
        let ports = match self.system.egress(module_id, dst_ip, &phv) {
            ForwardingDecision::Unicast(port) => vec![port],
            ForwardingDecision::Multicast(ports) => ports,
        };

        if let Some(runtime) = self.modules.get_mut(&module_id) {
            runtime.counters.packets_out += 1;
            runtime.counters.bytes_out += packet.len() as u64;
        }

        Verdict::Forwarded {
            packet,
            ports,
            phv,
            module_id,
        }
    }

    /// Marks a module as being reconfigured (software register write); its
    /// packets are dropped until [`end_reconfiguration`](Self::end_reconfiguration).
    pub fn begin_reconfiguration(&mut self, module: ModuleId) -> Result<()> {
        let slot = self
            .module_slot(module)
            .ok_or(CoreError::UnknownModule { module_id: module.value() })?;
        self.filter.mark_reconfiguring(slot);
        Ok(())
    }

    /// Clears a module's reconfiguration mark.
    pub fn end_reconfiguration(&mut self, module: ModuleId) -> Result<()> {
        let slot = self
            .module_slot(module)
            .ok_or(CoreError::UnknownModule { module_id: module.value() })?;
        self.filter.clear_reconfiguring(slot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{MatchRule, StageModuleConfig};
    use menshen_packet::PacketBuilder;
    use menshen_rmt::action::{AluInstruction, VliwAction};
    use menshen_rmt::config::ParseAction;
    use menshen_rmt::match_table::LookupKey;
    use menshen_rmt::phv::ContainerRef as C;
    use menshen_rmt::TABLE5;

    /// A minimal module: match on dst IP (h4(1)), rewrite the UDP dst port to
    /// `rewrite_port` and count packets in stateful word 0.
    fn simple_module(module_id: u16, dst_ip: u32, rewrite_port: u16) -> ModuleConfig {
        let mut config = ModuleConfig::empty(ModuleId::new(module_id), format!("m{module_id}"), 5);
        config.parser = ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap();
        config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
        let key = LookupKey::from_slots(
            [(0, 6), (0, 6), (u64::from(dst_ip), 4), (0, 4), (0, 2), (0, 2)],
            false,
        );
        config.stages[0] = StageModuleConfig {
            key_extract: Some(KeyExtractEntry { slots_4b: [1, 0], ..Default::default() }),
            key_mask: Some(KeyMask::for_slots([false, false, true, false, false, false], false)),
            rules: vec![MatchRule {
                key,
                action: VliwAction::nop()
                    .with(C::h2(0), AluInstruction::set(rewrite_port))
                    .with(C::h4(7), AluInstruction::loadd(0)),
            }],
            stateful_words: 16,
        };
        config
    }

    fn packet_for(module: u16, dst_last_octet: u8) -> Packet {
        PacketBuilder::udp_data(
            module,
            [10, 0, 0, 1],
            [10, 0, 0, dst_last_octet],
            5000,
            80,
            &[0u8; 8],
        )
    }

    #[test]
    fn load_and_process_single_module() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let report = pipeline.load_module(&simple_module(7, 0x0a00_0002, 9999)).unwrap();
        assert_eq!(report.slot, 0);
        assert!(report.reconfig_packets >= 5);
        assert_eq!(pipeline.loaded_modules(), vec![ModuleId::new(7)]);
        assert_eq!(pipeline.module_name(ModuleId::new(7)), Some("m7"));

        let verdict = pipeline.process(packet_for(7, 2));
        match verdict {
            Verdict::Forwarded { packet, module_id, .. } => {
                assert_eq!(module_id, 7);
                assert_eq!(packet.udp_dst_port(), Some(9999));
            }
            other => panic!("expected forwarded, got {other:?}"),
        }
        // The per-module stateful counter incremented through the segment table.
        assert_eq!(pipeline.read_stateful(ModuleId::new(7), 0, 0), Some(1));
        let counters = pipeline.module_counters(ModuleId::new(7)).unwrap();
        assert_eq!(counters.packets_in, 1);
        assert_eq!(counters.packets_out, 1);
    }

    #[test]
    fn two_modules_same_key_do_not_interfere() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        pipeline.load_module(&simple_module(2, 0x0a00_0002, 2222)).unwrap();

        let v1 = pipeline.process(packet_for(1, 2));
        let v2 = pipeline.process(packet_for(2, 2));
        assert_eq!(v1.packet().unwrap().udp_dst_port(), Some(1111));
        assert_eq!(v2.packet().unwrap().udp_dst_port(), Some(2222));
        // Stateful counters are independent despite both using local address 0.
        assert_eq!(pipeline.read_stateful(ModuleId::new(1), 0, 0), Some(1));
        assert_eq!(pipeline.read_stateful(ModuleId::new(2), 0, 0), Some(1));
    }

    #[test]
    fn unknown_and_untagged_packets_dropped() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        match pipeline.process(packet_for(9, 2)) {
            Verdict::Dropped { reason, module_id } => {
                assert_eq!(reason, DropReason::UnknownModule);
                assert_eq!(module_id, Some(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut builder = PacketBuilder::new();
        builder.vlan = None;
        let untagged = builder.build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]);
        assert!(matches!(
            pipeline.process(untagged),
            Verdict::Dropped { reason: DropReason::NoVlan, .. }
        ));
    }

    #[test]
    fn data_path_reconfiguration_is_rejected() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        // A tenant crafts a reconfiguration packet and sends it on the data path.
        let malicious = ReconfigCommand::write(
            ResourceKind::KeyMask,
            0,
            0,
            WritePayload::KeyMask(KeyMask::default()),
        )
        .to_packet();
        let before = pipeline.filter().reconfig_counter();
        let verdict = pipeline.process(malicious);
        assert!(matches!(
            verdict,
            Verdict::Dropped { reason: DropReason::UntrustedReconfiguration, .. }
        ));
        assert_eq!(
            pipeline.filter().reconfig_counter(),
            before,
            "no configuration write happened"
        );
        // The module still works (its key mask was not zeroed).
        let v = pipeline.process(packet_for(1, 2));
        assert_eq!(v.packet().unwrap().udp_dst_port(), Some(1111));
    }

    #[test]
    fn trusted_reconfiguration_packet_applies() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        let packet = ReconfigCommand::write(
            ResourceKind::SegmentTable,
            2,
            0,
            WritePayload::Segment(SegmentEntry::new(256, 32)),
        )
        .to_packet();
        pipeline.apply_reconfiguration_packet(&packet).unwrap();
        assert!(pipeline.filter().reconfig_counter() > 0);
    }

    #[test]
    fn module_packing_limited_by_overlay_depth_and_cam() {
        // With one match entry per stage per module, the CAM (16 entries)
        // limits packing to 16 modules (§5.2).
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let mut loaded = 0;
        for id in 1..=40u16 {
            let config = simple_module(id, 0x0a00_0002, id);
            if pipeline.load_module(&config).is_ok() {
                loaded += 1;
            }
        }
        assert_eq!(loaded, 16);
        // With no match entries, packing is limited by the 32 overlay slots.
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let mut loaded = 0;
        for id in 1..=40u16 {
            let config = ModuleConfig::empty(ModuleId::new(id), "tiny", 5);
            if pipeline.load_module(&config).is_ok() {
                loaded += 1;
            }
        }
        assert_eq!(loaded, 32);
        assert_eq!(pipeline.free_slots(), 0);
    }

    #[test]
    fn unload_frees_resources_and_clears_state() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        pipeline.process(packet_for(1, 2));
        assert_eq!(pipeline.read_stateful(ModuleId::new(1), 0, 0), Some(1));
        pipeline.unload_module(ModuleId::new(1)).unwrap();
        assert!(pipeline.loaded_modules().is_empty());
        assert!(pipeline.read_stateful(ModuleId::new(1), 0, 0).is_none());
        // A new module re-using the same slot and stateful range starts clean.
        pipeline.load_module(&simple_module(2, 0x0a00_0002, 2222)).unwrap();
        assert_eq!(pipeline.read_stateful(ModuleId::new(2), 0, 0), Some(0));
        // Unloading an unknown module errors.
        assert!(pipeline.unload_module(ModuleId::new(5)).is_err());
    }

    #[test]
    fn reconfiguration_drops_only_that_module() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        pipeline.load_module(&simple_module(2, 0x0a00_0002, 2222)).unwrap();
        pipeline.begin_reconfiguration(ModuleId::new(1)).unwrap();
        assert!(matches!(
            pipeline.process(packet_for(1, 2)),
            Verdict::Dropped { reason: DropReason::BeingReconfigured, .. }
        ));
        assert!(pipeline.process(packet_for(2, 2)).is_forwarded());
        pipeline.end_reconfiguration(ModuleId::new(1)).unwrap();
        assert!(pipeline.process(packet_for(1, 2)).is_forwarded());
        assert!(pipeline.begin_reconfiguration(ModuleId::new(9)).is_err());
    }

    #[test]
    fn update_module_changes_behaviour_without_touching_others() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&simple_module(1, 0x0a00_0002, 1111)).unwrap();
        pipeline.load_module(&simple_module(2, 0x0a00_0002, 2222)).unwrap();
        pipeline.process(packet_for(2, 2));
        let before = pipeline.module_counters(ModuleId::new(2)).unwrap();

        pipeline.update_module(&simple_module(1, 0x0a00_0002, 7777)).unwrap();
        let v1 = pipeline.process(packet_for(1, 2));
        assert_eq!(v1.packet().unwrap().udp_dst_port(), Some(7777));
        let v2 = pipeline.process(packet_for(2, 2));
        assert_eq!(v2.packet().unwrap().udp_dst_port(), Some(2222));
        let after = pipeline.module_counters(ModuleId::new(2)).unwrap();
        assert_eq!(after.packets_in, before.packets_in + 1);
        // Updating an unloaded module errors.
        assert!(pipeline.update_module(&simple_module(9, 1, 1)).is_err());
    }

    #[test]
    fn system_module_routes_forwarded_packets() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.system_mut().add_route(Ipv4Address::new(10, 0, 0, 2), 42);
        pipeline.system_mut().set_default_port(1);
        let mut config = simple_module(3, 0x0a00_0002, 8080);
        // Remove the explicit port so the system module decides.
        config.stages[0].rules[0].action = VliwAction::nop()
            .with(C::h2(0), AluInstruction::set(8080));
        pipeline.load_module(&config).unwrap();
        match pipeline.process(packet_for(3, 2)) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![42]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pipeline.system().stats().link_packets > 0);
    }
}
