//! The Menshen pipeline: a multi-module RMT pipeline with isolation.
//!
//! [`MenshenPipeline`] composes the baseline RMT hardware (stages from
//! `menshen-rmt`) with Menshen's isolation primitives:
//!
//! * the **packet filter** (VLAN check, reconfiguration-packet separation,
//!   "being reconfigured" bitmap, buffer-tag round robin);
//! * **overlay tables** for the parser, deparser, key extractor, key mask and
//!   segment table — one entry per module, indexed per packet by module ID;
//! * **space partitioning** of CAM/action entries and stateful memory through
//!   contiguous per-module ranges;
//! * the **module ID appended to match keys**, so lookups can never hit
//!   another module's entries;
//! * the **system-level module** wrapped around tenant processing;
//! * the **daisy-chain reconfiguration path**, which is the *only* way to
//!   write configuration — reconfiguration packets arriving on the data path
//!   are dropped (§3.1 "secure reconfiguration").
//!
//! # Single-packet vs batched processing
//!
//! Two data-path entry points exist:
//!
//! * [`MenshenPipeline::process`] pushes one packet at a time and re-reads
//!   every per-module overlay entry for every packet. It is the reference
//!   path: simple, obviously faithful to the hardware model, and what the
//!   isolation tests exercise.
//! * [`MenshenPipeline::process_batch`] pushes a DPDK-style burst
//!   (see [`BURST_SIZE`]) and produces verdict-for-verdict identical results
//!   while amortising the per-packet overheads across the burst: per-module
//!   parser/deparser/key-extractor/key-mask/segment configuration is resolved
//!   once per `(module, burst)` into scratch buffers owned by the pipeline,
//!   stages whose key mask selects no key bits resolve their CAM lookup once
//!   per burst instead of once per packet, one scratch PHV is reused for the
//!   whole burst, and per-module traffic counters are accumulated in scratch
//!   and flushed once at the end of the burst. The steady state allocates
//!   nothing beyond the returned verdicts.
//!
//! Configuration cannot change in the middle of a burst (the batch holds
//! `&mut self`), so the per-burst resolution is exact, and the CAM hash index
//! (`menshen_rmt::ExactMatchTable`) keeps each remaining per-packet lookup
//! O(1). One observable difference: the batch path resolves lookups through
//! the index without bumping the CAM's lookup/hit statistics for the probes
//! it amortises away.

use crate::digest::{DigestSpec, StateDigest};
use crate::error::CoreError;
use crate::module::{
    ExecutionMode, LpmMatchRule, ModuleConfig, ModuleId, RangeMatchRule, StateMergeability,
    TableRule,
};
use crate::overlay::OverlayTable;
use crate::packet_filter::{FilterDecision, PacketFilter};
use crate::partition::{Allocation, RangeAllocator};
use crate::profile::{HotPathProfiler, PacketSample, Phase, StageProfile};
use crate::reconfig::{ReconfigCommand, ResourceKind, WritePayload};
use crate::segment_table::{SegmentEntry, SegmentTable, SegmentTranslator};
use crate::system_module::{ForwardingDecision, SystemModule};
use crate::Result;
use menshen_packet::{Ipv4Address, Packet};
use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParserEntry};
use menshen_rmt::deparser;
use menshen_rmt::key_extractor::extract_key;
use menshen_rmt::lpm::LpmTable;
use menshen_rmt::match_table::{LookupKey, MatchEntry, MatchKind};
use menshen_rmt::params::{PipelineParams, MATCH_TABLE_CAPACITY};
use menshen_rmt::parser;
use menshen_rmt::phv::{ContainerRef, Phv};
use menshen_rmt::stage::{StageConfig, StageHardware};
use menshen_rmt::ternary::{RangeRule, RangeTable};
use std::collections::HashMap;

/// DPDK-style default burst size for [`MenshenPipeline::process_batch`].
///
/// Callers may pass bursts of any length; this constant is the batch size the
/// testbed and benchmarks use when they chop a packet stream into bursts.
pub const BURST_SIZE: usize = 32;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No VLAN tag, so no module ID.
    NoVlan,
    /// The VLAN ID does not correspond to any loaded module.
    UnknownModule,
    /// The packet's module is currently being reconfigured.
    BeingReconfigured,
    /// The module's program executed a `discard` action.
    ModuleDiscard,
    /// A reconfiguration packet arrived on the untrusted data path.
    UntrustedReconfiguration,
}

/// The pipeline's verdict for one packet.
//
// `Forwarded` is much larger than `Dropped`, but boxing the PHV (clippy's
// suggestion) would put one heap allocation per forwarded packet on the
// allocation-free batched hot path — the wrong trade for a type that lives
// in reused scratch buffers.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The packet was processed and forwarded to `ports`.
    Forwarded {
        /// The (possibly rewritten) packet.
        packet: Packet,
        /// Egress ports (one for unicast, several for multicast).
        ports: Vec<u16>,
        /// The final PHV (for tests and oracles).
        phv: Phv,
        /// The module that processed the packet.
        module_id: u16,
    },
    /// The packet was dropped.
    Dropped {
        /// Why it was dropped.
        reason: DropReason,
        /// The module it belonged to, when known.
        module_id: Option<u16>,
    },
}

impl Verdict {
    /// True if the packet was forwarded.
    pub fn is_forwarded(&self) -> bool {
        matches!(self, Verdict::Forwarded { .. })
    }

    /// The forwarded packet, if any.
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            Verdict::Forwarded { packet, .. } => Some(packet),
            Verdict::Dropped { .. } => None,
        }
    }
}

/// Per-module traffic counters (the performance-isolation statistics of §5.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleCounters {
    /// Packets admitted for this module.
    pub packets_in: u64,
    /// Packets forwarded for this module.
    pub packets_out: u64,
    /// Packets dropped (by discard actions or reconfiguration).
    pub packets_dropped: u64,
    /// Bytes admitted.
    pub bytes_in: u64,
    /// Bytes forwarded.
    pub bytes_out: u64,
}

impl ModuleCounters {
    /// Adds `other`'s tallies onto this one, field by field. Every field of
    /// the type is additive by design, which is what makes per-shard
    /// counters aggregatable and migratable — every summation site (merge,
    /// state injection, cross-shard aggregation) goes through here so a new
    /// field can never be forgotten at one of them.
    pub fn add(&mut self, other: &ModuleCounters) {
        self.packets_in += other.packets_in;
        self.packets_out += other.packets_out;
        self.packets_dropped += other.packets_dropped;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

/// A portable snapshot of one module's *dynamic* state: its traffic counters
/// and the contents of its stateful-memory segments, in segment-local word
/// order per stage.
///
/// This is the unit of tenant state migration: the sharded runtime extracts
/// it on the source replica ([`MenshenPipeline::take_module_state`], which
/// clears the source so exactly one live copy exists), merges extracts from
/// several replicas if needed ([`ModuleState::merge`] — exact for additive
/// state, and trivially exact when all but one extract is zero), and replays
/// it into the target replica ([`MenshenPipeline::import_module_state`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleState {
    /// The module this state belongs to.
    pub module_id: u16,
    /// The module's traffic counters at extraction time.
    pub counters: ModuleCounters,
    /// Per stage, the words of the module's stateful segment (segment-local
    /// order). Stages where the module owns no stateful memory are empty.
    pub stages: Vec<Vec<u64>>,
}

impl ModuleState {
    /// Total stateful words carried (across all stages).
    pub fn word_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// True when the snapshot carries no information: zero counters and all
    /// stateful words zero. Migration skips injecting these.
    pub fn is_zero(&self) -> bool {
        self.counters == ModuleCounters::default()
            && self.stages.iter().all(|s| s.iter().all(|&w| w == 0))
    }

    /// Folds `other` into `self` by addition: counters sum, stateful words
    /// add element-wise (wrapping, like the hardware's `loadd`). Exact for
    /// mergeable (additive) state; for single-owner state every extract but
    /// one is zero, so the sum equals the lone live copy.
    pub fn merge(&mut self, other: &ModuleState) {
        debug_assert_eq!(self.module_id, other.module_id);
        self.counters.add(&other.counters);
        if self.stages.len() < other.stages.len() {
            self.stages.resize(other.stages.len(), Vec::new());
        }
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (word, &value) in mine.iter_mut().zip(theirs.iter()) {
                *word = word.wrapping_add(value);
            }
        }
    }
}

/// Software-side record of one loaded module.
#[derive(Debug, Clone)]
struct ModuleRuntime {
    slot: usize,
    name: String,
    cam_ranges: Vec<Allocation>,
    stateful_ranges: Vec<Allocation>,
    counters: ModuleCounters,
    /// The load-time pin hint from [`ModuleConfig::pinned`].
    pinned: bool,
}

/// Report returned by [`MenshenPipeline::load_module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// The overlay-table slot assigned to the module.
    pub slot: usize,
    /// Number of reconfiguration packets (daisy-chain writes) it took to load
    /// the module — the quantity Figure 9's configuration-time model uses.
    pub reconfig_packets: usize,
}

/// How the CAM lookup of one `(module slot, stage)` resolves within a burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum ResolvedLookup {
    /// The masked key depends on packet contents: look up per packet.
    #[default]
    PerPacket,
    /// The masked key is burst-constant and missed: the stage cannot touch
    /// this module's packets, so it is skipped entirely.
    ConstantMiss,
    /// The masked key is burst-constant and hit this CAM address; only the
    /// action execution remains per-packet.
    ConstantHit(usize),
    /// The module has a flat LPM table in this stage: per-packet trie walk,
    /// then direct action execution (no CAM probe).
    PerPacketLpm,
    /// The module has a flat range table in this stage: per-packet interval
    /// search, then direct action execution (no CAM probe).
    PerPacketRange,
}

/// How one stage resolved for one packet on the batch path: a CAM address
/// (exact match, executes through the entry's indirection) or a direct
/// action-table index (flat LPM/range tables).
#[derive(Debug, Clone, Copy)]
enum StageHit {
    Cam(usize),
    Action(usize),
}

/// Per-`(module slot, stage)` configuration resolved once per burst.
#[derive(Debug, Clone, Copy, Default)]
struct StageScratch {
    config: StageConfig,
    segment: Option<SegmentEntry>,
    lookup: ResolvedLookup,
}

/// Per-module-slot scratch state for one burst: the overlay configuration
/// resolved out of the tables once, plus the traffic-counter delta
/// accumulated until the end-of-burst flush.
#[derive(Debug, Clone, Default)]
struct SlotScratch {
    /// Burst stamp; a slot is (re)resolved when it differs from the batch's.
    epoch: u64,
    module_id: u16,
    parser: ParserEntry,
    deparser: ParserEntry,
    stages: Vec<StageScratch>,
    counters: ModuleCounters,
}

/// Scratch buffers owned by the pipeline and reused across bursts so the
/// steady-state batch path performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    epoch: u64,
    slots: Vec<SlotScratch>,
    touched: Vec<usize>,
    phv: Phv,
}

impl BatchScratch {
    /// Starts a new burst: bumps the epoch (lazily invalidating every slot)
    /// and sizes the slot table, keeping all existing allocations.
    fn begin(&mut self, overlay_depth: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.slots.len() != overlay_depth {
            self.slots.resize(overlay_depth, SlotScratch::default());
        }
        self.touched.clear();
    }
}

/// One match-action stage plus its Menshen isolation primitives.
///
/// Besides the exact-match CAM inside [`StageHardware`], a stage holds one
/// optional flat match table per module slot: an LPM trie or a range/ternary
/// interval table. These are isolated by construction — each slot's table is
/// a separate object, so a lookup can never cross modules — and their rules
/// reference the module's space-partitioned VLIW action range directly.
#[derive(Debug, Clone)]
struct MenshenStage {
    hw: StageHardware,
    key_extract: OverlayTable<KeyExtractEntry>,
    key_mask: OverlayTable<KeyMask>,
    segment: SegmentTable,
    cam_alloc: RangeAllocator,
    stateful_alloc: RangeAllocator,
    /// Per-module-slot LPM tables (match kind `lpm`).
    lpm: Vec<Option<LpmTable>>,
    /// Per-module-slot range tables (match kind `range`).
    range: Vec<Option<RangeTable>>,
}

impl MenshenStage {
    fn new(params: &PipelineParams, stage_index: usize) -> Self {
        MenshenStage {
            hw: StageHardware::new(params),
            key_extract: OverlayTable::new("key extractor table", params.overlay_depth),
            key_mask: OverlayTable::new("key mask table", params.overlay_depth),
            segment: SegmentTable::new(params.overlay_depth),
            cam_alloc: RangeAllocator::new(
                format!("match entries, stage {stage_index}"),
                params.cam_depth,
            ),
            stateful_alloc: RangeAllocator::new(
                format!("stateful memory, stage {stage_index}"),
                params.stateful_words,
            ),
            lpm: vec![None; params.overlay_depth],
            range: vec![None; params.overlay_depth],
        }
    }
}

/// The Menshen pipeline.
#[derive(Debug, Clone)]
pub struct MenshenPipeline {
    params: PipelineParams,
    filter: PacketFilter,
    parser_table: OverlayTable<ParserEntry>,
    deparser_table: OverlayTable<ParserEntry>,
    stages: Vec<MenshenStage>,
    system: SystemModule,
    modules: HashMap<u16, ModuleRuntime>,
    slots: Vec<Option<u16>>,
    cycle: u64,
    batch: BatchScratch,
    profiler: HotPathProfiler,
}

impl MenshenPipeline {
    /// Creates an empty pipeline with the given parameters.
    pub fn new(params: PipelineParams) -> Self {
        MenshenPipeline {
            filter: PacketFilter::new(),
            parser_table: OverlayTable::new("parser table", params.overlay_depth),
            deparser_table: OverlayTable::new("deparser table", params.overlay_depth),
            stages: (0..params.num_stages)
                .map(|i| MenshenStage::new(&params, i))
                .collect(),
            system: SystemModule::new(),
            modules: HashMap::new(),
            slots: vec![None; params.overlay_depth],
            cycle: 0,
            batch: BatchScratch::default(),
            // `Default::default()` rather than the named constructor: the
            // profiler is a unit struct when `profiling` is off.
            profiler: Default::default(),
            params,
        }
    }

    /// Creates a pipeline with the prototype parameters of Table 5.
    pub fn with_default_params() -> Self {
        Self::new(PipelineParams::default())
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// Mutable access to the system-level module (to install routes, virtual
    /// IPs and multicast groups).
    pub fn system_mut(&mut self) -> &mut SystemModule {
        &mut self.system
    }

    /// Read access to the system-level module.
    pub fn system(&self) -> &SystemModule {
        &self.system
    }

    /// Read access to the packet filter (its software registers).
    pub fn filter(&self) -> &PacketFilter {
        &self.filter
    }

    /// Switches every stage's CAM between the O(1) hash index (default) and
    /// the per-slot scan that models the hardware CAM's parallel compare —
    /// the cost the pre-index software data path paid on every lookup.
    /// Results are identical either way; benchmarks use scan mode as the
    /// measured "before" baseline. Only the single-packet path is affected:
    /// [`process_batch`](Self::process_batch) always resolves through the
    /// index.
    pub fn set_cam_scan_mode(&mut self, scan: bool) {
        for stage in &mut self.stages {
            stage.hw.cam.set_scan_mode(scan);
        }
    }

    /// The module IDs currently loaded.
    pub fn loaded_modules(&self) -> Vec<ModuleId> {
        let mut ids: Vec<_> = self.modules.keys().map(|&id| ModuleId::new(id)).collect();
        ids.sort();
        ids
    }

    /// The slot a module occupies, if loaded.
    pub fn module_slot(&self, module: ModuleId) -> Option<usize> {
        self.modules.get(&module.value()).map(|m| m.slot)
    }

    /// Traffic counters for a module.
    pub fn module_counters(&self, module: ModuleId) -> Option<ModuleCounters> {
        self.modules.get(&module.value()).map(|m| m.counters)
    }

    /// Number of free module slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// The contiguous CAM range partitioned to `module` in `stage` at load
    /// time, if the module is loaded.
    pub fn module_cam_range(&self, module: ModuleId, stage: usize) -> Option<Allocation> {
        self.modules
            .get(&module.value())
            .and_then(|m| m.cam_ranges.get(stage))
            .copied()
    }

    /// The module ID that owns the CAM entry at `(stage, index)`, if occupied.
    pub fn cam_entry_owner(&self, stage: usize, index: usize) -> Option<u16> {
        self.stages
            .get(stage)?
            .hw
            .cam
            .entry(index)
            .map(|e| e.module_id)
    }

    /// True if the CAM address at `(stage, index)` lies inside the range
    /// space-partitioned to a module other than `module`.
    pub fn cam_index_reserved_for_other(
        &self,
        stage: usize,
        index: usize,
        module: ModuleId,
    ) -> bool {
        self.stages
            .get(stage)
            .map(|s| {
                s.cam_alloc
                    .allocations()
                    .any(|(owner, range)| owner != module && range.contains(index))
            })
            .unwrap_or(false)
    }

    /// Reads one word of a module's stateful memory in `stage`, through the
    /// module's segment translation (the software statistics path).
    pub fn read_stateful(&self, module: ModuleId, stage: usize, local_address: u32) -> Option<u64> {
        let runtime = self.modules.get(&module.value())?;
        let stage_ref = self.stages.get(stage)?;
        let physical = stage_ref.segment.translate(runtime.slot, local_address)?;
        stage_ref.hw.stateful.peek(physical)
    }

    /// Classifies a *loaded* module's stateful memory for shard replication
    /// by walking the VLIW actions actually installed in its CAM ranges —
    /// the same classification [`ModuleConfig::state_mergeability`] performs
    /// on a not-yet-loaded configuration. Returns `None` if the module is
    /// not loaded.
    ///
    /// This is what lets the sharded runtime vet an already-configured
    /// pipeline (e.g. a replication template) and not just incoming load
    /// requests.
    pub fn module_state_mergeability(&self, module: ModuleId) -> Option<StateMergeability> {
        let runtime = self.modules.get(&module.value())?;
        let mut touches_state = false;
        for (stage_index, range) in runtime.cam_ranges.iter().enumerate() {
            let Some(stage) = self.stages.get(stage_index) else {
                continue;
            };
            // A flat-table stage fills the module's partitioned range with
            // shared actions referenced by rule rather than by CAM entry, so
            // every action in the range is the module's and must be walked.
            let flat = stage
                .lpm
                .get(runtime.slot)
                .map(|t| t.is_some())
                .unwrap_or(false)
                || stage
                    .range
                    .get(runtime.slot)
                    .map(|t| t.is_some())
                    .unwrap_or(false);
            for index in range.start..range.end() {
                let owned = flat
                    || stage
                        .hw
                        .cam
                        .entry(index)
                        .map(|entry| entry.module_id == module.value())
                        .unwrap_or(false);
                if !owned {
                    continue;
                }
                let Some(action) = stage.hw.action(index) else {
                    continue;
                };
                if crate::module::action_overwrites_state(action) {
                    return Some(StateMergeability::NonMergeable {
                        stage: stage_index,
                        detail: format!(
                            "CAM entry {index} executes `store` (overwrites a stateful \
                             word); only additive state merges across shard replicas"
                        ),
                    });
                }
                touches_state |= crate::module::action_touches_state(action);
            }
        }
        Some(if touches_state {
            StateMergeability::Mergeable
        } else {
            StateMergeability::Stateless
        })
    }

    /// The digest recipe for a *loaded* module, built from the parser entry
    /// actually installed in its overlay slot. `None` if the module is not
    /// loaded or its parser extracts more fields than a digest can carry.
    pub fn module_digest_spec(&self, module: ModuleId) -> Option<DigestSpec> {
        let runtime = self.modules.get(&module.value())?;
        let parser = self.parser_table.read(runtime.slot)?;
        DigestSpec::from_parser(module.value(), parser)
    }

    /// Chooses how a *loaded* module executes across shard replicas — the
    /// installed-form counterpart of [`ModuleConfig::execution_mode`], driven
    /// by [`module_state_mergeability`](Self::module_state_mergeability), the
    /// load-time pin hint and the installed parser's digestibility. Returns
    /// `None` if the module is not loaded.
    pub fn module_execution_mode(&self, module: ModuleId) -> Option<ExecutionMode> {
        let mergeability = self.module_state_mergeability(module)?;
        let runtime = self.modules.get(&module.value())?;
        Some(match mergeability {
            StateMergeability::Stateless | StateMergeability::Mergeable => ExecutionMode::Mergeable,
            StateMergeability::NonMergeable { .. } => {
                if runtime.pinned || self.module_digest_spec(module).is_none() {
                    ExecutionMode::Pinned
                } else {
                    ExecutionMode::Replicated
                }
            }
        })
    }

    // -----------------------------------------------------------------------
    // Module lifecycle
    // -----------------------------------------------------------------------

    /// Builds the sequence of reconfiguration commands that loads `config`
    /// given a slot assignment and per-stage allocations. Exposed so the
    /// software interface and the configuration-time model can count and
    /// replay exactly the packets the daisy chain would carry.
    fn build_load_commands(
        &self,
        config: &ModuleConfig,
        slot: usize,
        cam_ranges: &[Allocation],
        stateful_ranges: &[Allocation],
    ) -> Vec<ReconfigCommand> {
        let mut commands = Vec::new();
        commands.push(ReconfigCommand::write(
            ResourceKind::Parser,
            0,
            slot as u16,
            WritePayload::Parser(config.parser.clone()),
        ));
        commands.push(ReconfigCommand::write(
            ResourceKind::Deparser,
            0,
            slot as u16,
            WritePayload::Deparser(config.deparser.clone()),
        ));
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            let stage = stage_idx as u8;
            if let Some(entry) = stage_cfg.key_extract {
                commands.push(ReconfigCommand::write(
                    ResourceKind::KeyExtractor,
                    stage,
                    slot as u16,
                    WritePayload::KeyExtract(entry),
                ));
            }
            if let Some(mask) = stage_cfg.key_mask {
                commands.push(ReconfigCommand::write(
                    ResourceKind::KeyMask,
                    stage,
                    slot as u16,
                    WritePayload::KeyMask(mask),
                ));
            }
            let cam_base = cam_ranges.get(stage_idx).map(|a| a.start).unwrap_or(0);
            for (i, rule) in stage_cfg.rules.iter().enumerate() {
                let index = (cam_base + i) as u16;
                commands.push(ReconfigCommand::write(
                    ResourceKind::MatchTable,
                    stage,
                    index,
                    WritePayload::MatchEntry {
                        key: rule.key,
                        module_id: config.module_id.value(),
                    },
                ));
                commands.push(ReconfigCommand::write(
                    ResourceKind::ActionTable,
                    stage,
                    index,
                    WritePayload::Action(rule.action.clone()),
                ));
            }
            // Flat-table stages: the shared actions land in the module's
            // partitioned action range (after the exact rules, if any); the
            // rules themselves are addressed by module slot and rebased onto
            // that range when applied.
            for (i, action) in stage_cfg.table_actions.iter().enumerate() {
                let index = (cam_base + stage_cfg.rules.len() + i) as u16;
                commands.push(ReconfigCommand::write(
                    ResourceKind::ActionTable,
                    stage,
                    index,
                    WritePayload::Action(action.clone()),
                ));
            }
            for rule in &stage_cfg.lpm_rules {
                commands.push(ReconfigCommand::write(
                    ResourceKind::LpmTable,
                    stage,
                    slot as u16,
                    WritePayload::LpmRule(*rule),
                ));
            }
            for rule in &stage_cfg.range_rules {
                commands.push(ReconfigCommand::write(
                    ResourceKind::RangeTable,
                    stage,
                    slot as u16,
                    WritePayload::RangeRule(*rule),
                ));
            }
            if stage_cfg.stateful_words > 0 {
                let range = stateful_ranges
                    .get(stage_idx)
                    .copied()
                    .unwrap_or(Allocation { start: 0, len: 0 });
                commands.push(ReconfigCommand::write(
                    ResourceKind::SegmentTable,
                    stage,
                    slot as u16,
                    WritePayload::Segment(SegmentEntry::new(range.start as u32, range.len as u32)),
                ));
            }
        }
        commands
    }

    /// Loads a compiled module onto the pipeline.
    ///
    /// This performs what the Menshen software does at load time: assign a
    /// module slot, carve out the module's share of each space-partitioned
    /// resource, mark the module as being reconfigured in the packet filter,
    /// stream the configuration in via the daisy chain, and finally clear the
    /// reconfiguration bit. Other modules' state is never touched.
    pub fn load_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let module_id = config.module_id;
        if self.modules.contains_key(&module_id.value()) {
            return Err(CoreError::ModuleAlreadyLoaded {
                module_id: module_id.value(),
            });
        }
        if config.stages.len() > self.params.num_stages {
            return Err(CoreError::Rmt(
                menshen_rmt::RmtError::TableIndexOutOfRange {
                    table: "pipeline stages",
                    index: config.stages.len(),
                    depth: self.params.num_stages,
                },
            ));
        }
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            Self::check_stage_config(stage_idx, stage_cfg)?;
        }
        let slot =
            self.slots
                .iter()
                .position(|s| s.is_none())
                .ok_or(CoreError::NoFreeModuleSlot {
                    capacity: self.params.overlay_depth,
                })?;

        // Space partitioning: reserve CAM and stateful ranges in every stage
        // the module uses. A flat-table stage consumes one partitioned
        // action-table entry per shared action; its (up to 10^6) rules live
        // in the per-slot flat table, not the CAM. Roll back on failure so a
        // rejected module leaves no residue.
        let mut cam_ranges = Vec::new();
        let mut stateful_ranges = Vec::new();
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            let stage = &mut self.stages[stage_idx];
            let entries = stage_cfg.rules.len() + stage_cfg.table_actions.len();
            let cam = match stage.cam_alloc.allocate(module_id, entries) {
                Ok(a) => a,
                Err(e) => {
                    self.rollback_allocations(module_id, stage_idx);
                    return Err(e);
                }
            };
            let stateful = match stage
                .stateful_alloc
                .allocate(module_id, stage_cfg.stateful_words)
            {
                Ok(a) => a,
                Err(e) => {
                    stage.cam_alloc.release(module_id);
                    self.rollback_allocations(module_id, stage_idx);
                    return Err(e);
                }
            };
            cam_ranges.push(cam);
            stateful_ranges.push(stateful);
        }

        // Stand up the per-slot flat tables before streaming so the rule
        // writes in the command stream find their target.
        for (stage_idx, stage_cfg) in config.stages.iter().enumerate() {
            let stage = &mut self.stages[stage_idx];
            match stage_cfg.match_kind {
                MatchKind::Exact => {}
                MatchKind::Lpm { key_offset } => {
                    stage.lpm[slot] = Some(LpmTable::new(
                        usize::from(key_offset),
                        Self::table_capacity(stage_cfg.table_capacity),
                    ));
                }
                MatchKind::Range {
                    key_offset,
                    key_width,
                } => {
                    stage.range[slot] = Some(RangeTable::new(
                        usize::from(key_offset),
                        usize::from(key_width),
                        Self::table_capacity(stage_cfg.table_capacity),
                    ));
                }
            }
        }

        let commands = self.build_load_commands(config, slot, &cam_ranges, &stateful_ranges);

        // Reconfiguration proper: mark the module, stream the packets, unmark.
        // The slot binding happens first so rule writes addressed by module
        // slot can resolve the owning module's action range.
        self.slots[slot] = Some(module_id.value());
        self.filter.bind_slot(slot, module_id.value());
        self.filter.mark_reconfiguring(slot);
        let mut applied = 0;
        for command in &commands {
            self.apply_command(command)?;
            applied += 1;
        }
        self.filter.clear_reconfiguring(slot);

        self.modules.insert(
            module_id.value(),
            ModuleRuntime {
                slot,
                name: config.name.clone(),
                cam_ranges,
                stateful_ranges,
                counters: ModuleCounters::default(),
                pinned: config.pinned,
            },
        );
        Ok(LoadReport {
            slot,
            reconfig_packets: applied,
        })
    }

    fn rollback_allocations(&mut self, module: ModuleId, up_to_stage: usize) {
        for stage in &mut self.stages[..up_to_stage] {
            stage.cam_alloc.release(module);
            stage.stateful_alloc.release(module);
        }
    }

    /// The effective capacity of a flat match table: the configured value, or
    /// the "million rules per table" default when left at zero.
    fn table_capacity(configured: usize) -> usize {
        if configured == 0 {
            MATCH_TABLE_CAPACITY
        } else {
            configured
        }
    }

    /// Static consistency checks between a stage's match kind and the rule
    /// lists it carries, performed before any resource is allocated.
    fn check_stage_config(
        stage_idx: usize,
        stage_cfg: &crate::module::StageModuleConfig,
    ) -> Result<()> {
        let fail = |detail: String| {
            Err(CoreError::CheckFailed(format!(
                "stage {stage_idx}: {detail}"
            )))
        };
        match stage_cfg.match_kind {
            MatchKind::Exact => {
                if !stage_cfg.lpm_rules.is_empty() || !stage_cfg.range_rules.is_empty() {
                    return fail("exact-match stage carries LPM or range rules".into());
                }
            }
            MatchKind::Lpm { .. } => {
                if !stage_cfg.rules.is_empty() || !stage_cfg.range_rules.is_empty() {
                    return fail("LPM stage carries exact or range rules".into());
                }
            }
            MatchKind::Range { .. } => {
                if !stage_cfg.rules.is_empty() || !stage_cfg.lpm_rules.is_empty() {
                    return fail("range stage carries exact or LPM rules".into());
                }
            }
        }
        let flat_rules = stage_cfg.lpm_rules.len() + stage_cfg.range_rules.len();
        if flat_rules > 0 && stage_cfg.table_actions.is_empty() {
            return fail("flat-table rules reference an empty action list".into());
        }
        let capacity = Self::table_capacity(stage_cfg.table_capacity);
        if flat_rules > capacity {
            return fail(format!(
                "{flat_rules} rules exceed the table capacity of {capacity}"
            ));
        }
        for rule in &stage_cfg.lpm_rules {
            if usize::from(rule.action) >= stage_cfg.table_actions.len() {
                return fail(format!(
                    "LPM rule references action {} of {}",
                    rule.action,
                    stage_cfg.table_actions.len()
                ));
            }
        }
        for rule in &stage_cfg.range_rules {
            if usize::from(rule.action) >= stage_cfg.table_actions.len() {
                return fail(format!(
                    "range rule references action {} of {}",
                    rule.action,
                    stage_cfg.table_actions.len()
                ));
            }
        }
        Ok(())
    }

    /// Updates an already-loaded module with a new configuration. The module's
    /// packets are dropped while the update streams in (the Figure 10
    /// experiment); other modules keep forwarding throughout.
    pub fn update_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let module_id = config.module_id;
        if !self.modules.contains_key(&module_id.value()) {
            return Err(CoreError::UnknownModule {
                module_id: module_id.value(),
            });
        }
        // The prototype reconfigures by rewriting the module's entries; the
        // simplest faithful model is unload + load preserving the counters.
        let counters = self.modules[&module_id.value()].counters;
        self.unload_module(module_id)?;
        let report = self.load_module(config)?;
        if let Some(runtime) = self.modules.get_mut(&module_id.value()) {
            runtime.counters = counters;
        }
        Ok(report)
    }

    /// Unloads a module: clears its overlay entries, match entries, stateful
    /// memory range, and frees its slot.
    pub fn unload_module(&mut self, module: ModuleId) -> Result<()> {
        let runtime = self
            .modules
            .remove(&module.value())
            .ok_or(CoreError::UnknownModule {
                module_id: module.value(),
            })?;
        let slot = runtime.slot;
        self.parser_table.clear(slot)?;
        self.deparser_table.clear(slot)?;
        for (stage_idx, stage) in self.stages.iter_mut().enumerate() {
            stage.key_extract.clear(slot)?;
            stage.key_mask.clear(slot)?;
            let _ = stage.segment.clear(slot);
            stage.hw.cam.clear_module(module.value());
            stage.lpm[slot] = None;
            stage.range[slot] = None;
            stage.cam_alloc.release(module);
            if let Some(range) = runtime.stateful_ranges.get(stage_idx) {
                if range.len > 0 {
                    stage
                        .hw
                        .stateful
                        .clear_range(range.start as u32, range.len as u32)
                        .map_err(CoreError::Rmt)?;
                }
            }
            stage.stateful_alloc.release(module);
        }
        self.filter.unbind_slot(slot);
        self.slots[slot] = None;
        Ok(())
    }

    /// The human-readable name a module was loaded with.
    pub fn module_name(&self, module: ModuleId) -> Option<&str> {
        self.modules.get(&module.value()).map(|m| m.name.as_str())
    }

    // -----------------------------------------------------------------------
    // Reconfiguration (trusted path)
    // -----------------------------------------------------------------------

    /// Applies one reconfiguration command, as the daisy chain would when the
    /// corresponding reconfiguration packet passes the target element.
    pub fn apply_command(&mut self, command: &ReconfigCommand) -> Result<()> {
        let stage_idx = usize::from(command.stage);
        let index = usize::from(command.index);
        match (&command.payload, command.kind) {
            (WritePayload::Parser(entry), _) => self.parser_table.write(index, entry.clone())?,
            (WritePayload::Deparser(entry), _) => {
                self.deparser_table.write(index, entry.clone())?
            }
            (WritePayload::KeyExtract(entry), _) => self
                .stage_mut(stage_idx)?
                .key_extract
                .write(index, *entry)?,
            (WritePayload::KeyMask(mask), _) => {
                self.stage_mut(stage_idx)?.key_mask.write(index, *mask)?
            }
            (WritePayload::MatchEntry { key, module_id }, _) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .cam
                    .install(
                        index,
                        MatchEntry {
                            key: *key,
                            module_id: *module_id,
                            action_index: index as u16,
                        },
                    )
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Action(action), _) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .install_action(index, action.clone())
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Segment(entry), _) => {
                self.stage_mut(stage_idx)?.segment.write(index, *entry)?
            }
            (WritePayload::Clear, ResourceKind::MatchTable) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .cam
                    .remove(index)
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::Clear, ResourceKind::Parser) => self.parser_table.clear(index)?,
            (WritePayload::Clear, ResourceKind::Deparser) => self.deparser_table.clear(index)?,
            (WritePayload::Clear, ResourceKind::KeyExtractor) => {
                self.stage_mut(stage_idx)?.key_extract.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::KeyMask) => {
                self.stage_mut(stage_idx)?.key_mask.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::SegmentTable) => {
                self.stage_mut(stage_idx)?.segment.clear(index)?
            }
            (WritePayload::Clear, ResourceKind::ActionTable) => {
                self.stage_mut(stage_idx)?
                    .hw
                    .install_action(index, menshen_rmt::action::VliwAction::nop())
                    .map_err(CoreError::Rmt)?;
            }
            (WritePayload::LpmRule(rule), _) => self.install_lpm_rule(stage_idx, index, rule)?,
            (WritePayload::RangeRule(rule), _) => {
                self.install_range_rule(stage_idx, index, rule)?
            }
            (WritePayload::Clear, ResourceKind::LpmTable) => {
                let stage = self.stage_mut(stage_idx)?;
                if let Some(table) = stage.lpm.get_mut(index).and_then(|t| t.as_mut()) {
                    *table = LpmTable::new(table.key_offset(), table.capacity());
                }
            }
            (WritePayload::Clear, ResourceKind::RangeTable) => {
                let stage = self.stage_mut(stage_idx)?;
                if let Some(table) = stage.range.get_mut(index).and_then(|t| t.as_mut()) {
                    *table =
                        RangeTable::new(table.key_offset(), table.key_width(), table.capacity());
                }
            }
        }
        self.filter.count_reconfig_packet();
        Ok(())
    }

    /// Resolves the action range of the module bound to `slot` in `stage_idx`
    /// and rebases a module-local action index onto it, enforcing that the
    /// result stays inside the module's own partition.
    fn rebase_action(&mut self, stage_idx: usize, slot: usize, local: u16) -> Result<u32> {
        let module_id =
            self.slots
                .get(slot)
                .copied()
                .flatten()
                .ok_or(CoreError::BadReconfigPacket(
                    "flat-table rule addressed to an unbound module slot",
                ))?;
        let stage = self.stage_mut(stage_idx)?;
        let range = stage.cam_alloc.allocation(ModuleId::new(module_id)).ok_or(
            CoreError::BadReconfigPacket(
                "flat-table rule for a module with no action range in this stage",
            ),
        )?;
        if usize::from(local) >= range.len {
            return Err(CoreError::BadReconfigPacket(
                "flat-table rule action index outside the module's partitioned range",
            ));
        }
        Ok((range.start + usize::from(local)) as u32)
    }

    /// Installs one LPM rule into the table of the module bound to `slot`.
    /// This is the incremental (non-quiescing) rule-install primitive: it
    /// never rebuilds the trie from scratch and never touches other slots.
    fn install_lpm_rule(
        &mut self,
        stage_idx: usize,
        slot: usize,
        rule: &LpmMatchRule,
    ) -> Result<()> {
        let action = self.rebase_action(stage_idx, slot, rule.action)?;
        let table = self
            .stage_mut(stage_idx)?
            .lpm
            .get_mut(slot)
            .and_then(|t| t.as_mut())
            .ok_or(CoreError::BadReconfigPacket(
                "LPM rule for a module slot with no LPM table",
            ))?;
        table
            .insert(rule.prefix, rule.prefix_len, action)
            .map_err(CoreError::Rmt)
    }

    /// Installs one range rule into the table of the module bound to `slot`.
    /// Incremental: the rule lands in the table's delta buffer and is folded
    /// into the sorted interval layout in amortised batches.
    fn install_range_rule(
        &mut self,
        stage_idx: usize,
        slot: usize,
        rule: &RangeMatchRule,
    ) -> Result<()> {
        let action = self.rebase_action(stage_idx, slot, rule.action)?;
        let table = self
            .stage_mut(stage_idx)?
            .range
            .get_mut(slot)
            .and_then(|t| t.as_mut())
            .ok_or(CoreError::BadReconfigPacket(
                "range rule for a module slot with no range table",
            ))?;
        table
            .insert(RangeRule {
                lo: rule.lo,
                hi: rule.hi,
                priority: rule.priority,
                action,
            })
            .map_err(CoreError::Rmt)
    }

    /// Installs a batch of flat-table rules into a loaded module's stage —
    /// the typed control-plane entry point for incremental rule install.
    ///
    /// Each rule models one daisy-chain write (counted in the filter's
    /// reconfiguration statistics) but skips packet materialisation; the
    /// module is *not* marked as being reconfigured, so its traffic keeps
    /// flowing while rules stream in. Returns the number of rules installed;
    /// on error, rules before the failing one remain installed (exactly as
    /// if the daisy chain had carried them one packet at a time).
    pub fn install_rules(
        &mut self,
        module: ModuleId,
        stage: usize,
        rules: &[TableRule],
    ) -> Result<usize> {
        let slot = self.module_slot(module).ok_or(CoreError::UnknownModule {
            module_id: module.value(),
        })?;
        let mut installed = 0;
        for rule in rules {
            match rule {
                TableRule::Lpm(rule) => self.install_lpm_rule(stage, slot, rule)?,
                TableRule::Range(rule) => self.install_range_rule(stage, slot, rule)?,
            }
            self.filter.count_reconfig_packet();
            installed += 1;
        }
        Ok(installed)
    }

    /// Read access to a loaded module's LPM table in `stage`, if it has one.
    pub fn lpm_table(&self, module: ModuleId, stage: usize) -> Option<&LpmTable> {
        let slot = self.module_slot(module)?;
        self.stages.get(stage)?.lpm.get(slot)?.as_ref()
    }

    /// Read access to a loaded module's range table in `stage`, if it has one.
    pub fn range_table(&self, module: ModuleId, stage: usize) -> Option<&RangeTable> {
        let slot = self.module_slot(module)?;
        self.stages.get(stage)?.range.get(slot)?.as_ref()
    }

    /// Applies a reconfiguration *packet* arriving over the trusted path
    /// (PCIe → daisy chain). Untrusted (data-path) reconfiguration attempts
    /// must go through [`process`](Self::process), which drops them.
    pub fn apply_reconfiguration_packet(&mut self, packet: &Packet) -> Result<()> {
        let command = ReconfigCommand::from_packet(packet)?;
        self.apply_command(&command)
    }

    fn stage_mut(&mut self, stage: usize) -> Result<&mut MenshenStage> {
        let depth = self.stages.len();
        self.stages.get_mut(stage).ok_or(CoreError::Rmt(
            menshen_rmt::RmtError::TableIndexOutOfRange {
                table: "pipeline stages",
                index: stage,
                depth,
            },
        ))
    }

    // -----------------------------------------------------------------------
    // Data path
    // -----------------------------------------------------------------------

    /// Pushes one packet through the data path and returns the verdict.
    pub fn process(&mut self, packet: Packet) -> Verdict {
        self.cycle += 1;
        let decision = self.filter.classify(&packet);
        let (module_id, buffer_tag) = match decision {
            FilterDecision::Reconfiguration => {
                // Data-path reconfiguration attempts are untrusted and dropped.
                return Verdict::Dropped {
                    reason: DropReason::UntrustedReconfiguration,
                    module_id: None,
                };
            }
            FilterDecision::DropNoVlan => {
                return Verdict::Dropped {
                    reason: DropReason::NoVlan,
                    module_id: None,
                }
            }
            FilterDecision::DropBeingReconfigured { module_id } => {
                if let Some(runtime) = self.modules.get_mut(&module_id) {
                    runtime.counters.packets_dropped += 1;
                }
                return Verdict::Dropped {
                    reason: DropReason::BeingReconfigured,
                    module_id: Some(module_id),
                };
            }
            FilterDecision::Data {
                module_id,
                buffer_tag,
            } => (module_id, buffer_tag),
        };

        let slot = match self.modules.get(&module_id).map(|m| m.slot) {
            Some(slot) => slot,
            None => {
                return Verdict::Dropped {
                    reason: DropReason::UnknownModule,
                    module_id: Some(module_id),
                }
            }
        };

        let packet_len = packet.len();
        if let Some(runtime) = self.modules.get_mut(&module_id) {
            runtime.counters.packets_in += 1;
            runtime.counters.bytes_in += packet_len as u64;
        }

        // Parse with the module's own parser entry.
        let parser_entry = self.parser_table.read(slot).cloned().unwrap_or_default();
        let mut phv = match parser::parse(&packet, &parser_entry, module_id) {
            Ok(phv) => phv,
            Err(_) => {
                if let Some(runtime) = self.modules.get_mut(&module_id) {
                    runtime.counters.packets_dropped += 1;
                }
                return Verdict::Dropped {
                    reason: DropReason::ModuleDiscard,
                    module_id: Some(module_id),
                };
            }
        };
        phv.metadata.buffer_tag = 1 << buffer_tag;

        // System-level module, first half.
        self.system.ingress(&mut phv, packet_len, self.cycle);

        // Tenant stages with per-module overlay configuration. A stage where
        // the module has a flat table (LPM/range) resolves the action index
        // through that table and executes it directly; otherwise the exact
        // CAM path runs as before.
        for stage in &mut self.stages {
            let config = StageConfig {
                key_extract: stage.key_extract.read(slot).copied().unwrap_or_default(),
                key_mask: stage.key_mask.read(slot).copied().unwrap_or_default(),
            };
            let translator = SegmentTranslator::new(stage.segment.read(slot));
            let MenshenStage { hw, lpm, range, .. } = stage;
            if let Some(table) = lpm.get(slot).and_then(|t| t.as_ref()) {
                let key = extract_key(&phv, &config.key_extract, &config.key_mask);
                if let Some(action) = table.lookup_key(&key) {
                    hw.execute_action(action as usize, &mut phv, &translator);
                }
            } else if let Some(table) = range.get(slot).and_then(|t| t.as_ref()) {
                let key = extract_key(&phv, &config.key_extract, &config.key_mask);
                if let Some(action) = table.lookup_key(&key) {
                    hw.execute_action(action as usize, &mut phv, &translator);
                }
            } else {
                hw.process(&mut phv, &config, &translator);
            }
        }

        if phv.metadata.discard {
            if let Some(runtime) = self.modules.get_mut(&module_id) {
                runtime.counters.packets_dropped += 1;
            }
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }

        // Deparse with the module's deparser entry.
        let mut packet = packet;
        let deparser_entry = self.deparser_table.read(slot).cloned().unwrap_or_default();
        if deparser::deparse(&mut packet, &phv, &deparser_entry).is_err() {
            if let Some(runtime) = self.modules.get_mut(&module_id) {
                runtime.counters.packets_dropped += 1;
            }
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }

        // System-level module, second half: routing / multicast.
        let dst_ip = packet.ipv4_dst().unwrap_or(Ipv4Address::new(0, 0, 0, 0));
        let ports = match self.system.egress(module_id, dst_ip, &phv) {
            ForwardingDecision::Unicast(port) => vec![port],
            ForwardingDecision::Multicast(ports) => ports,
        };

        if let Some(runtime) = self.modules.get_mut(&module_id) {
            runtime.counters.packets_out += 1;
            runtime.counters.bytes_out += packet.len() as u64;
        }

        Verdict::Forwarded {
            packet,
            ports,
            phv,
            module_id,
        }
    }

    /// Pushes a DPDK-style burst of packets through the data path, returning
    /// one verdict per packet in order.
    ///
    /// Verdict-for-verdict equivalent to calling [`process`](Self::process)
    /// on each packet, but the per-packet overheads are amortised across the
    /// burst (see the module docs): per-module overlay configuration and
    /// trivially-masked CAM lookups resolve once per `(module, burst)`, one
    /// scratch PHV is reused throughout, and per-module counters flush once
    /// at the end.
    ///
    /// When the `profiling` cargo feature is on, one packet in N (see
    /// [`set_profile_interval`](Self::set_profile_interval)) is timed per
    /// stage into [`stage_profile`](Self::stage_profile); without the
    /// feature the hooks compile to nothing.
    ///
    /// This is a convenience wrapper over
    /// [`process_batch_into`](Self::process_batch_into); hot paths that
    /// process many bursts (the testbed sweeps, the benches, the sharded
    /// runtime's workers) should call that directly with a reused verdict
    /// buffer and a borrowed burst, which also skips this wrapper's
    /// forwarded-packet clones.
    pub fn process_batch(&mut self, packets: Vec<Packet>) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(packets.len());
        self.process_batch_into(&packets, &mut verdicts);
        verdicts
    }

    /// Allocation-free variant of [`process_batch`](Self::process_batch):
    /// processes `packets` as one burst and writes one verdict per packet, in
    /// order, into `out` (which is cleared first). Callers that process many
    /// bursts — the testbed sweeps and the sharded runtime's workers — reuse
    /// one verdict buffer across bursts so the steady state performs no heap
    /// allocation at all for verdict storage.
    pub fn process_batch_into(&mut self, packets: &[Packet], out: &mut Vec<Verdict>) {
        out.clear();
        out.reserve(packets.len());
        let mut scratch = std::mem::take(&mut self.batch);
        scratch.begin(self.params.overlay_depth);
        for packet in packets {
            // 1-in-N sampled stage profiling; without the `profiling`
            // feature both calls are empty inlined no-ops.
            let mut sample = self.profiler.begin();
            let verdict = self.process_batched_packet(packet, &mut scratch, &mut sample);
            self.profiler.commit(sample);
            out.push(verdict);
        }
        // Flush the per-module counter deltas accumulated during the burst.
        for &slot in &scratch.touched {
            let slot_scratch = &mut scratch.slots[slot];
            let delta = std::mem::take(&mut slot_scratch.counters);
            if let Some(runtime) = self.modules.get_mut(&slot_scratch.module_id) {
                runtime.counters.packets_in += delta.packets_in;
                runtime.counters.packets_out += delta.packets_out;
                runtime.counters.packets_dropped += delta.packets_dropped;
                runtime.counters.bytes_in += delta.bytes_in;
                runtime.counters.bytes_out += delta.bytes_out;
            }
        }
        scratch.touched.clear();
        self.batch = scratch;
    }

    /// The accumulated hot-path stage profile: per-phase service-time
    /// histograms from 1-in-N sampling on the batch path. Permanently
    /// empty unless the crate is built with the `profiling` feature and
    /// sampling is enabled.
    pub fn stage_profile(&self) -> StageProfile {
        self.profiler.profile()
    }

    /// Sets the hot-path sampling interval: one packet in `interval` is
    /// timed per stage (0 disables sampling). Accumulated histograms are
    /// kept. A no-op without the `profiling` feature.
    pub fn set_profile_interval(&mut self, interval: u64) {
        self.profiler.set_interval(interval);
    }

    /// One packet of a burst. Mirrors [`process`](Self::process) exactly,
    /// except that per-module configuration comes out of the burst scratch
    /// and counters accumulate there. The packet is only cloned on the
    /// forwarding path (the deparser rewrites it); dropped packets touch no
    /// heap at all.
    fn process_batched_packet(
        &mut self,
        packet: &Packet,
        scratch: &mut BatchScratch,
        sample: &mut PacketSample,
    ) -> Verdict {
        self.cycle += 1;
        let decision = self.filter.classify(packet);
        let (module_id, buffer_tag) = match decision {
            FilterDecision::Reconfiguration => {
                sample.mark(Phase::Filter);
                return Verdict::Dropped {
                    reason: DropReason::UntrustedReconfiguration,
                    module_id: None,
                };
            }
            FilterDecision::DropNoVlan => {
                sample.mark(Phase::Filter);
                return Verdict::Dropped {
                    reason: DropReason::NoVlan,
                    module_id: None,
                };
            }
            FilterDecision::DropBeingReconfigured { module_id } => {
                if let Some(runtime) = self.modules.get_mut(&module_id) {
                    runtime.counters.packets_dropped += 1;
                }
                sample.mark(Phase::Filter);
                return Verdict::Dropped {
                    reason: DropReason::BeingReconfigured,
                    module_id: Some(module_id),
                };
            }
            FilterDecision::Data {
                module_id,
                buffer_tag,
            } => (module_id, buffer_tag),
        };

        let slot = match self.modules.get(&module_id).map(|m| m.slot) {
            Some(slot) => slot,
            None => {
                sample.mark(Phase::Filter);
                return Verdict::Dropped {
                    reason: DropReason::UnknownModule,
                    module_id: Some(module_id),
                };
            }
        };

        if scratch.slots[slot].epoch != scratch.epoch {
            self.resolve_slot(slot, module_id, scratch);
        }
        sample.mark(Phase::Filter);
        // Disjoint borrows of the scratch: slot state and the shared PHV.
        let slot_scratch = &mut scratch.slots[slot];
        let phv = &mut scratch.phv;

        let packet_len = packet.len();
        slot_scratch.counters.packets_in += 1;
        slot_scratch.counters.bytes_in += packet_len as u64;

        // Parse with the module's own parser entry, reusing the burst PHV.
        if parser::parse_into(phv, packet, &slot_scratch.parser, module_id).is_err() {
            slot_scratch.counters.packets_dropped += 1;
            sample.mark(Phase::Parse);
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }
        phv.metadata.buffer_tag = 1 << buffer_tag;
        sample.mark(Phase::Parse);

        // System-level module, first half.
        self.system.ingress(phv, packet_len, self.cycle);

        // Tenant stages with the burst-resolved overlay configuration. CAM
        // hits execute through `execute_hit` (which records the hit); flat
        // LPM/range tables resolve the action index directly.
        for (stage_idx, stage_scratch) in slot_scratch.stages.iter().enumerate() {
            let hit = match stage_scratch.lookup {
                ResolvedLookup::ConstantMiss => continue,
                ResolvedLookup::ConstantHit(cam_index) => Some(StageHit::Cam(cam_index)),
                ResolvedLookup::PerPacket => {
                    let key = extract_key(
                        phv,
                        &stage_scratch.config.key_extract,
                        &stage_scratch.config.key_mask,
                    );
                    self.stages[stage_idx]
                        .hw
                        .cam
                        .peek(&key, module_id)
                        .map(StageHit::Cam)
                }
                ResolvedLookup::PerPacketLpm => {
                    let key = extract_key(
                        phv,
                        &stage_scratch.config.key_extract,
                        &stage_scratch.config.key_mask,
                    );
                    self.stages[stage_idx].lpm[slot]
                        .as_ref()
                        .and_then(|table| table.lookup_key(&key))
                        .map(|action| StageHit::Action(action as usize))
                }
                ResolvedLookup::PerPacketRange => {
                    let key = extract_key(
                        phv,
                        &stage_scratch.config.key_extract,
                        &stage_scratch.config.key_mask,
                    );
                    self.stages[stage_idx].range[slot]
                        .as_ref()
                        .and_then(|table| table.lookup_key(&key))
                        .map(|action| StageHit::Action(action as usize))
                }
            };
            if let Some(hit) = hit {
                let translator = SegmentTranslator::new(stage_scratch.segment);
                let hw = &mut self.stages[stage_idx].hw;
                match hit {
                    StageHit::Cam(cam_index) => {
                        hw.execute_hit(cam_index, phv, &translator);
                    }
                    StageHit::Action(action) => {
                        hw.execute_action(action, phv, &translator);
                    }
                }
            }
        }
        sample.mark(Phase::Match);

        if phv.metadata.discard {
            slot_scratch.counters.packets_dropped += 1;
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }

        // Deparse with the module's deparser entry.
        let mut packet = packet.clone();
        if deparser::deparse(&mut packet, phv, &slot_scratch.deparser).is_err() {
            slot_scratch.counters.packets_dropped += 1;
            sample.mark(Phase::Deparse);
            return Verdict::Dropped {
                reason: DropReason::ModuleDiscard,
                module_id: Some(module_id),
            };
        }
        sample.mark(Phase::Deparse);

        // System-level module, second half: routing / multicast.
        let dst_ip = packet.ipv4_dst().unwrap_or(Ipv4Address::new(0, 0, 0, 0));
        let ports = match self.system.egress(module_id, dst_ip, phv) {
            ForwardingDecision::Unicast(port) => vec![port],
            ForwardingDecision::Multicast(ports) => ports,
        };

        slot_scratch.counters.packets_out += 1;
        slot_scratch.counters.bytes_out += packet.len() as u64;

        let verdict = Verdict::Forwarded {
            packet,
            ports,
            phv: phv.clone(),
            module_id,
        };
        sample.mark(Phase::Egress);
        verdict
    }

    /// Resolves one module slot's overlay configuration into the burst
    /// scratch: parser/deparser entries (cloned once per burst, reusing the
    /// scratch buffers' capacity), per-stage key extractor / key mask /
    /// segment entries, and — for stages whose key mask selects no key bits,
    /// so the masked key cannot depend on the packet — the CAM lookup itself.
    fn resolve_slot(&self, slot: usize, module_id: u16, scratch: &mut BatchScratch) {
        let epoch = scratch.epoch;
        let slot_scratch = &mut scratch.slots[slot];
        slot_scratch.epoch = epoch;
        slot_scratch.module_id = module_id;
        slot_scratch.counters = ModuleCounters::default();
        match self.parser_table.read(slot) {
            Some(entry) => slot_scratch.parser.clone_from(entry),
            None => slot_scratch.parser = ParserEntry::default(),
        }
        match self.deparser_table.read(slot) {
            Some(entry) => slot_scratch.deparser.clone_from(entry),
            None => slot_scratch.deparser = ParserEntry::default(),
        }
        slot_scratch.stages.clear();
        for stage in &self.stages {
            let config = StageConfig {
                key_extract: stage.key_extract.read(slot).copied().unwrap_or_default(),
                key_mask: stage.key_mask.read(slot).copied().unwrap_or_default(),
            };
            // The masked key is burst-constant when no key byte participates
            // in the match and the predicate bit cannot fire (either masked
            // out or not configured): every packet then produces the all-zero
            // masked key, so the CAM lookup resolves once per burst. Flat
            // LPM/range tables always look up per packet — the trie walk /
            // interval search *is* the amortised fast path.
            let lookup = if stage.lpm[slot].is_some() {
                ResolvedLookup::PerPacketLpm
            } else if stage.range[slot].is_some() {
                ResolvedLookup::PerPacketRange
            } else if config.key_mask.ignores_all_bytes()
                && (!config.key_mask.predicate || config.key_extract.predicate.is_none())
            {
                match stage.hw.cam.peek(&LookupKey::default(), module_id) {
                    Some(cam_index) => ResolvedLookup::ConstantHit(cam_index),
                    None => ResolvedLookup::ConstantMiss,
                }
            } else {
                ResolvedLookup::PerPacket
            };
            slot_scratch.stages.push(StageScratch {
                config,
                segment: stage.segment.read(slot),
                lookup,
            });
        }
        scratch.touched.push(slot);
    }

    /// Replays one dispatcher-broadcast [`StateDigest`] — the receive half of
    /// State-Compute Replication. The digest's field values rebuild exactly
    /// the PHV the module's parser would have produced for the digested
    /// packet (every input the module's matching and ALUs can observe is a
    /// parser-filled container), and the module's match-action stages run
    /// over it so every stateful ALU op executes precisely as it did on the
    /// shard that owned the packet. The replica's state words therefore
    /// advance bit-identically, while everything packet-shaped is skipped:
    /// no verdict, no traffic counters, no deparsing, no system-module
    /// forwarding. Stateful accesses land in the replay tallies
    /// ([`menshen_rmt::StatefulMemory::set_replay`]) so real-traffic
    /// statistics stay clean.
    ///
    /// Digests for unknown modules or modules currently marked as being
    /// reconfigured are ignored: the owning shard drops those packets, so a
    /// replica must not advance state for them either.
    pub fn apply_state_digest(&mut self, digest: &StateDigest) {
        let module_id = digest.module();
        let Some(slot) = self.modules.get(&module_id).map(|m| m.slot) else {
            return;
        };
        if slot < 32 && self.filter.bitmap() & (1 << slot) != 0 {
            return;
        }
        let mut phv = std::mem::take(&mut self.batch.phv);
        phv.reset();
        phv.module_id = module_id;
        for &(code, value) in digest.fields() {
            if let Ok(container) = ContainerRef::from_code(code) {
                phv.set(container, value);
            }
        }
        for stage in &mut self.stages {
            let config = StageConfig {
                key_extract: stage.key_extract.read(slot).copied().unwrap_or_default(),
                key_mask: stage.key_mask.read(slot).copied().unwrap_or_default(),
            };
            let translator = SegmentTranslator::new(stage.segment.read(slot));
            let key = extract_key(&phv, &config.key_extract, &config.key_mask);
            let MenshenStage { hw, lpm, range, .. } = stage;
            hw.stateful.set_replay(true);
            if let Some(table) = lpm.get(slot).and_then(|t| t.as_ref()) {
                if let Some(action) = table.lookup_key(&key) {
                    hw.execute_action(action as usize, &mut phv, &translator);
                }
            } else if let Some(table) = range.get(slot).and_then(|t| t.as_ref()) {
                if let Some(action) = table.lookup_key(&key) {
                    hw.execute_action(action as usize, &mut phv, &translator);
                }
            } else if let Some(cam_index) = hw.cam.peek(&key, module_id) {
                hw.execute_hit(cam_index, &mut phv, &translator);
            }
            hw.stateful.set_replay(false);
        }
        self.batch.phv = phv;
    }

    /// Marks a module as being reconfigured (software register write); its
    /// packets are dropped until [`end_reconfiguration`](Self::end_reconfiguration).
    pub fn begin_reconfiguration(&mut self, module: ModuleId) -> Result<()> {
        let slot = self.module_slot(module).ok_or(CoreError::UnknownModule {
            module_id: module.value(),
        })?;
        self.filter.mark_reconfiguring(slot);
        Ok(())
    }

    /// Clears a module's reconfiguration mark.
    pub fn end_reconfiguration(&mut self, module: ModuleId) -> Result<()> {
        let slot = self.module_slot(module).ok_or(CoreError::UnknownModule {
            module_id: module.value(),
        })?;
        self.filter.clear_reconfiguring(slot);
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Replication (sharded runtime support)
    // -----------------------------------------------------------------------

    /// Snapshots this pipeline's *configuration* into a fresh replica with
    /// cleared dynamic state: same loaded modules, overlay tables, CAM/action
    /// entries, space partitions, slot bindings and system-module routing
    /// state, but zeroed traffic counters, stateful memory, filter/CAM/
    /// stateful statistics, cycle counter and batch scratch.
    ///
    /// This is the replication hook the sharded runtime uses to stand up a
    /// new worker shard next to already-running ones (elastic scale-out):
    /// the replica forwards exactly like the original from the first packet,
    /// while per-shard counters and stateful ALU state start from zero so
    /// cross-shard aggregation (which sums) stays correct.
    pub fn config_replica(&self) -> MenshenPipeline {
        let mut replica = self.clone();
        replica.cycle = 0;
        replica.batch = BatchScratch::default();
        // Fresh profile, same sampling interval: replicas sum on snapshot.
        replica.profiler = HotPathProfiler::with_interval(self.profiler.interval());
        for runtime in replica.modules.values_mut() {
            runtime.counters = ModuleCounters::default();
        }
        replica.filter.reset_dynamic_state();
        replica.system.reset_stats();
        for stage in &mut replica.stages {
            let words = stage.hw.stateful.len() as u32;
            if words > 0 {
                stage
                    .hw
                    .stateful
                    .clear_range(0, words)
                    .expect("full-range clear is always in bounds");
            }
            stage.hw.stateful.reset_stats();
            stage.hw.cam.reset_stats();
            for table in stage.lpm.iter_mut().flatten() {
                table.reset_stats();
            }
            for table in stage.range.iter_mut().flatten() {
                table.reset_stats();
            }
        }
        replica
    }

    // -----------------------------------------------------------------------
    // State migration (live-resharding support)
    // -----------------------------------------------------------------------

    /// Snapshots one module's dynamic state — traffic counters plus the
    /// contents of its stateful segments — without modifying the pipeline.
    /// Returns `None` if the module is not loaded.
    pub fn export_module_state(&self, module: ModuleId) -> Option<ModuleState> {
        let runtime = self.modules.get(&module.value())?;
        let stages = self
            .stages
            .iter()
            .zip(runtime.stateful_ranges.iter())
            .map(|(stage, range)| {
                stage
                    .hw
                    .stateful
                    .snapshot_range(range.start as u32, range.len as u32)
                    .expect("load-time allocations are always in bounds")
            })
            .collect();
        Some(ModuleState {
            module_id: module.value(),
            counters: runtime.counters,
            stages,
        })
    }

    /// Extracts one module's dynamic state and clears it on this pipeline
    /// (counters zeroed, stateful segments zeroed) in one step — the "move"
    /// half of migration. After a take exactly one live copy of the state
    /// exists: the returned snapshot. Returns `None` if the module is not
    /// loaded.
    pub fn take_module_state(&mut self, module: ModuleId) -> Option<ModuleState> {
        let runtime = self.modules.get_mut(&module.value())?;
        let counters = std::mem::take(&mut runtime.counters);
        let ranges = runtime.stateful_ranges.clone();
        let stages = self
            .stages
            .iter_mut()
            .zip(ranges.iter())
            .map(|(stage, range)| {
                stage
                    .hw
                    .stateful
                    .take_range(range.start as u32, range.len as u32)
                    .expect("load-time allocations are always in bounds")
            })
            .collect();
        Some(ModuleState {
            module_id: module.value(),
            counters,
            stages,
        })
    }

    /// Replays an exported [`ModuleState`] into this pipeline by *addition*:
    /// counters sum and stateful words add element-wise (wrapping). For
    /// single-owner state the target segment is zero, so addition equals
    /// assignment; for replicated mergeable state addition is exactly the
    /// legal merge. The module must be loaded with the same per-stage
    /// segment shape the snapshot was taken from (configuration replicas
    /// always satisfy this), else [`CoreError::StateShapeMismatch`].
    pub fn import_module_state(&mut self, state: &ModuleState) -> Result<()> {
        let runtime = self
            .modules
            .get_mut(&state.module_id)
            .ok_or(CoreError::UnknownModule {
                module_id: state.module_id,
            })?;
        if state.stages.len() > runtime.stateful_ranges.len() {
            return Err(CoreError::StateShapeMismatch {
                module_id: state.module_id,
                detail: format!(
                    "snapshot spans {} stages, replica has {}",
                    state.stages.len(),
                    runtime.stateful_ranges.len()
                ),
            });
        }
        for (stage_index, (words, range)) in state
            .stages
            .iter()
            .zip(runtime.stateful_ranges.iter())
            .enumerate()
        {
            if words.len() > range.len {
                return Err(CoreError::StateShapeMismatch {
                    module_id: state.module_id,
                    detail: format!(
                        "stage {stage_index}: snapshot carries {} words, segment holds {}",
                        words.len(),
                        range.len
                    ),
                });
            }
        }
        runtime.counters.add(&state.counters);
        let ranges = runtime.stateful_ranges.clone();
        for ((stage, words), range) in self
            .stages
            .iter_mut()
            .zip(state.stages.iter())
            .zip(ranges.iter())
        {
            stage
                .hw
                .stateful
                .merge_range(range.start as u32, words)
                .expect("shape checked above");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{MatchRule, StageModuleConfig};
    use menshen_packet::PacketBuilder;
    use menshen_rmt::action::{AluInstruction, VliwAction};
    use menshen_rmt::config::ParseAction;
    use menshen_rmt::match_table::LookupKey;
    use menshen_rmt::phv::ContainerRef as C;
    use menshen_rmt::TABLE5;

    /// A minimal module: match on dst IP (h4(1)), rewrite the UDP dst port to
    /// `rewrite_port` and count packets in stateful word 0.
    fn simple_module(module_id: u16, dst_ip: u32, rewrite_port: u16) -> ModuleConfig {
        let mut config = ModuleConfig::empty(ModuleId::new(module_id), format!("m{module_id}"), 5);
        config.parser = ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap();
        config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
        let key = LookupKey::from_slots(
            [
                (0, 6),
                (0, 6),
                (u64::from(dst_ip), 4),
                (0, 4),
                (0, 2),
                (0, 2),
            ],
            false,
        );
        config.stages[0] = StageModuleConfig {
            key_extract: Some(KeyExtractEntry {
                slots_4b: [1, 0],
                ..Default::default()
            }),
            key_mask: Some(KeyMask::for_slots(
                [false, false, true, false, false, false],
                false,
            )),
            rules: vec![MatchRule {
                key,
                action: VliwAction::nop()
                    .with(C::h2(0), AluInstruction::set(rewrite_port))
                    .with(C::h4(7), AluInstruction::loadd(0)),
            }],
            stateful_words: 16,
            ..Default::default()
        };
        config
    }

    fn packet_for(module: u16, dst_last_octet: u8) -> Packet {
        PacketBuilder::udp_data(
            module,
            [10, 0, 0, 1],
            [10, 0, 0, dst_last_octet],
            5000,
            80,
            &[0u8; 8],
        )
    }

    #[test]
    fn load_and_process_single_module() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let report = pipeline
            .load_module(&simple_module(7, 0x0a00_0002, 9999))
            .unwrap();
        assert_eq!(report.slot, 0);
        assert!(report.reconfig_packets >= 5);
        assert_eq!(pipeline.loaded_modules(), vec![ModuleId::new(7)]);
        assert_eq!(pipeline.module_name(ModuleId::new(7)), Some("m7"));

        let verdict = pipeline.process(packet_for(7, 2));
        match verdict {
            Verdict::Forwarded {
                packet, module_id, ..
            } => {
                assert_eq!(module_id, 7);
                assert_eq!(packet.udp_dst_port(), Some(9999));
            }
            other => panic!("expected forwarded, got {other:?}"),
        }
        // The per-module stateful counter incremented through the segment table.
        assert_eq!(pipeline.read_stateful(ModuleId::new(7), 0, 0), Some(1));
        let counters = pipeline.module_counters(ModuleId::new(7)).unwrap();
        assert_eq!(counters.packets_in, 1);
        assert_eq!(counters.packets_out, 1);
    }

    #[test]
    fn module_state_export_take_import_round_trip() {
        let mut source = MenshenPipeline::new(TABLE5);
        let config = simple_module(3, 0x0a00_0002, 4444);
        source.load_module(&config).unwrap();
        // Drive traffic so both counters and stateful word 0 advance.
        for _ in 0..5 {
            assert!(source.process(packet_for(3, 2)).is_forwarded());
        }
        let exported = source.export_module_state(ModuleId::new(3)).unwrap();
        assert_eq!(exported.module_id, 3);
        assert_eq!(exported.counters.packets_in, 5);
        assert_eq!(exported.stages[0][0], 5, "loadd counter travelled");
        assert!(!exported.is_zero());
        assert_eq!(exported.word_count(), 16); // one 16-word stage-0 segment
                                               // Export alone does not disturb the source.
        assert_eq!(source.read_stateful(ModuleId::new(3), 0, 0), Some(5));

        // Take moves: the source is cleared.
        let taken = source.take_module_state(ModuleId::new(3)).unwrap();
        assert_eq!(taken, exported);
        assert_eq!(source.read_stateful(ModuleId::new(3), 0, 0), Some(0));
        assert_eq!(
            source.module_counters(ModuleId::new(3)).unwrap(),
            ModuleCounters::default()
        );

        // Import replays into a configuration replica, and the replica is
        // indistinguishable from the original afterwards.
        let mut target = source.config_replica();
        target.import_module_state(&taken).unwrap();
        assert_eq!(target.read_stateful(ModuleId::new(3), 0, 0), Some(5));
        assert_eq!(
            target.module_counters(ModuleId::new(3)).unwrap(),
            taken.counters
        );
        assert!(target.process(packet_for(3, 2)).is_forwarded());
        assert_eq!(target.read_stateful(ModuleId::new(3), 0, 0), Some(6));

        // Merging two extracts sums counters and words.
        let mut merged = taken.clone();
        merged.merge(&taken);
        assert_eq!(merged.counters.packets_in, 10);
        assert_eq!(merged.stages[0][0], 10);

        // Unknown modules surface as errors / None.
        assert!(source.export_module_state(ModuleId::new(9)).is_none());
        assert!(source.take_module_state(ModuleId::new(9)).is_none());
        let orphan = ModuleState {
            module_id: 9,
            ..ModuleState::default()
        };
        assert!(matches!(
            target.import_module_state(&orphan),
            Err(CoreError::UnknownModule { module_id: 9 })
        ));
        // Shape mismatches are refused instead of corrupting memory.
        let mut fat = taken.clone();
        fat.stages[0] = vec![1; 4096];
        assert!(matches!(
            target.import_module_state(&fat),
            Err(CoreError::StateShapeMismatch { module_id: 3, .. })
        ));
    }

    #[test]
    fn loaded_module_state_mergeability_matches_the_config_classification() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        // `loadd` counter: mergeable in both views.
        let additive = simple_module(1, 0x0a00_0002, 1111);
        // Same shape but with a `store`: non-mergeable in both views.
        let mut overwriting = simple_module(2, 0x0a00_0002, 2222);
        overwriting.stages[0].rules[0].action = VliwAction::nop()
            .with(C::h2(0), AluInstruction::set(2222))
            .with(C::h4(7), AluInstruction::store(C::h4(1), 0));
        // Pure rewrite, no state.
        let mut stateless = simple_module(3, 0x0a00_0002, 3333);
        stateless.stages[0].rules[0].action =
            VliwAction::nop().with(C::h2(0), AluInstruction::set(3333));

        for config in [&additive, &overwriting, &stateless] {
            pipeline.load_module(config).unwrap();
            let loaded = pipeline
                .module_state_mergeability(config.module_id)
                .expect("module is loaded");
            let from_config = config.state_mergeability();
            assert_eq!(
                std::mem::discriminant(&loaded),
                std::mem::discriminant(&from_config),
                "module {}: loaded {loaded:?} vs config {from_config:?}",
                config.module_id
            );
        }
        assert!(pipeline
            .module_state_mergeability(ModuleId::new(99))
            .is_none());
    }

    /// `simple_module` with the loadd swapped for a `store` of the matched
    /// dst IP — the canonical non-mergeable (last-writer-wins) program.
    fn storing_module(module_id: u16, dst_ip: u32, rewrite_port: u16) -> ModuleConfig {
        let mut config = simple_module(module_id, dst_ip, rewrite_port);
        config.stages[0].rules[0].action = VliwAction::nop()
            .with(C::h2(0), AluInstruction::set(rewrite_port))
            .with(C::h4(7), AluInstruction::store(C::h4(1), 2));
        config
    }

    #[test]
    fn loaded_module_execution_mode_matches_the_config_classification() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let additive = simple_module(1, 0x0a00_0002, 1111);
        let storing = storing_module(2, 0x0a00_0002, 2222);
        let pinned = storing_module(3, 0x0a00_0002, 3333).with_pinned(true);
        for config in [&additive, &storing, &pinned] {
            pipeline.load_module(config).unwrap();
            assert_eq!(
                pipeline.module_execution_mode(config.module_id),
                Some(config.execution_mode()),
                "module {}",
                config.module_id
            );
        }
        assert_eq!(
            pipeline.module_execution_mode(ModuleId::new(2)),
            Some(ExecutionMode::Replicated)
        );
        assert_eq!(
            pipeline.module_execution_mode(ModuleId::new(3)),
            Some(ExecutionMode::Pinned),
            "the pin hint survives loading"
        );
        assert!(pipeline.module_execution_mode(ModuleId::new(99)).is_none());
        let spec = pipeline.module_digest_spec(ModuleId::new(2)).unwrap();
        assert_eq!(spec.fields().len(), 2, "spec mirrors the installed parser");
    }

    #[test]
    fn digest_replay_advances_state_identically_to_processing() {
        let config = storing_module(7, 0x0a00_0002, 9999);
        let mut owner = MenshenPipeline::new(TABLE5);
        owner.load_module(&config).unwrap();
        let mut replica = owner.config_replica();
        let spec = owner.module_digest_spec(ModuleId::new(7)).unwrap();

        // The owner processes real packets; the replica sees only digests.
        for i in 0..5u8 {
            let packet = packet_for(7, 2);
            let digest = spec.extract(&packet, 0);
            assert!(owner.process(packet).is_forwarded());
            replica.apply_state_digest(&digest);
            assert_eq!(
                replica.read_stateful(ModuleId::new(7), 0, 2),
                owner.read_stateful(ModuleId::new(7), 0, 2),
                "replica word tracks the owner after packet {i}"
            );
        }
        // `store` wrote the matched dst IP into word 2 on both sides.
        assert_eq!(
            replica.read_stateful(ModuleId::new(7), 0, 2),
            Some(0x0a00_0002)
        );

        // Digests are bookkeeping: no counters, no verdicts, clean stats.
        assert_eq!(
            replica.module_counters(ModuleId::new(7)),
            Some(ModuleCounters::default())
        );

        // Non-matching packets replay as faithfully as matching ones (the
        // stage misses, so state is untouched on both sides).
        let miss = packet_for(7, 9);
        let digest = spec.extract(&miss, 0);
        assert!(owner.process(miss).is_forwarded());
        replica.apply_state_digest(&digest);
        assert_eq!(
            replica.read_stateful(ModuleId::new(7), 0, 2),
            owner.read_stateful(ModuleId::new(7), 0, 2)
        );

        // Digests for unknown or reconfiguring modules are ignored.
        let mut stray = spec.extract(&packet_for(7, 2), 0);
        replica.begin_reconfiguration(ModuleId::new(7)).unwrap();
        replica.apply_state_digest(&stray);
        replica.end_reconfiguration(ModuleId::new(7)).unwrap();
        assert_eq!(
            replica.read_stateful(ModuleId::new(7), 0, 2),
            Some(0x0a00_0002),
            "reconfiguring modules drop digests like they drop packets"
        );
        stray.set_before(1);
        let mut empty = MenshenPipeline::new(TABLE5);
        empty.apply_state_digest(&stray); // unknown module: no-op, no panic
    }

    #[test]
    fn two_modules_same_key_do_not_interfere() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        pipeline
            .load_module(&simple_module(2, 0x0a00_0002, 2222))
            .unwrap();

        let v1 = pipeline.process(packet_for(1, 2));
        let v2 = pipeline.process(packet_for(2, 2));
        assert_eq!(v1.packet().unwrap().udp_dst_port(), Some(1111));
        assert_eq!(v2.packet().unwrap().udp_dst_port(), Some(2222));
        // Stateful counters are independent despite both using local address 0.
        assert_eq!(pipeline.read_stateful(ModuleId::new(1), 0, 0), Some(1));
        assert_eq!(pipeline.read_stateful(ModuleId::new(2), 0, 0), Some(1));
    }

    #[test]
    fn unknown_and_untagged_packets_dropped() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        match pipeline.process(packet_for(9, 2)) {
            Verdict::Dropped { reason, module_id } => {
                assert_eq!(reason, DropReason::UnknownModule);
                assert_eq!(module_id, Some(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut builder = PacketBuilder::new();
        builder.vlan = None;
        let untagged = builder.build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]);
        assert!(matches!(
            pipeline.process(untagged),
            Verdict::Dropped {
                reason: DropReason::NoVlan,
                ..
            }
        ));
    }

    #[test]
    fn data_path_reconfiguration_is_rejected() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        // A tenant crafts a reconfiguration packet and sends it on the data path.
        let malicious = ReconfigCommand::write(
            ResourceKind::KeyMask,
            0,
            0,
            WritePayload::KeyMask(KeyMask::default()),
        )
        .to_packet();
        let before = pipeline.filter().reconfig_counter();
        let verdict = pipeline.process(malicious);
        assert!(matches!(
            verdict,
            Verdict::Dropped {
                reason: DropReason::UntrustedReconfiguration,
                ..
            }
        ));
        assert_eq!(
            pipeline.filter().reconfig_counter(),
            before,
            "no configuration write happened"
        );
        // The module still works (its key mask was not zeroed).
        let v = pipeline.process(packet_for(1, 2));
        assert_eq!(v.packet().unwrap().udp_dst_port(), Some(1111));
    }

    #[test]
    fn trusted_reconfiguration_packet_applies() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        let packet = ReconfigCommand::write(
            ResourceKind::SegmentTable,
            2,
            0,
            WritePayload::Segment(SegmentEntry::new(256, 32)),
        )
        .to_packet();
        pipeline.apply_reconfiguration_packet(&packet).unwrap();
        assert!(pipeline.filter().reconfig_counter() > 0);
    }

    #[test]
    fn module_packing_limited_by_overlay_depth_and_cam() {
        // With one match entry per stage per module, the CAM (16 entries)
        // limits packing to 16 modules (§5.2).
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let mut loaded = 0;
        for id in 1..=40u16 {
            let config = simple_module(id, 0x0a00_0002, id);
            if pipeline.load_module(&config).is_ok() {
                loaded += 1;
            }
        }
        assert_eq!(loaded, 16);
        // With no match entries, packing is limited by the 32 overlay slots.
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let mut loaded = 0;
        for id in 1..=40u16 {
            let config = ModuleConfig::empty(ModuleId::new(id), "tiny", 5);
            if pipeline.load_module(&config).is_ok() {
                loaded += 1;
            }
        }
        assert_eq!(loaded, 32);
        assert_eq!(pipeline.free_slots(), 0);
    }

    #[test]
    fn unload_frees_resources_and_clears_state() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        pipeline.process(packet_for(1, 2));
        assert_eq!(pipeline.read_stateful(ModuleId::new(1), 0, 0), Some(1));
        pipeline.unload_module(ModuleId::new(1)).unwrap();
        assert!(pipeline.loaded_modules().is_empty());
        assert!(pipeline.read_stateful(ModuleId::new(1), 0, 0).is_none());
        // A new module re-using the same slot and stateful range starts clean.
        pipeline
            .load_module(&simple_module(2, 0x0a00_0002, 2222))
            .unwrap();
        assert_eq!(pipeline.read_stateful(ModuleId::new(2), 0, 0), Some(0));
        // Unloading an unknown module errors.
        assert!(pipeline.unload_module(ModuleId::new(5)).is_err());
    }

    #[test]
    fn reconfiguration_drops_only_that_module() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        pipeline
            .load_module(&simple_module(2, 0x0a00_0002, 2222))
            .unwrap();
        pipeline.begin_reconfiguration(ModuleId::new(1)).unwrap();
        assert!(matches!(
            pipeline.process(packet_for(1, 2)),
            Verdict::Dropped {
                reason: DropReason::BeingReconfigured,
                ..
            }
        ));
        assert!(pipeline.process(packet_for(2, 2)).is_forwarded());
        pipeline.end_reconfiguration(ModuleId::new(1)).unwrap();
        assert!(pipeline.process(packet_for(1, 2)).is_forwarded());
        assert!(pipeline.begin_reconfiguration(ModuleId::new(9)).is_err());
    }

    #[test]
    fn update_module_changes_behaviour_without_touching_others() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        pipeline
            .load_module(&simple_module(2, 0x0a00_0002, 2222))
            .unwrap();
        pipeline.process(packet_for(2, 2));
        let before = pipeline.module_counters(ModuleId::new(2)).unwrap();

        pipeline
            .update_module(&simple_module(1, 0x0a00_0002, 7777))
            .unwrap();
        let v1 = pipeline.process(packet_for(1, 2));
        assert_eq!(v1.packet().unwrap().udp_dst_port(), Some(7777));
        let v2 = pipeline.process(packet_for(2, 2));
        assert_eq!(v2.packet().unwrap().udp_dst_port(), Some(2222));
        let after = pipeline.module_counters(ModuleId::new(2)).unwrap();
        assert_eq!(after.packets_in, before.packets_in + 1);
        // Updating an unloaded module errors.
        assert!(pipeline.update_module(&simple_module(9, 1, 1)).is_err());
    }

    fn verdicts_equivalent(a: &Verdict, b: &Verdict) -> bool {
        match (a, b) {
            (
                Verdict::Forwarded {
                    packet: pa,
                    ports: na,
                    phv: va,
                    module_id: ma,
                },
                Verdict::Forwarded {
                    packet: pb,
                    ports: nb,
                    phv: vb,
                    module_id: mb,
                },
            ) => pa.bytes() == pb.bytes() && na == nb && va == vb && ma == mb,
            (
                Verdict::Dropped {
                    reason: ra,
                    module_id: ma,
                },
                Verdict::Dropped {
                    reason: rb,
                    module_id: mb,
                },
            ) => ra == rb && ma == mb,
            _ => false,
        }
    }

    #[test]
    fn batch_matches_sequential_processing() {
        let mut sequential = MenshenPipeline::new(TABLE5);
        let mut batched = MenshenPipeline::new(TABLE5);
        for pipeline in [&mut sequential, &mut batched] {
            pipeline
                .load_module(&simple_module(1, 0x0a00_0002, 1111))
                .unwrap();
            pipeline
                .load_module(&simple_module(2, 0x0a00_0002, 2222))
                .unwrap();
        }

        // A mixed burst: both modules, an unknown module, an untagged packet,
        // and a data-path reconfiguration attempt.
        let mut burst = Vec::new();
        for i in 0..20u16 {
            burst.push(packet_for(1 + (i % 2), 2));
        }
        burst.push(packet_for(9, 2));
        let mut builder = PacketBuilder::new();
        builder.vlan = None;
        burst.push(builder.build_udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, &[]));
        burst.push(
            ReconfigCommand::write(
                ResourceKind::KeyMask,
                0,
                0,
                WritePayload::KeyMask(KeyMask::default()),
            )
            .to_packet(),
        );

        let sequential_verdicts: Vec<Verdict> = burst
            .iter()
            .map(|p| sequential.process(p.clone()))
            .collect();
        let batched_verdicts = batched.process_batch(burst);

        assert_eq!(sequential_verdicts.len(), batched_verdicts.len());
        for (i, (a, b)) in sequential_verdicts
            .iter()
            .zip(&batched_verdicts)
            .enumerate()
        {
            assert!(
                verdicts_equivalent(a, b),
                "verdict {i} diverged: {a:?} vs {b:?}"
            );
        }
        for id in [1u16, 2] {
            assert_eq!(
                sequential.module_counters(ModuleId::new(id)),
                batched.module_counters(ModuleId::new(id)),
                "module {id} counters diverged"
            );
            // Stateful memory (per-packet loadd counters) advanced identically.
            assert_eq!(
                sequential.read_stateful(ModuleId::new(id), 0, 0),
                batched.read_stateful(ModuleId::new(id), 0, 0)
            );
        }
    }

    #[test]
    fn batch_sees_reconfiguration_between_bursts() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();

        let verdicts = pipeline.process_batch(vec![packet_for(1, 2); 4]);
        assert!(verdicts.iter().all(Verdict::is_forwarded));
        assert_eq!(verdicts[0].packet().unwrap().udp_dst_port(), Some(1111));

        // Update the module between bursts; the next burst must re-resolve
        // the overlay configuration and see the new behaviour.
        pipeline
            .update_module(&simple_module(1, 0x0a00_0002, 7777))
            .unwrap();
        let verdicts = pipeline.process_batch(vec![packet_for(1, 2); 4]);
        assert_eq!(verdicts[0].packet().unwrap().udp_dst_port(), Some(7777));

        // And a module marked as being reconfigured drops its packets.
        pipeline.begin_reconfiguration(ModuleId::new(1)).unwrap();
        let verdicts = pipeline.process_batch(vec![packet_for(1, 2); 2]);
        assert!(verdicts.iter().all(|v| matches!(
            v,
            Verdict::Dropped {
                reason: DropReason::BeingReconfigured,
                ..
            }
        )));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&simple_module(1, 0x0a00_0002, 1111))
            .unwrap();
        assert!(pipeline.process_batch(Vec::new()).is_empty());
        assert_eq!(
            pipeline.module_counters(ModuleId::new(1)),
            Some(ModuleCounters::default())
        );
    }

    #[test]
    fn system_module_routes_forwarded_packets() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .system_mut()
            .add_route(Ipv4Address::new(10, 0, 0, 2), 42);
        pipeline.system_mut().set_default_port(1);
        let mut config = simple_module(3, 0x0a00_0002, 8080);
        // Remove the explicit port so the system module decides.
        config.stages[0].rules[0].action =
            VliwAction::nop().with(C::h2(0), AluInstruction::set(8080));
        pipeline.load_module(&config).unwrap();
        match pipeline.process(packet_for(3, 2)) {
            Verdict::Forwarded { ports, .. } => assert_eq!(ports, vec![42]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pipeline.system().stats().link_packets > 0);
    }

    /// An LPM firewall-style module: the longest matching dst-IP prefix
    /// selects which shared action rewrites the UDP dst port.
    fn lpm_module(module_id: u16, rules: Vec<LpmMatchRule>) -> ModuleConfig {
        let mut config =
            ModuleConfig::empty(ModuleId::new(module_id), format!("lpm{module_id}"), 5);
        config.parser = ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap();
        config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
        config.stages[0] = StageModuleConfig {
            key_extract: Some(KeyExtractEntry {
                slots_4b: [1, 0],
                ..Default::default()
            }),
            key_mask: Some(KeyMask::for_slots(
                [false, false, true, false, false, false],
                false,
            )),
            // 4B slot 0 sits at key byte offset 12.
            match_kind: MatchKind::Lpm { key_offset: 12 },
            table_actions: vec![
                VliwAction::nop().with(C::h2(0), AluInstruction::set(1111)),
                VliwAction::nop().with(C::h2(0), AluInstruction::set(2222)),
            ],
            lpm_rules: rules,
            ..Default::default()
        };
        config
    }

    fn default_lpm_rules() -> Vec<LpmMatchRule> {
        vec![
            LpmMatchRule {
                prefix: 0x0a00_0000, // 10.0.0.0/8
                prefix_len: 8,
                action: 0,
            },
            LpmMatchRule {
                prefix: 0x0a00_0000, // 10.0.0.0/24
                prefix_len: 24,
                action: 1,
            },
        ]
    }

    fn packet_to(module: u16, dst: [u8; 4], dst_port: u16) -> Packet {
        PacketBuilder::udp_data(module, [10, 0, 0, 1], dst, 5000, dst_port, &[0u8; 8])
    }

    fn forwarded_port(verdict: &Verdict) -> Option<u16> {
        verdict.packet().and_then(|p| p.udp_dst_port())
    }

    #[test]
    fn lpm_module_longest_prefix_wins_end_to_end() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let report = pipeline
            .load_module(&lpm_module(9, default_lpm_rules()))
            .unwrap();
        // parser + deparser + key extract + key mask + 2 actions + 2 rules
        assert_eq!(report.reconfig_packets, 8);

        // 10.0.0.5 matches both prefixes; /24 wins.
        let v = pipeline.process(packet_to(9, [10, 0, 0, 5], 80));
        assert_eq!(forwarded_port(&v), Some(2222));
        // 10.1.0.5 only matches /8.
        let v = pipeline.process(packet_to(9, [10, 1, 0, 5], 80));
        assert_eq!(forwarded_port(&v), Some(1111));
        // 11.0.0.1 misses: the packet passes through unchanged.
        let v = pipeline.process(packet_to(9, [11, 0, 0, 1], 80));
        assert_eq!(forwarded_port(&v), Some(80));

        let table = pipeline.lpm_table(ModuleId::new(9), 0).unwrap();
        assert_eq!(table.len(), 2);
        let (lookups, hits) = table.stats();
        assert_eq!(lookups, 3);
        assert_eq!(hits, 2);
    }

    #[test]
    fn lpm_batch_path_matches_sequential() {
        let packets: Vec<Packet> = [
            [10, 0, 0, 5],
            [10, 0, 1, 9],
            [10, 200, 0, 1],
            [11, 0, 0, 1],
            [10, 0, 0, 255],
        ]
        .iter()
        .map(|&dst| packet_to(9, dst, 80))
        .collect();

        let mut sequential = MenshenPipeline::new(TABLE5);
        sequential
            .load_module(&lpm_module(9, default_lpm_rules()))
            .unwrap();
        let expected: Vec<Verdict> = packets
            .iter()
            .map(|p| sequential.process(p.clone()))
            .collect();

        let mut batched = MenshenPipeline::new(TABLE5);
        batched
            .load_module(&lpm_module(9, default_lpm_rules()))
            .unwrap();
        let got = batched.process_batch(packets);

        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(got.iter()) {
            assert!(verdicts_equivalent(a, b), "{a:?} vs {b:?}");
        }
        assert_eq!(
            sequential.module_counters(ModuleId::new(9)),
            batched.module_counters(ModuleId::new(9)),
        );
    }

    /// A range-match module: the UDP dst port (2B slot 0, key offset 20)
    /// selects an action by priority-ordered interval.
    fn range_module(module_id: u16, rules: Vec<RangeMatchRule>) -> ModuleConfig {
        let mut config =
            ModuleConfig::empty(ModuleId::new(module_id), format!("rng{module_id}"), 5);
        config.parser = ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap();
        config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
        config.stages[0] = StageModuleConfig {
            key_extract: Some(KeyExtractEntry {
                slots_4b: [1, 0],
                ..Default::default()
            }),
            key_mask: Some(KeyMask::for_slots(
                [false, false, false, false, true, false],
                false,
            )),
            match_kind: MatchKind::Range {
                key_offset: 20,
                key_width: 2,
            },
            table_actions: vec![
                VliwAction::nop().with(C::h2(0), AluInstruction::set(1111)),
                VliwAction::nop().with(C::h2(0), AluInstruction::set(2222)),
            ],
            range_rules: rules,
            ..Default::default()
        };
        config
    }

    #[test]
    fn range_module_priority_and_interval_semantics() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&range_module(
                11,
                vec![
                    RangeMatchRule {
                        lo: 0,
                        hi: 99,
                        priority: 1,
                        action: 0,
                    },
                    RangeMatchRule {
                        lo: 80,
                        hi: 80,
                        priority: 5,
                        action: 1,
                    },
                ],
            ))
            .unwrap();

        // Port 80 lies in both ranges; the higher-priority exact port wins.
        let v = pipeline.process(packet_to(11, [10, 0, 0, 2], 80));
        assert_eq!(forwarded_port(&v), Some(2222));
        // Port 90 only matches the wide range.
        let v = pipeline.process(packet_to(11, [10, 0, 0, 2], 90));
        assert_eq!(forwarded_port(&v), Some(1111));
        // Port 443 misses.
        let v = pipeline.process(packet_to(11, [10, 0, 0, 2], 443));
        assert_eq!(forwarded_port(&v), Some(443));
        assert!(pipeline.range_table(ModuleId::new(11), 0).is_some());
    }

    #[test]
    fn incremental_rule_install_keeps_module_live() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        // Start with an empty LPM table: everything passes through.
        pipeline.load_module(&lpm_module(9, Vec::new())).unwrap();
        let v = pipeline.process(packet_to(9, [10, 0, 0, 5], 80));
        assert_eq!(forwarded_port(&v), Some(80));

        // Stream rules in while the module keeps forwarding (no
        // begin/end_reconfiguration around the install).
        let before = pipeline.filter().reconfig_counter();
        let installed = pipeline
            .install_rules(
                ModuleId::new(9),
                0,
                &default_lpm_rules()
                    .into_iter()
                    .map(TableRule::Lpm)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(installed, 2);
        assert_eq!(pipeline.filter().reconfig_counter(), before + 2);

        let v = pipeline.process(packet_to(9, [10, 0, 0, 5], 80));
        assert_eq!(forwarded_port(&v), Some(2222));
        // Counters show uninterrupted forwarding: both packets went through.
        let counters = pipeline.module_counters(ModuleId::new(9)).unwrap();
        assert_eq!(counters.packets_in, 2);
        assert_eq!(counters.packets_out, 2);
    }

    #[test]
    fn daisy_chain_carries_flat_table_rules() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let report = pipeline.load_module(&lpm_module(9, Vec::new())).unwrap();
        // A single LPM rule write addressed to the module's slot, carried by
        // a real reconfiguration packet over the trusted path.
        let packet = ReconfigCommand::write(
            ResourceKind::LpmTable,
            0,
            report.slot as u16,
            WritePayload::LpmRule(LpmMatchRule {
                prefix: 0x0a00_0000,
                prefix_len: 8,
                action: 0,
            }),
        )
        .to_packet();
        pipeline.apply_reconfiguration_packet(&packet).unwrap();
        let v = pipeline.process(packet_to(9, [10, 9, 9, 9], 80));
        assert_eq!(forwarded_port(&v), Some(1111));
    }

    #[test]
    fn flat_rule_action_indices_stay_inside_the_partition() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&lpm_module(9, Vec::new())).unwrap();
        // Action index 7 is outside the module's two-entry action range: the
        // write is rejected, so a module cannot execute another's actions.
        let err = pipeline
            .install_rules(
                ModuleId::new(9),
                0,
                &[TableRule::Lpm(LpmMatchRule {
                    prefix: 0,
                    prefix_len: 0,
                    action: 7,
                })],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadReconfigPacket(_)), "{err:?}");
    }

    #[test]
    fn mismatched_match_kind_rules_rejected_at_load() {
        let mut config = lpm_module(9, default_lpm_rules());
        config.stages[0].rules.push(MatchRule {
            key: LookupKey::default(),
            action: VliwAction::nop(),
        });
        let mut pipeline = MenshenPipeline::new(TABLE5);
        let err = pipeline.load_module(&config).unwrap_err();
        assert!(matches!(err, CoreError::CheckFailed(_)), "{err:?}");
        // Nothing was allocated by the rejected load.
        assert_eq!(pipeline.free_slots(), TABLE5.overlay_depth);
        assert!(pipeline
            .load_module(&lpm_module(9, default_lpm_rules()))
            .is_ok());
    }

    #[test]
    fn lpm_and_exact_modules_coexist_without_interference() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&lpm_module(9, default_lpm_rules()))
            .unwrap();
        pipeline
            .load_module(&simple_module(7, 0x0a00_0002, 9999))
            .unwrap();

        // Same dst IP, different modules, different match engines.
        let v = pipeline.process(packet_to(9, [10, 0, 0, 2], 80));
        assert_eq!(forwarded_port(&v), Some(2222));
        let v = pipeline.process(packet_for(7, 2));
        assert_eq!(forwarded_port(&v), Some(9999));

        // Unloading the LPM module frees its flat table and leaves the
        // exact module untouched.
        pipeline.unload_module(ModuleId::new(9)).unwrap();
        assert!(pipeline.lpm_table(ModuleId::new(9), 0).is_none());
        let v = pipeline.process(packet_for(7, 2));
        assert_eq!(forwarded_port(&v), Some(9999));
    }

    #[test]
    fn config_replica_keeps_flat_tables_and_zeroes_their_stats() {
        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline
            .load_module(&lpm_module(9, default_lpm_rules()))
            .unwrap();
        pipeline.process(packet_to(9, [10, 0, 0, 5], 80));
        let (lookups, _) = pipeline.lpm_table(ModuleId::new(9), 0).unwrap().stats();
        assert_eq!(lookups, 1);

        let mut replica = pipeline.config_replica();
        let (lookups, hits) = replica.lpm_table(ModuleId::new(9), 0).unwrap().stats();
        assert_eq!((lookups, hits), (0, 0));
        let v = replica.process(packet_to(9, [10, 0, 0, 5], 80));
        assert_eq!(forwarded_port(&v), Some(2222));
    }

    #[test]
    fn lpm_module_with_stateful_action_classifies_mergeable() {
        let mut config = lpm_module(9, default_lpm_rules());
        config.stages[0].table_actions[0] = VliwAction::nop()
            .with(C::h2(0), AluInstruction::set(1111))
            .with(C::h4(7), AluInstruction::loadd(0));
        config.stages[0].stateful_words = 16;
        assert_eq!(config.state_mergeability(), StateMergeability::Mergeable);

        let mut pipeline = MenshenPipeline::new(TABLE5);
        pipeline.load_module(&config).unwrap();
        assert_eq!(
            pipeline.module_state_mergeability(ModuleId::new(9)),
            Some(StateMergeability::Mergeable)
        );
        // The stateful counter really runs behind the LPM hit.
        pipeline.process(packet_to(9, [10, 1, 2, 3], 80));
        assert_eq!(pipeline.read_stateful(ModuleId::new(9), 0, 0), Some(1));
    }
}
