//! Sampled hot-path profiling: 1-in-N per-stage timing inside
//! [`MenshenPipeline::process_batch`](crate::pipeline::MenshenPipeline::process_batch).
//!
//! The batched hot path runs at millions of packets per second, so
//! unconditional `Instant::now()` pairs around every stage would cost more
//! than some stages themselves. Instead the pipeline samples **one packet
//! in N** (default [`DEFAULT_PROFILE_INTERVAL`]): the unsampled packets pay
//! one counter decrement and a predictable branch, and the sampled packet
//! pays the clock reads, attributing wall time to the five pipeline phases
//! in [`PROFILE_PHASES`]:
//!
//! 1. `filter` — packet-filter classification and module-slot resolution;
//! 2. `parse` — header parsing into the PHV;
//! 3. `match` — system ingress plus the per-stage match/action loop;
//! 4. `deparse` — PHV write-back into the packet bytes;
//! 5. `egress` — routing and verdict construction.
//!
//! Everything is gated behind the `profiling` cargo feature. Without it,
//! [`HotPathProfiler`] and [`PacketSample`] are zero-sized types whose
//! methods are empty `#[inline(always)]` bodies — the hot path compiles to
//! exactly what it was before. With the feature on, the measured overhead
//! on the batch hot path is committed in the `obs_overhead` section of
//! `BENCH_throughput.json` (sampling disabled vs 1-in-256).
//!
//! Early-dropped packets (no VLAN, unknown module, …) commit whatever
//! phases they reached — partial samples are real cost attribution, not
//! noise — so phase histograms may have differing counts.

use crate::telemetry::LatencyHistogram;

/// The five hot-path phases, in pipeline order. Index with [`Phase`].
pub const PROFILE_PHASES: [&str; 5] = ["filter", "parse", "match", "deparse", "egress"];

/// The default sampling interval: time one packet in 256.
pub const DEFAULT_PROFILE_INTERVAL: u64 = 256;

/// A hot-path phase (indexes [`PROFILE_PHASES`] and
/// [`StageProfile::phase_ns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Packet-filter classification + module-slot resolution.
    Filter = 0,
    /// Header parsing into the PHV.
    Parse = 1,
    /// System ingress + the per-stage match/action loop.
    Match = 2,
    /// PHV write-back into packet bytes.
    Deparse = 3,
    /// Routing and verdict construction.
    Egress = 4,
}

/// The accumulated per-phase timing distributions of one pipeline.
///
/// Always available as a type (so snapshots and exporters need no feature
/// gates); without the `profiling` feature it is permanently empty.
/// Merges bucket-exactly like everything else in the telemetry plane, so
/// per-shard profiles fold into one fleet view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageProfile {
    /// The sampling interval the profile was recorded at (0 = disabled).
    pub interval: u64,
    /// Number of packets sampled.
    pub sampled: u64,
    /// Per-phase service-time histograms, indexed by [`Phase`].
    pub phase_ns: [LatencyHistogram; PROFILE_PHASES.len()],
}

impl StageProfile {
    /// True when no packet was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.sampled == 0
    }

    /// Folds another profile in (exact bucket addition). Intervals may
    /// differ across sources (e.g. a reshard changed the setting); the
    /// merged profile keeps the largest, purely as a descriptive field.
    pub fn merge(&mut self, other: &StageProfile) {
        self.interval = self.interval.max(other.interval);
        self.sampled += other.sampled;
        for (mine, theirs) in self.phase_ns.iter_mut().zip(other.phase_ns.iter()) {
            mine.merge(theirs);
        }
    }
}

#[cfg(feature = "profiling")]
mod imp {
    use super::{Phase, StageProfile, DEFAULT_PROFILE_INTERVAL, PROFILE_PHASES};
    use std::time::Instant;

    /// The per-pipeline sampling profiler (feature `profiling`: live).
    #[derive(Debug, Clone)]
    pub struct HotPathProfiler {
        interval: u64,
        countdown: u64,
        profile: StageProfile,
    }

    impl Default for HotPathProfiler {
        fn default() -> Self {
            HotPathProfiler::with_interval(DEFAULT_PROFILE_INTERVAL)
        }
    }

    impl HotPathProfiler {
        /// A profiler sampling one packet in `interval` (0 disables).
        pub fn with_interval(interval: u64) -> Self {
            HotPathProfiler {
                interval,
                countdown: interval,
                profile: StageProfile {
                    interval,
                    ..StageProfile::default()
                },
            }
        }

        /// Changes the sampling interval (0 disables). Accumulated phase
        /// histograms are kept.
        pub fn set_interval(&mut self, interval: u64) {
            self.interval = interval;
            self.countdown = interval;
            self.profile.interval = interval;
        }

        /// The configured interval (0 = disabled).
        pub fn interval(&self) -> u64 {
            self.interval
        }

        /// Called once per packet on the hot path. Returns an active sample
        /// for the 1-in-N packet, an inert one otherwise.
        #[inline]
        pub fn begin(&mut self) -> PacketSample {
            if self.interval == 0 {
                return PacketSample::inert();
            }
            self.countdown -= 1;
            if self.countdown == 0 {
                self.countdown = self.interval;
                PacketSample {
                    last: Some(Instant::now()),
                    durs: [0; PROFILE_PHASES.len()],
                    marked: [false; PROFILE_PHASES.len()],
                }
            } else {
                PacketSample::inert()
            }
        }

        /// Folds a finished sample into the profile. Phases the packet
        /// never reached (early drop) are simply absent from this sample.
        #[inline]
        pub fn commit(&mut self, sample: PacketSample) {
            if sample.last.is_none() {
                return;
            }
            self.profile.sampled += 1;
            for (index, hist) in self.profile.phase_ns.iter_mut().enumerate() {
                if sample.marked[index] {
                    hist.record(sample.durs[index]);
                }
            }
        }

        /// A copy of the accumulated profile.
        pub fn profile(&self) -> StageProfile {
            self.profile.clone()
        }
    }

    /// One packet's in-flight phase timings (feature `profiling`: live).
    #[derive(Debug)]
    pub struct PacketSample {
        last: Option<Instant>,
        durs: [u64; PROFILE_PHASES.len()],
        marked: [bool; PROFILE_PHASES.len()],
    }

    impl PacketSample {
        #[inline]
        fn inert() -> Self {
            PacketSample {
                last: None,
                durs: [0; PROFILE_PHASES.len()],
                marked: [false; PROFILE_PHASES.len()],
            }
        }

        /// Closes the phase that just ran: attributes the time since the
        /// previous mark (or since `begin`) to `phase`.
        #[inline]
        pub fn mark(&mut self, phase: Phase) {
            if let Some(last) = self.last {
                let now = Instant::now();
                self.durs[phase as usize] += now.duration_since(last).as_nanos() as u64;
                self.marked[phase as usize] = true;
                self.last = Some(now);
            }
        }
    }
}

#[cfg(not(feature = "profiling"))]
mod imp {
    use super::{Phase, StageProfile};

    /// The per-pipeline sampling profiler (feature `profiling` off: a
    /// zero-sized no-op, so the hot path is untouched).
    #[derive(Debug, Clone, Default)]
    pub struct HotPathProfiler;

    impl HotPathProfiler {
        /// No-op constructor (feature off).
        pub fn with_interval(_interval: u64) -> Self {
            HotPathProfiler
        }

        /// No-op (feature off).
        pub fn set_interval(&mut self, _interval: u64) {}

        /// Always 0 (feature off).
        pub fn interval(&self) -> u64 {
            0
        }

        /// No-op (feature off).
        #[inline(always)]
        pub fn begin(&mut self) -> PacketSample {
            PacketSample
        }

        /// No-op (feature off).
        #[inline(always)]
        pub fn commit(&mut self, _sample: PacketSample) {}

        /// Always empty (feature off).
        pub fn profile(&self) -> StageProfile {
            StageProfile::default()
        }
    }

    /// One packet's in-flight phase timings (feature off: zero-sized).
    #[derive(Debug)]
    pub struct PacketSample;

    impl PacketSample {
        /// No-op (feature off).
        #[inline(always)]
        pub fn mark(&mut self, _phase: Phase) {}
    }
}

pub use imp::{HotPathProfiler, PacketSample};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_merges_bucket_exactly() {
        let mut a = StageProfile::default();
        let mut b = StageProfile::default();
        a.interval = 256;
        a.sampled = 2;
        a.phase_ns[Phase::Parse as usize].record(100);
        a.phase_ns[Phase::Match as usize].record(900);
        b.interval = 64;
        b.sampled = 1;
        b.phase_ns[Phase::Parse as usize].record(300);
        a.merge(&b);
        assert_eq!(a.sampled, 3);
        assert_eq!(a.interval, 256);
        assert_eq!(a.phase_ns[Phase::Parse as usize].count(), 2);
        assert_eq!(a.phase_ns[Phase::Match as usize].count(), 1);
        assert_eq!(a.phase_ns[Phase::Egress as usize].count(), 0);
        assert!(!a.is_empty());
        assert!(StageProfile::default().is_empty());
    }

    #[cfg(feature = "profiling")]
    #[test]
    fn profiler_samples_one_in_n() {
        let mut profiler = HotPathProfiler::with_interval(4);
        for _ in 0..16 {
            let mut sample = profiler.begin();
            sample.mark(Phase::Filter);
            sample.mark(Phase::Parse);
            profiler.commit(sample);
        }
        let profile = profiler.profile();
        assert_eq!(profile.sampled, 4, "exactly 1 in 4 packets sampled");
        assert_eq!(profile.interval, 4);
        assert_eq!(profile.phase_ns[Phase::Filter as usize].count(), 4);
        assert_eq!(profile.phase_ns[Phase::Parse as usize].count(), 4);
        assert_eq!(
            profile.phase_ns[Phase::Match as usize].count(),
            0,
            "unreached phases are absent, not zero-filled"
        );

        profiler.set_interval(0);
        for _ in 0..16 {
            let sample = profiler.begin();
            profiler.commit(sample);
        }
        assert_eq!(profiler.profile().sampled, 4, "interval 0 disables");
    }

    #[cfg(not(feature = "profiling"))]
    #[test]
    fn disabled_profiler_is_inert() {
        let mut profiler = HotPathProfiler::with_interval(1);
        let mut sample = profiler.begin();
        sample.mark(Phase::Filter);
        profiler.commit(sample);
        assert!(profiler.profile().is_empty());
        assert_eq!(profiler.interval(), 0);
        assert_eq!(std::mem::size_of::<PacketSample>(), 0);
    }
}
