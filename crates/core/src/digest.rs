//! Per-packet state digests for State-Compute Replication (SCR).
//!
//! A non-mergeable stateful module cannot split its state across shard
//! replicas (last-writer-wins `store` has no well-defined merge), and until
//! this layer existed the runtime's only recourse was pinning the whole
//! tenant to one shard. SCR (arXiv 2309.14647) removes that ceiling by
//! replicating the state *computation* instead of partitioning the state:
//! every shard keeps a full copy of the module's stateful words, and for
//! every packet a shard does **not** receive, it receives a compact
//! [`StateDigest`] carrying exactly the header fields the module's parser
//! would have extracted. Replaying the digest through the module's own
//! match-action stages drives the ALUs over the same dataflow the owning
//! shard executed, so every replica's state words stay bit-identical by
//! construction.
//!
//! The digest is sufficient because the whole per-module dataflow — key
//! extraction, match predicates, and every ALU operand — reads only PHV
//! header containers, which are filled exclusively by the module's
//! [`ParserEntry`] actions (packet metadata never feeds matching or ALUs).
//! A [`DigestSpec`] is therefore just the module's parser projected into a
//! packet-to-container field list; [`DigestSpec::extract`] mirrors the
//! parser's wire reads exactly, including the short-packet zero-fill.

use menshen_packet::Packet;
use menshen_rmt::config::ParserEntry;
use menshen_rmt::phv::ContainerRef;

/// Maximum parser fields a digest can carry. Modules whose parsers extract
/// more fields than this fall back to tenant-affine pinning; the cap keeps
/// [`StateDigest`] a small, `Copy`, allocation-free ring item.
pub const DIGEST_MAX_FIELDS: usize = 8;

/// One field of a digest spec: where the module's parser reads it from the
/// wire and which PHV container it lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestField {
    /// Byte offset into the packet's header region.
    pub offset: u8,
    /// Destination PHV container (its width sets the read width).
    pub container: ContainerRef,
}

/// The per-module recipe for turning a packet into a [`StateDigest`]:
/// the minimal field set the module's stateful dataflow can observe,
/// derived from its parser entry at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestSpec {
    module: u16,
    fields: Vec<DigestField>,
}

impl DigestSpec {
    /// Builds the spec from a module's parser entry, or `None` if the parser
    /// extracts more than [`DIGEST_MAX_FIELDS`] fields (such modules stay
    /// pinned).
    pub fn from_parser(module: u16, parser: &ParserEntry) -> Option<Self> {
        if parser.actions.len() > DIGEST_MAX_FIELDS {
            return None;
        }
        Some(DigestSpec {
            module,
            fields: parser
                .actions
                .iter()
                .map(|action| DigestField {
                    offset: action.offset,
                    container: action.container,
                })
                .collect(),
        })
    }

    /// The module this spec digests for.
    pub fn module(&self) -> u16 {
        self.module
    }

    /// The projected parser fields.
    pub fn fields(&self) -> &[DigestField] {
        &self.fields
    }

    /// Extracts a digest from `packet`, to be replayed before the receiving
    /// shard's packet at index `before`. The wire reads mirror the parser
    /// exactly: big-endian at the field's offset, container-width bytes,
    /// zero when the packet is too short.
    pub fn extract(&self, packet: &Packet, before: u32) -> StateDigest {
        let mut digest = StateDigest {
            module: self.module,
            before,
            len: self.fields.len() as u8,
            fields: [(0, 0); DIGEST_MAX_FIELDS],
        };
        for (slot, field) in digest.fields.iter_mut().zip(self.fields.iter()) {
            let value = packet
                .read_be(usize::from(field.offset), field.container.width_bytes())
                .unwrap_or(0);
            *slot = (field.container.code(), value);
        }
        digest
    }
}

/// A compact record of one packet's parser-visible fields for one replicated
/// module, broadcast by the dispatcher to every shard that does not receive
/// the packet itself. `Copy` and fixed-size so digest bursts ride the same
/// allocation-free SPSC rings as packet bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateDigest {
    module: u16,
    before: u32,
    len: u8,
    /// `(container code, value)` pairs; only the first `len` are meaningful.
    fields: [(u8, u64); DIGEST_MAX_FIELDS],
}

impl StateDigest {
    /// The module whose state this digest advances.
    pub fn module(&self) -> u16 {
        self.module
    }

    /// Index of the first packet in the receiving shard's burst that must be
    /// processed *after* this digest (the global-order interleave point).
    pub fn before(&self) -> u32 {
        self.before
    }

    /// Rewrites the interleave point (used when a pending stream is re-chunked
    /// into ring-sized bursts).
    pub fn set_before(&mut self, before: u32) {
        self.before = before;
    }

    /// The populated `(container code, value)` pairs.
    pub fn fields(&self) -> &[(u8, u64)] {
        &self.fields[..usize::from(self.len)]
    }

    /// The modelled wire cost of shipping this digest, in bytes: a 7-byte
    /// header (module + interleave point + field count) plus 9 bytes per
    /// field (container code + 64-bit value). This is the explicit
    /// digest-overhead knob the benches record as bytes/packet.
    pub fn wire_bytes(&self) -> usize {
        7 + 9 * usize::from(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menshen_packet::PacketBuilder;
    use menshen_rmt::config::ParseAction;
    use menshen_rmt::phv::ContainerRef as C;

    fn parser() -> ParserEntry {
        ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn spec_projects_parser_fields() {
        let spec = DigestSpec::from_parser(9, &parser()).unwrap();
        assert_eq!(spec.module(), 9);
        assert_eq!(spec.fields().len(), 2);
        assert_eq!(spec.fields()[0].offset, 34);
        assert_eq!(spec.fields()[0].container, C::h4(1));
    }

    #[test]
    fn oversized_parsers_are_rejected() {
        let actions: Vec<ParseAction> = (0..9)
            .map(|i| ParseAction::new(14 + 2 * i, C::h2(i % 8)).unwrap())
            .collect();
        let parser = ParserEntry::new(actions).unwrap();
        assert!(DigestSpec::from_parser(1, &parser).is_none());
    }

    #[test]
    fn extract_mirrors_parser_reads() {
        let spec = DigestSpec::from_parser(9, &parser()).unwrap();
        let packet =
            PacketBuilder::udp_data(9, [10, 0, 0, 1], [10, 0, 0, 2], 1000, 2000, &[7u8; 32]);
        let digest = spec.extract(&packet, 3);
        assert_eq!(digest.module(), 9);
        assert_eq!(digest.before(), 3);
        assert_eq!(digest.fields().len(), 2);
        let want4 = packet.read_be(34, 4).unwrap();
        let want2 = packet.read_be(40, 2).unwrap();
        assert_eq!(digest.fields()[0], (C::h4(1).code(), want4));
        assert_eq!(digest.fields()[1], (C::h2(0).code(), want2));
        assert_eq!(digest.wire_bytes(), 7 + 2 * 9);
    }

    #[test]
    fn out_of_frame_reads_zero_fill() {
        let wide = ParserEntry::new(vec![ParseAction::new(120, C::h6(0)).unwrap()]).unwrap();
        let spec = DigestSpec::from_parser(9, &wide).unwrap();
        let packet = PacketBuilder::udp_data(9, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[]);
        let digest = spec.extract(&packet, 0);
        assert_eq!(digest.fields(), &[(C::h6(0).code(), 0)]);
    }
}
