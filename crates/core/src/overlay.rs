//! Overlay tables: per-module configuration for shared resources.
//!
//! Menshen's central mechanism for resources that cannot be space-partitioned
//! (parser, key extractor, key mask, segment table, deparser) is the
//! *overlay*: a small table holding one configuration entry per module,
//! indexed by the packet's module ID as it arrives at the resource (§3).
//! Writing one module's entry can never change another's — that property is
//! what makes reconfiguration disruption-free, and it is asserted by the
//! property tests in this crate.

use crate::error::CoreError;
use crate::Result;

/// A per-module configuration table of fixed depth.
///
/// The index is the module's *slot* (assigned when the module is loaded), not
/// the raw VLAN ID: the prototype's tables are 32 entries deep while VLAN IDs
/// span 12 bits, so the software interface maintains the VLAN→slot mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayTable<T> {
    name: &'static str,
    entries: Vec<Option<T>>,
    writes: u64,
}

impl<T: Clone> OverlayTable<T> {
    /// Creates an empty overlay table called `name` with `depth` entries.
    pub fn new(name: &'static str, depth: usize) -> Self {
        OverlayTable {
            name,
            entries: vec![None; depth],
            writes: 0,
        }
    }

    /// Table depth (the maximum number of concurrently loaded modules).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Writes the entry for `slot`, replacing whatever was there.
    pub fn write(&mut self, slot: usize, entry: T) -> Result<()> {
        let depth = self.entries.len();
        let cell = self
            .entries
            .get_mut(slot)
            .ok_or_else(|| CoreError::InsufficientResource {
                resource: format!("{} slots", self.name),
                requested: slot + 1,
                available: depth,
            })?;
        *cell = Some(entry);
        self.writes += 1;
        Ok(())
    }

    /// Clears the entry for `slot`.
    pub fn clear(&mut self, slot: usize) -> Result<()> {
        let depth = self.entries.len();
        let cell = self
            .entries
            .get_mut(slot)
            .ok_or_else(|| CoreError::InsufficientResource {
                resource: format!("{} slots", self.name),
                requested: slot + 1,
                available: depth,
            })?;
        *cell = None;
        Ok(())
    }

    /// Reads the entry for `slot` (the per-packet configuration fetch).
    pub fn read(&self, slot: usize) -> Option<&T> {
        self.entries.get(slot).and_then(|e| e.as_ref())
    }

    /// Total number of writes ever performed (reconfiguration statistic).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// The table's name (for error messages and cost accounting).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_clear() {
        let mut table: OverlayTable<u32> = OverlayTable::new("key extractor", 4);
        assert_eq!(table.depth(), 4);
        assert_eq!(table.occupancy(), 0);
        table.write(2, 0xabcd).unwrap();
        assert_eq!(table.read(2), Some(&0xabcd));
        assert_eq!(table.read(1), None);
        assert_eq!(table.occupancy(), 1);
        table.clear(2).unwrap();
        assert_eq!(table.read(2), None);
        assert_eq!(table.write_count(), 1);
        assert_eq!(table.name(), "key extractor");
    }

    #[test]
    fn out_of_range_slots_rejected() {
        let mut table: OverlayTable<u8> = OverlayTable::new("parser", 2);
        assert!(table.write(2, 1).is_err());
        assert!(table.clear(2).is_err());
        assert_eq!(table.read(2), None);
    }

    #[test]
    fn writing_one_slot_does_not_affect_others() {
        let mut table: OverlayTable<String> = OverlayTable::new("deparser", 32);
        for slot in 0..32 {
            table.write(slot, format!("module-{slot}")).unwrap();
        }
        // Overwrite slot 7 repeatedly; all other slots must be untouched.
        for i in 0..10 {
            table.write(7, format!("new-{i}")).unwrap();
        }
        for slot in 0..32 {
            if slot == 7 {
                assert_eq!(table.read(slot), Some(&"new-9".to_string()));
            } else {
                assert_eq!(table.read(slot), Some(&format!("module-{slot}")));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Isolation invariant: a sequence of writes to slot `a` never changes
    /// what is stored at slot `b != a`.
    #[test]
    fn overlay_writes_are_isolated() {
        let mut rng = StdRng::seed_from_u64(0x07e1);
        for _ in 0..1000 {
            let a = rng.gen_range(0usize..32);
            let b = rng.gen_range(0usize..32);
            if a == b {
                continue;
            }
            let initial = rng.gen_range(0u64..u64::MAX);
            let writes: Vec<u64> = (0..rng.gen_range(1usize..20))
                .map(|_| rng.gen_range(0u64..u64::MAX))
                .collect();
            let mut table: OverlayTable<u64> = OverlayTable::new("test", 32);
            table.write(b, initial).unwrap();
            for w in &writes {
                table.write(a, *w).unwrap();
            }
            assert_eq!(table.read(b), Some(&initial));
            assert_eq!(table.read(a), writes.last());
        }
    }
}
