//! The software-to-hardware interface (§3.4).
//!
//! [`ControlPlane`] plays the role of the Menshen software: it performs
//! admission control through the resource checker, loads/updates/unloads
//! modules over the (trusted) daisy-chain path, inserts individual
//! match-action entries at run time (the P4Runtime-like surface), and reads
//! statistics back from the hardware registers.

use crate::error::CoreError;
use crate::module::{MatchRule, ModuleConfig, ModuleId};
use crate::pipeline::{LoadReport, MenshenPipeline, ModuleCounters, Verdict};
use crate::reconfig::{ReconfigCommand, ResourceKind, WritePayload};
use crate::resources::{ResourceChecker, SharingPolicy};
use crate::Result;
use menshen_packet::Packet;
use menshen_rmt::params::PipelineParams;

/// Device-wide statistics gathered over the software interface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Per-module traffic counters, ordered by module ID.
    pub modules: Vec<(ModuleId, ModuleCounters)>,
    /// Total reconfiguration packets observed by the packet filter.
    pub reconfig_packets: u32,
    /// Link-level statistics from the system module.
    pub link_packets: u64,
    /// Link-level byte count from the system module.
    pub link_bytes: u64,
}

/// The Menshen control plane: resource checker + software↔hardware interface.
#[derive(Debug)]
pub struct ControlPlane {
    pipeline: MenshenPipeline,
    checker: ResourceChecker,
}

impl ControlPlane {
    /// Creates a control plane managing a freshly built pipeline.
    pub fn new(params: PipelineParams, policy: SharingPolicy) -> Self {
        ControlPlane {
            pipeline: MenshenPipeline::new(params),
            checker: ResourceChecker::new(params, policy),
        }
    }

    /// Wraps an existing pipeline.
    pub fn with_pipeline(pipeline: MenshenPipeline, policy: SharingPolicy) -> Self {
        let params = *pipeline.params();
        ControlPlane {
            pipeline,
            checker: ResourceChecker::new(params, policy),
        }
    }

    /// Access to the managed pipeline (e.g. to drive traffic through it).
    pub fn pipeline_mut(&mut self) -> &mut MenshenPipeline {
        &mut self.pipeline
    }

    /// Read access to the managed pipeline.
    pub fn pipeline(&self) -> &MenshenPipeline {
        &self.pipeline
    }

    /// Admission control + load: checks the module against the allocation the
    /// sharing policy grants it, then streams its configuration in.
    pub fn load_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let allocation = self.checker.grant(&config.usage());
        self.checker.check(config, &allocation)?;
        self.pipeline.load_module(config)
    }

    /// Admission control + update of a running module. Other modules are not
    /// disturbed (§5.1, Figure 10).
    pub fn update_module(&mut self, config: &ModuleConfig) -> Result<LoadReport> {
        let allocation = self.checker.grant(&config.usage());
        self.checker.check(config, &allocation)?;
        self.pipeline.update_module(config)
    }

    /// Unloads a module and releases its resources.
    pub fn remove_module(&mut self, module: ModuleId) -> Result<()> {
        self.pipeline.unload_module(module)
    }

    /// Inserts one match-action entry for a loaded module at run time (the
    /// P4Runtime-style `table_add`). The entry lands in the module's own
    /// partition of the stage's CAM; the module ID is appended automatically.
    pub fn insert_entry(&mut self, module: ModuleId, stage: usize, rule: &MatchRule) -> Result<()> {
        // The module's partition is tracked by the pipeline; we re-load the
        // module's slot and find a free index by probing its range through the
        // CAM contents.
        let slot = self
            .pipeline
            .module_slot(module)
            .ok_or(CoreError::UnknownModule {
                module_id: module.value(),
            })?;
        let _ = slot;
        // Find a free CAM address inside the module's allocated range.
        let index =
            self.find_free_cam_index(module, stage)?
                .ok_or(CoreError::InsufficientResource {
                    resource: format!("match entries, stage {stage}"),
                    requested: 1,
                    available: 0,
                })?;
        self.pipeline.apply_command(&ReconfigCommand::write(
            ResourceKind::MatchTable,
            stage as u8,
            index as u16,
            WritePayload::MatchEntry {
                key: rule.key,
                module_id: module.value(),
            },
        ))?;
        self.pipeline.apply_command(&ReconfigCommand::write(
            ResourceKind::ActionTable,
            stage as u8,
            index as u16,
            WritePayload::Action(rule.action.clone()),
        ))
    }

    fn find_free_cam_index(&self, module: ModuleId, stage: usize) -> Result<Option<usize>> {
        // The pipeline does not expose its allocator directly; instead we scan
        // the stage's CAM for an empty address that is *adjacent to* the
        // module's existing entries. For simplicity the control plane scans
        // the whole table and restricts itself to addresses not owned by
        // other modules.
        let pipeline = self.pipeline();
        let params = *pipeline.params();
        if stage >= params.num_stages {
            return Err(CoreError::Rmt(
                menshen_rmt::RmtError::TableIndexOutOfRange {
                    table: "pipeline stages",
                    index: stage,
                    depth: params.num_stages,
                },
            ));
        }
        for index in 0..params.cam_depth {
            let owner = pipeline.cam_entry_owner(stage, index);
            match owner {
                Some(owner_id) if owner_id != module.value() => continue,
                Some(_) => continue, // occupied by this module
                None if pipeline.cam_index_reserved_for_other(stage, index, module) => continue,
                None => return Ok(Some(index)),
            }
        }
        Ok(None)
    }

    /// Reads a module's traffic counters.
    pub fn module_counters(&self, module: ModuleId) -> Result<ModuleCounters> {
        self.pipeline
            .module_counters(module)
            .ok_or(CoreError::UnknownModule {
                module_id: module.value(),
            })
    }

    /// Reads one word of a module's stateful memory (module-local address).
    pub fn read_register(&self, module: ModuleId, stage: usize, address: u32) -> Option<u64> {
        self.pipeline.read_stateful(module, stage, address)
    }

    /// Gathers a device-wide statistics snapshot.
    pub fn device_stats(&self) -> DeviceStats {
        let modules = self
            .pipeline
            .loaded_modules()
            .into_iter()
            .filter_map(|m| self.pipeline.module_counters(m).map(|c| (m, c)))
            .collect();
        let sys = self.pipeline.system().stats();
        DeviceStats {
            modules,
            reconfig_packets: self.pipeline.filter().reconfig_counter(),
            link_packets: sys.link_packets,
            link_bytes: sys.link_bytes,
        }
    }

    /// Sends one data packet through the pipeline (convenience passthrough).
    pub fn send(&mut self, packet: Packet) -> Verdict {
        self.pipeline.process(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::StageModuleConfig;
    use menshen_packet::PacketBuilder;
    use menshen_rmt::action::{AluInstruction, VliwAction};
    use menshen_rmt::config::{KeyExtractEntry, KeyMask, ParseAction, ParserEntry};
    use menshen_rmt::match_table::LookupKey;
    use menshen_rmt::phv::ContainerRef as C;
    use menshen_rmt::TABLE5;

    fn port_rewrite_module(module_id: u16, dst_ip: u32, port: u16) -> ModuleConfig {
        let mut config = ModuleConfig::empty(ModuleId::new(module_id), "rewrite", 5);
        config.parser = ParserEntry::new(vec![
            ParseAction::new(34, C::h4(1)).unwrap(),
            ParseAction::new(40, C::h2(0)).unwrap(),
        ])
        .unwrap();
        config.deparser = ParserEntry::new(vec![ParseAction::new(40, C::h2(0)).unwrap()]).unwrap();
        config.stages[0] = StageModuleConfig {
            key_extract: Some(KeyExtractEntry {
                slots_4b: [1, 0],
                ..Default::default()
            }),
            key_mask: Some(KeyMask::for_slots(
                [false, false, true, false, false, false],
                false,
            )),
            rules: vec![MatchRule {
                key: LookupKey::from_slots(
                    [
                        (0, 6),
                        (0, 6),
                        (u64::from(dst_ip), 4),
                        (0, 4),
                        (0, 2),
                        (0, 2),
                    ],
                    false,
                ),
                action: VliwAction::nop().with(C::h2(0), AluInstruction::set(port)),
            }],
            stateful_words: 0,
            ..Default::default()
        };
        config
    }

    #[test]
    fn admission_control_rejects_oversized_modules() {
        let mut cp = ControlPlane::new(TABLE5, SharingPolicy::EqualShare { max_modules: 16 });
        // EqualShare over 16 modules grants 1 CAM entry per stage; a module
        // with 3 rules in stage 0 must be rejected before touching hardware.
        let mut config = port_rewrite_module(1, 0x0a00_0002, 80);
        for i in 0..2u64 {
            config.stages[0].rules.push(MatchRule {
                key: LookupKey::from_slots(
                    [(0, 6), (0, 6), (0x0a00_0010 + i, 4), (0, 4), (0, 2), (0, 2)],
                    false,
                ),
                action: VliwAction::nop(),
            });
        }
        assert!(matches!(
            cp.load_module(&config),
            Err(CoreError::AllocationExceeded { .. })
        ));
        assert!(cp.pipeline().loaded_modules().is_empty());
    }

    #[test]
    fn load_send_and_read_stats() {
        let mut cp = ControlPlane::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        cp.load_module(&port_rewrite_module(4, 0x0a00_0002, 8080))
            .unwrap();
        let packet = PacketBuilder::udp_data(4, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[0u8; 4]);
        let verdict = cp.send(packet);
        assert!(verdict.is_forwarded());
        assert_eq!(verdict.packet().unwrap().udp_dst_port(), Some(8080));
        let stats = cp.device_stats();
        assert_eq!(stats.modules.len(), 1);
        assert_eq!(stats.modules[0].1.packets_out, 1);
        assert!(stats.reconfig_packets > 0);
        assert!(stats.link_packets > 0);
        assert_eq!(cp.module_counters(ModuleId::new(4)).unwrap().packets_in, 1);
        assert!(cp.module_counters(ModuleId::new(9)).is_err());
    }

    #[test]
    fn runtime_entry_insertion() {
        let mut cp = ControlPlane::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        cp.load_module(&port_rewrite_module(4, 0x0a00_0002, 8080))
            .unwrap();
        // Add a second destination at run time.
        let rule = MatchRule {
            key: LookupKey::from_slots(
                [(0, 6), (0, 6), (0x0a00_0003, 4), (0, 4), (0, 2), (0, 2)],
                false,
            ),
            action: VliwAction::nop().with(C::h2(0), AluInstruction::set(9090)),
        };
        cp.insert_entry(ModuleId::new(4), 0, &rule).unwrap();
        let packet = PacketBuilder::udp_data(4, [10, 0, 0, 1], [10, 0, 0, 3], 1, 2, &[0u8; 4]);
        let verdict = cp.send(packet);
        assert_eq!(verdict.packet().unwrap().udp_dst_port(), Some(9090));
        // Inserting for an unknown module fails.
        assert!(cp.insert_entry(ModuleId::new(9), 0, &rule).is_err());
        // Inserting into a non-existent stage fails.
        assert!(cp.insert_entry(ModuleId::new(4), 99, &rule).is_err());
    }

    #[test]
    fn update_and_remove_round_trip() {
        let mut cp = ControlPlane::new(TABLE5, SharingPolicy::FirstComeFirstServed);
        cp.load_module(&port_rewrite_module(4, 0x0a00_0002, 8080))
            .unwrap();
        cp.update_module(&port_rewrite_module(4, 0x0a00_0002, 1234))
            .unwrap();
        let packet = PacketBuilder::udp_data(4, [10, 0, 0, 1], [10, 0, 0, 2], 1, 2, &[0u8; 4]);
        assert_eq!(cp.send(packet).packet().unwrap().udp_dst_port(), Some(1234));
        cp.remove_module(ModuleId::new(4)).unwrap();
        assert!(cp.pipeline().loaded_modules().is_empty());
        assert!(cp.remove_module(ModuleId::new(4)).is_err());
        assert!(cp.read_register(ModuleId::new(4), 0, 0).is_none());
    }
}
