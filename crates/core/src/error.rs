//! Error type for the Menshen isolation layer.

use core::fmt;
use menshen_rmt::RmtError;

/// Errors reported by the Menshen pipeline, its isolation primitives and the
/// software-to-hardware interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An error bubbled up from the underlying RMT hardware model.
    Rmt(RmtError),
    /// The module ID is not loaded on this pipeline.
    UnknownModule {
        /// The offending module ID (VLAN ID).
        module_id: u16,
    },
    /// The module ID is already loaded.
    ModuleAlreadyLoaded {
        /// The offending module ID.
        module_id: u16,
    },
    /// All overlay-table slots are occupied: no more modules can be loaded.
    NoFreeModuleSlot {
        /// Number of slots (the overlay depth).
        capacity: usize,
    },
    /// A resource request exceeds what is left of the partitioned resource.
    InsufficientResource {
        /// Name of the resource (e.g. "match entries, stage 2").
        resource: String,
        /// Amount requested.
        requested: usize,
        /// Amount still available.
        available: usize,
    },
    /// The module's declared usage exceeds its allocation (admission control).
    AllocationExceeded {
        /// Name of the resource.
        resource: String,
        /// Usage declared/required by the module.
        used: usize,
        /// Amount allocated to the module.
        allocated: usize,
    },
    /// A reconfiguration packet could not be decoded.
    BadReconfigPacket(&'static str),
    /// A reconfiguration was attempted from the data path (untrusted source).
    UntrustedReconfiguration,
    /// The module is currently being reconfigured and cannot serve packets.
    ModuleBeingReconfigured {
        /// The module in question.
        module_id: u16,
    },
    /// A static or resource check failed (message from the checker).
    CheckFailed(String),
    /// An exported [`crate::pipeline::ModuleState`] does not fit the target
    /// replica's configuration (different stage count or segment size) — the
    /// source and target are not configuration replicas of each other.
    StateShapeMismatch {
        /// The module whose state was being imported.
        module_id: u16,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Rmt(e) => write!(f, "RMT error: {e}"),
            CoreError::UnknownModule { module_id } => {
                write!(f, "module {module_id} is not loaded")
            }
            CoreError::ModuleAlreadyLoaded { module_id } => {
                write!(f, "module {module_id} is already loaded")
            }
            CoreError::NoFreeModuleSlot { capacity } => {
                write!(f, "all {capacity} module slots are in use")
            }
            CoreError::InsufficientResource {
                resource,
                requested,
                available,
            } => write!(
                f,
                "insufficient {resource}: requested {requested}, available {available}"
            ),
            CoreError::AllocationExceeded {
                resource,
                used,
                allocated,
            } => write!(
                f,
                "allocation exceeded for {resource}: uses {used}, allocated {allocated}"
            ),
            CoreError::BadReconfigPacket(reason) => {
                write!(f, "malformed reconfiguration packet: {reason}")
            }
            CoreError::UntrustedReconfiguration => {
                write!(f, "reconfiguration attempted from an untrusted source")
            }
            CoreError::ModuleBeingReconfigured { module_id } => {
                write!(f, "module {module_id} is being reconfigured")
            }
            CoreError::CheckFailed(msg) => write!(f, "check failed: {msg}"),
            CoreError::StateShapeMismatch { module_id, detail } => write!(
                f,
                "module {module_id} state snapshot does not fit this replica: {detail}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RmtError> for CoreError {
    fn from(e: RmtError) -> Self {
        CoreError::Rmt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::UnknownModule { module_id: 9 }
            .to_string()
            .contains('9'));
        assert!(CoreError::NoFreeModuleSlot { capacity: 32 }
            .to_string()
            .contains("32"));
        let e = CoreError::InsufficientResource {
            resource: "match entries, stage 1".into(),
            requested: 20,
            available: 4,
        };
        assert!(e.to_string().contains("stage 1"));
        assert!(e.to_string().contains("20"));
        let rmt: CoreError = RmtError::TableFull { table: "CAM" }.into();
        assert!(rmt.to_string().contains("CAM"));
        assert!(CoreError::CheckFailed("loops".into())
            .to_string()
            .contains("loops"));
    }
}
