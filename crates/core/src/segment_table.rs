//! The segment table: per-module stateful-memory address translation.
//!
//! Each stage's stateful memory is space-partitioned across modules. When a
//! module's action supplies a (module-local) address, the segment table
//! translates it to a physical address using the module's `(base, range)`
//! entry and rejects accesses outside the range (§3.1). Menshen implements
//! this in hardware — unlike NetVRM's P4-level page table — so no stage of
//! stateful memory is sacrificed for the mechanism.

use crate::overlay::OverlayTable;
use menshen_rmt::stateful::AddressTranslate;

/// A segment-table entry: the module's slice of the stage's stateful memory.
///
/// The prototype encodes this in 16 bits — one byte of offset and one byte of
/// range, both in units of `SEGMENT_GRANULARITY` words — which bounds a
/// stage's addressable stateful memory at 256 granules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentEntry {
    /// First physical word of the module's slice.
    pub base: u32,
    /// Number of words in the module's slice.
    pub range: u32,
}

/// Number of stateful-memory words per segment-table granule. The prototype's
/// 1-byte offset/range fields address memory at this granularity.
pub const SEGMENT_GRANULARITY: u32 = 16;

impl SegmentEntry {
    /// Creates an entry covering `[base, base + range)` words.
    pub fn new(base: u32, range: u32) -> Self {
        SegmentEntry { base, range }
    }

    /// Encodes the entry into the prototype's 16-bit format (offset byte,
    /// range byte, both in granules). Values are rounded up to whole granules.
    pub fn encode(&self) -> u16 {
        let offset_granules = (self.base / SEGMENT_GRANULARITY).min(0xff) as u16;
        let range_granules = self.range.div_ceil(SEGMENT_GRANULARITY).min(0xff) as u16;
        (offset_granules << 8) | range_granules
    }

    /// Decodes the 16-bit format.
    pub fn decode(bits: u16) -> Self {
        SegmentEntry {
            base: u32::from(bits >> 8) * SEGMENT_GRANULARITY,
            range: u32::from(bits & 0xff) * SEGMENT_GRANULARITY,
        }
    }

    /// Translates a module-local address, or `None` if it is out of range.
    pub fn translate(&self, local: u32) -> Option<u32> {
        if local < self.range {
            Some(self.base + local)
        } else {
            None
        }
    }
}

/// The per-stage segment table: one [`SegmentEntry`] per module slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTable {
    table: OverlayTable<SegmentEntry>,
}

impl SegmentTable {
    /// Creates a segment table with `depth` module slots.
    pub fn new(depth: usize) -> Self {
        SegmentTable {
            table: OverlayTable::new("segment table", depth),
        }
    }

    /// Writes the entry for a module slot.
    pub fn write(&mut self, slot: usize, entry: SegmentEntry) -> crate::Result<()> {
        self.table.write(slot, entry)
    }

    /// Clears the entry for a module slot.
    pub fn clear(&mut self, slot: usize) -> crate::Result<()> {
        self.table.clear(slot)
    }

    /// Reads the entry for a module slot.
    pub fn read(&self, slot: usize) -> Option<SegmentEntry> {
        self.table.read(slot).copied()
    }

    /// Translates `(slot, local_address)`, or `None` when the slot has no
    /// entry or the address exceeds the module's range.
    pub fn translate(&self, slot: usize, local: u32) -> Option<u32> {
        self.read(slot).and_then(|entry| entry.translate(local))
    }

    /// Number of module slots.
    pub fn depth(&self) -> usize {
        self.table.depth()
    }
}

/// Adapter that exposes one module's segment entry through the RMT
/// [`AddressTranslate`] seam, used while processing one packet.
#[derive(Debug, Clone, Copy)]
pub struct SegmentTranslator {
    entry: Option<SegmentEntry>,
}

impl SegmentTranslator {
    /// Creates a translator for one module's entry (or `None` to deny all
    /// stateful accesses — e.g. an unloaded module).
    pub fn new(entry: Option<SegmentEntry>) -> Self {
        SegmentTranslator { entry }
    }
}

impl AddressTranslate for SegmentTranslator {
    fn translate(&self, _module_id: u16, local_address: u32) -> Option<u32> {
        self.entry.and_then(|e| e.translate(local_address))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_respects_base_and_range() {
        let entry = SegmentEntry::new(128, 64);
        assert_eq!(entry.translate(0), Some(128));
        assert_eq!(entry.translate(63), Some(191));
        assert_eq!(entry.translate(64), None);
        assert_eq!(entry.translate(1000), None);
    }

    #[test]
    fn encode_decode_round_trip_on_granule_boundaries() {
        let entry = SegmentEntry::new(128, 64);
        let decoded = SegmentEntry::decode(entry.encode());
        assert_eq!(decoded, entry);
        // Non-granule-aligned ranges round up.
        let odd = SegmentEntry::new(16, 17);
        let decoded = SegmentEntry::decode(odd.encode());
        assert_eq!(decoded.base, 16);
        assert_eq!(decoded.range, 32);
    }

    #[test]
    fn table_per_slot_isolation() {
        let mut table = SegmentTable::new(32);
        table.write(0, SegmentEntry::new(0, 100)).unwrap();
        table.write(1, SegmentEntry::new(100, 50)).unwrap();
        assert_eq!(table.translate(0, 99), Some(99));
        assert_eq!(table.translate(0, 100), None);
        assert_eq!(table.translate(1, 0), Some(100));
        assert_eq!(table.translate(1, 49), Some(149));
        assert_eq!(table.translate(1, 50), None);
        assert_eq!(table.translate(2, 0), None, "unloaded slot denies access");
        table.clear(1).unwrap();
        assert_eq!(table.translate(1, 0), None);
        assert_eq!(table.depth(), 32);
        assert_eq!(table.read(0).unwrap().range, 100);
    }

    #[test]
    fn translator_adapter() {
        let t = SegmentTranslator::new(Some(SegmentEntry::new(10, 5)));
        assert_eq!(t.translate(7, 4), Some(14));
        assert_eq!(t.translate(7, 5), None);
        let deny = SegmentTranslator::new(None);
        assert_eq!(deny.translate(7, 0), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A translated address always lands inside `[base, base+range)` and
    /// out-of-range local addresses are always rejected.
    #[test]
    fn translation_stays_in_segment() {
        let mut rng = StdRng::seed_from_u64(0x5e61);
        for _ in 0..2000 {
            let base = rng.gen_range(0u32..4096);
            let range = rng.gen_range(1u32..1024);
            let local = rng.gen_range(0u32..2048);
            let entry = SegmentEntry::new(base, range);
            match entry.translate(local) {
                Some(phys) => {
                    assert!(local < range);
                    assert!(phys >= base);
                    assert!(phys < base + range);
                }
                None => assert!(local >= range),
            }
        }
    }

    /// Two disjoint segments never translate to overlapping physical
    /// addresses (stateful-memory isolation).
    #[test]
    fn disjoint_segments_never_collide() {
        let mut rng = StdRng::seed_from_u64(0x5e62);
        for _ in 0..2000 {
            let range_a = rng.gen_range(1u32..512);
            let range_b = rng.gen_range(1u32..512);
            let local_a = rng.gen_range(0u32..512);
            let local_b = rng.gen_range(0u32..512);
            let a = SegmentEntry::new(0, range_a);
            let b = SegmentEntry::new(range_a, range_b);
            if let (Some(pa), Some(pb)) = (a.translate(local_a), b.translate(local_b)) {
                assert_ne!(pa, pb);
            }
        }
    }
}
