//! Service-mode hardening guarantees of the sharded runtime: typed control
//! deadlines instead of hangs, idempotent panic-free shutdown, and the
//! [`EgressSink`] hook that carries verdicts out of the worker threads.
//!
//! These are the runtime-side contracts `crates/io`'s `Service` builds on —
//! a long-lived network service must never hang on a wedged shard, never
//! panic when torn down twice, and must see exactly one egress call per
//! processed packet (in both execution modes) so socket backends can echo
//! every verdict.

use menshen_core::{MenshenPipeline, Verdict};
use menshen_packet::{Packet, PacketBuilder};
use menshen_rmt::TABLE5;
use menshen_runtime::{EgressSink, RuntimeError, RuntimeOptions, ShardedRuntime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn empty_template() -> MenshenPipeline {
    MenshenPipeline::new(TABLE5)
}

fn some_packets(n: usize) -> Vec<Packet> {
    let builder = PacketBuilder::new().with_vlan(7);
    (0..n)
        .map(|i| {
            builder.build_udp(
                [10, 0, 0, 1],
                [10, 0, (i >> 8) as u8, i as u8],
                4000,
                80,
                &[],
            )
        })
        .collect()
}

/// Counts transmits and forwarded verdicts; never panics.
#[derive(Default)]
struct CountingSink {
    transmits: AtomicU64,
    forwarded: AtomicU64,
}

impl EgressSink for CountingSink {
    fn transmit(&self, _packet: &Packet, verdict: &Verdict) {
        self.transmits.fetch_add(1, Ordering::Relaxed);
        if verdict.is_forwarded() {
            self.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch deadlines (satellite: typed timeout instead of blocking forever)
// ---------------------------------------------------------------------------

#[test]
fn wait_for_epoch_deadline_surfaces_epoch_timeout() {
    let runtime = ShardedRuntime::from_pipeline(&empty_template(), RuntimeOptions::threaded(2));
    // Epoch 1 is never published, so every live shard is "stalled" on it.
    let limit = Duration::from_millis(40);
    let start = Instant::now();
    let err = runtime
        .wait_for_epoch_deadline(1, Some(limit))
        .expect_err("an unpublished epoch must time out");
    assert_eq!(
        err,
        RuntimeError::EpochTimeout {
            epoch: 1,
            waited: limit
        }
    );
    assert!(
        start.elapsed() >= limit,
        "the waiter must actually wait out the deadline"
    );
}

#[test]
fn configured_control_timeout_applies_to_wait_for_epoch() {
    let mut runtime = ShardedRuntime::from_pipeline(&empty_template(), RuntimeOptions::threaded(1));
    assert_eq!(runtime.control_timeout(), None);
    runtime.set_control_timeout(Some(Duration::from_millis(30)));
    let err = runtime.wait_for_epoch(9).expect_err("deadline configured");
    assert!(matches!(err, RuntimeError::EpochTimeout { epoch: 9, .. }));
    // A published epoch resolves comfortably inside a sane deadline, so the
    // timeout is inert on the healthy path.
    runtime.set_control_timeout(Some(Duration::from_secs(10)));
    let epoch = runtime.publish(Vec::new());
    runtime
        .wait_for_epoch(epoch)
        .expect("live shards apply published epochs");
}

#[test]
fn epoch_timeout_is_a_liveness_report_not_a_rollback() {
    let mut runtime = ShardedRuntime::from_pipeline(&empty_template(), RuntimeOptions::threaded(1));
    let err = runtime.wait_for_epoch_deadline(3, Some(Duration::from_millis(20)));
    assert!(matches!(err, Err(RuntimeError::EpochTimeout { .. })));
    // Publishing up to that epoch afterwards converges normally.
    runtime.publish(Vec::new());
    runtime.publish(Vec::new());
    let epoch = runtime.publish(Vec::new());
    assert_eq!(epoch, 3);
    runtime
        .wait_for_epoch_deadline(3, Some(Duration::from_secs(10)))
        .expect("the once-timed-out epoch eventually applies");
}

// ---------------------------------------------------------------------------
// Shutdown audit (satellite: idempotent, panic-free, typed errors after)
// ---------------------------------------------------------------------------

#[test]
fn shutdown_is_idempotent() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(2),
    );
    runtime
        .submit_owned(some_packets(64))
        .expect("live runtime accepts packets");
    runtime.flush();
    runtime.shutdown();
    runtime.shutdown(); // second call must be a no-op, not a panic or hang
    runtime.shutdown();
    // Drop runs shutdown once more.
}

#[test]
fn submit_after_shutdown_is_a_typed_error() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(1),
    );
    runtime.shutdown();
    let err = runtime
        .submit_owned(some_packets(8))
        .expect_err("a shut-down plane must refuse packets");
    assert!(
        matches!(
            err,
            RuntimeError::ShardDown { .. } | RuntimeError::DispatcherDown { .. }
        ),
        "expected a typed plane-down error, got {err:?}"
    );
}

#[test]
fn control_after_shutdown_errors_instead_of_hanging() {
    let mut runtime = ShardedRuntime::from_pipeline(&empty_template(), RuntimeOptions::threaded(2));
    runtime.set_control_timeout(Some(Duration::from_secs(5)));
    runtime.shutdown();
    let err = runtime
        .install_rules(menshen_core::ModuleId::new(1), 0, &[])
        .expect_err("control ops on a dead plane must fail");
    assert!(
        matches!(err, RuntimeError::ShardDown { .. }),
        "expected ShardDown, got {err:?}"
    );
}

#[test]
fn shutdown_after_resize_is_clean() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(1),
    );
    runtime.submit_owned(some_packets(32)).unwrap();
    runtime.resize(4).expect("scale-out succeeds");
    runtime.submit_owned(some_packets(32)).unwrap();
    runtime.resize(2).expect("scale-in succeeds");
    runtime.flush();
    runtime.shutdown();
    runtime.shutdown();
}

#[test]
fn flush_after_shutdown_returns_immediately() {
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(2),
    );
    runtime.shutdown();
    let start = Instant::now();
    runtime.flush();
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "flush on an exited plane must not block"
    );
}

// ---------------------------------------------------------------------------
// EgressSink: one transmit per processed packet, both execution modes
// ---------------------------------------------------------------------------

#[test]
fn egress_sink_sees_every_packet_threaded() {
    let sink = Arc::new(CountingSink::default());
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(2),
    );
    runtime.set_egress(Some(sink.clone()));
    let total = 512usize;
    runtime.submit_owned(some_packets(total)).unwrap();
    runtime.flush();
    assert_eq!(sink.transmits.load(Ordering::Relaxed), total as u64);
    // No module is loaded, so every verdict is a drop.
    assert_eq!(sink.forwarded.load(Ordering::Relaxed), 0);

    // Removing the sink stops the flow at the next burst boundary.
    runtime.set_egress(None);
    runtime.submit_owned(some_packets(64)).unwrap();
    runtime.flush();
    assert_eq!(sink.transmits.load(Ordering::Relaxed), total as u64);
    runtime.shutdown();
}

#[test]
fn egress_sink_sees_every_packet_deterministic() {
    let sink = Arc::new(CountingSink::default());
    let mut runtime =
        ShardedRuntime::from_pipeline(&empty_template(), RuntimeOptions::deterministic(2));
    runtime.set_egress(Some(sink.clone()));
    let verdicts = runtime.process_batch(some_packets(100)).unwrap();
    assert_eq!(verdicts.len(), 100);
    assert_eq!(sink.transmits.load(Ordering::Relaxed), 100);
}

#[test]
fn egress_sink_survives_resize() {
    let sink = Arc::new(CountingSink::default());
    let mut runtime = ShardedRuntime::from_pipeline(
        &empty_template(),
        RuntimeOptions::threaded(2).with_dispatchers(1),
    );
    runtime.set_egress(Some(sink.clone()));
    runtime.submit_owned(some_packets(128)).unwrap();
    runtime.resize(4).expect("scale-out succeeds");
    // Shards stood up by the resize must adopt the already-installed sink.
    runtime.submit_owned(some_packets(128)).unwrap();
    runtime.flush();
    assert_eq!(sink.transmits.load(Ordering::Relaxed), 256);
    runtime.shutdown();
}
