//! Sharded multi-core runtime for the Menshen pipeline.
//!
//! Menshen isolates tenants *within* one RMT pipeline; this crate scales
//! that pipeline *across* cores, the way DPDK deployments shard a NIC's
//! traffic over worker lcores with receive-side scaling (RSS):
//!
//! ```text
//!             ┌────────────┐  SPSC ring  ┌──────────────────┐
//!  packets →  │ dispatcher │ ═══════════▶│ shard 0: replica │──┐
//!             │  (Toeplitz │  SPSC ring  ├──────────────────┤  │   ┌────────────┐
//!             │   steering)│ ═══════════▶│ shard 1: replica │──┼──▶│ aggregator │
//!             │            │     ...     ├──────────────────┤  │   │ (Σ counters│
//!             │            │ ═══════════▶│ shard N: replica │──┘   │  Σ stats)  │
//!             └────────────┘             └──────────────────┘      └────────────┘
//!                   ▲                            ▲
//!                   │      epoch-versioned       │  applied at burst
//!                   └──── control-plane log ─────┘  boundaries, acked
//! ```
//!
//! * [`rss`] — Toeplitz hashing (bit-exact against the Microsoft RSS test
//!   vectors) plus the indirection table; tenant-affine by default so
//!   per-module counters and stateful ALUs stay shard-local and the
//!   single-pipeline isolation semantics are preserved.
//! * [`ring`] — bounded SPSC burst rings with backpressure.
//! * [`control`] — every configuration change is one [`ControlOp`] batch
//!   published as a numbered epoch; shards apply epochs in order at burst
//!   boundaries and acknowledge them, giving hitless reconfiguration.
//! * [`shard`] — the worker loop and the cross-thread progress board.
//! * [`runtime`] — [`ShardedRuntime`], tying it all together, in a
//!   threaded mode (deployment) and a deterministic in-process mode that is
//!   exactly testable against a single [`menshen_core::MenshenPipeline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod ring;
pub mod rss;
pub mod runtime;
pub mod shard;

pub use control::{CompactionReport, ControlOp, EpochEntry, EpochLog};
pub use ring::{ring as bounded_ring, Consumer, Producer, RingClosed};
pub use rss::{
    toeplitz_hash, RssHasher, Steerer, SteeringMode, DEFAULT_RSS_KEY, MAX_HASH_INPUT, RETA_SIZE,
    RSS_KEY_LEN,
};
pub use runtime::{ExecutionMode, RuntimeError, RuntimeLatency, RuntimeOptions, ShardedRuntime};
pub use shard::{ShardSnapshot, ShardStats, ShardTelemetry};
