//! Sharded multi-core runtime for the Menshen pipeline.
//!
//! Menshen isolates tenants *within* one RMT pipeline; this crate scales
//! that pipeline *across* cores, the way DPDK deployments shard a NIC's
//! traffic over worker lcores with receive-side scaling (RSS). The dispatch
//! plane itself is parallel: N dispatcher threads (per-NIC-queue model) each
//! run the Toeplitz steer + burst-assembly loop over their own row of SPSC
//! rings:
//!
//! ```text
//!             ┌──────────────┐ SPSC rings ┌──────────────────┐
//!  packets →  │ dispatcher 0 │ ══════════▶│ shard 0: replica │──┐
//!   (chunk    │  (Toeplitz   │ ╔═════════▶├──────────────────┤  │   ┌────────────┐
//!    spray)   │   steering)  │ ║ ════════▶│ shard 1: replica │──┼──▶│ aggregator │
//!          └─▶├──────────────┤ ║     ...  ├──────────────────┤  │   │ (Σ counters│
//!             │ dispatcher N │═╝ ════════▶│ shard M: replica │──┘   │  Σ stats)  │
//!             └──────────────┘            └──────────────────┘      └────────────┘
//!                   ▲                            ▲
//!                   │      epoch-versioned       │  applied at burst
//!                   └──── control-plane log ─────┘  boundaries, acked
//! ```
//!
//! * [`rss`] — Toeplitz hashing (bit-exact against the Microsoft RSS test
//!   vectors) plus the indirection table; tenant-affine by default so
//!   per-module counters and stateful ALUs stay shard-local and the
//!   single-pipeline isolation semantics are preserved. The RETA partitions
//!   into per-dispatcher slices ([`Steerer::reta_slice`]) for flow-affine
//!   chunk spray.
//! * [`ring`] — cache-padded, atomics-based bounded SPSC burst rings with
//!   backpressure: cached-index fast path, spin-then-park waiting, lock-free
//!   occupancy telemetry. Safe per-slot-mutex storage by default; the
//!   `fast-ring` feature swaps in the classic `UnsafeCell` slot array —
//!   both run one shared conformance suite.
//! * [`control`] — every configuration change is one [`ControlOp`] batch
//!   published as a numbered epoch; shards apply epochs in order at burst
//!   boundaries and acknowledge them, and the flush barrier quiesces every
//!   dispatcher before an epoch publishes, giving hitless reconfiguration
//!   at any dispatcher count. The same machinery carries **live
//!   resharding**: [`ShardedRuntime::resize`] / [`ShardedRuntime::set_reta`]
//!   export the moving tenants' state (`ExportState`), stand shards up from
//!   the compacted log or retire them (`Retire`), replay the state into its
//!   new owners (`InjectState`), and publish the new RETA — all at a full
//!   quiesce, so no packet ever observes a half-moved tenant. Under 5-tuple
//!   steering a non-mergeable stateful program runs in one of two regimes:
//!   **replicated** by default (state-compute replication — the dispatcher
//!   broadcasts a per-packet state digest to every non-owning shard, whose
//!   replica replays it on the match-action path so all copies advance in
//!   lockstep; resize seeds new replicas from any live copy, and
//!   `supervise()` reseeds a respawned one from a live peer), or **pinned**
//!   tenant-affine when the module opts out with a pin hint or its parser
//!   is not digestible ([`Steerer::pin_module`]) — single-owner and
//!   migratable, at the price of one shard carrying the whole tenant.
//! * [`shard`] — the shard and dispatcher thread bodies and the cross-thread
//!   progress board.
//! * [`runtime`] — [`ShardedRuntime`], tying it all together, in a
//!   threaded mode (deployment) and a deterministic in-process mode that is
//!   exactly testable against a single [`menshen_core::MenshenPipeline`] for
//!   any dispatcher × shard combination.

#![cfg_attr(not(feature = "fast-ring"), forbid(unsafe_code))]
#![cfg_attr(feature = "fast-ring", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod control;
pub mod events;
pub mod faults;
pub mod ring;
pub mod rss;
pub mod runtime;
pub mod shard;

pub use control::{CompactionReport, ControlOp, EpochEntry, EpochLog};
pub use events::{
    chrome_trace_to_events, ControlEvent, ControlEventKind, EventTrace, DEFAULT_EVENT_CAPACITY,
};
pub use faults::{FaultPlan, FaultSpec, PacketFault, WorkerFault};
pub use ring::{
    ring as bounded_ring, ring_with_parker, Consumer, Parker, Producer, PushError, RingClosed,
    SafeSlots, SlotArray,
};
pub use rss::{
    toeplitz_hash, RssHasher, Steerer, SteeringMode, DEFAULT_RSS_KEY, MAX_HASH_INPUT, RETA_SIZE,
    RSS_KEY_LEN,
};
pub use runtime::{
    ConservationAudit, DispatchSpray, DispatcherStats, ExecutionMode, RecoveryReport, ResizeReport,
    RetiredTally, RuntimeError, RuntimeLatency, RuntimeOptions, ShardedRuntime,
};
pub use shard::{EgressSink, RingDepth, ShardSnapshot, ShardStats, ShardTelemetry};
