//! Deterministic fault injection: the chaos plane's schedule.
//!
//! A [`FaultPlan`] pins every fault to an exact coordinate — worker faults
//! to `(shard, burst index)`, dispatcher stalls to `(dispatcher, chunk
//! index)`, control-connection aborts to a request index, and wire-level
//! packet faults to a packet index — so a failure scenario is *replayable*:
//! the same plan against the same traffic produces the same panics, the
//! same stalls, and the same books, run after run. Plans are either built
//! explicitly or derived from a seed via [`FaultPlan::randomized`], which
//! uses the workspace's deterministic [`StdRng`] so a one-line seed in a
//! bug report reconstructs the whole schedule.
//!
//! The runtime arms a plan with `ShardedRuntime::arm_faults`; a disarmed
//! runtime pays one relaxed atomic load per burst for the hook. Packet
//! faults never touch the runtime at all — [`FaultPlan::apply_to_frames`]
//! is a pure transform over raw wire frames, applied by the test harness
//! in front of whatever `PacketIo` backend is under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// A fault aimed at one worker shard, fired just before it processes the
/// burst at the scheduled index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker panics mid-burst. The runtime must contain the unwind,
    /// count the burst as lost, and recover the shard.
    Panic,
    /// The worker sleeps for the given duration before processing the
    /// burst — a slow shard whose rings back up.
    Stall(Duration),
}

/// A fault applied to one position in a wire-level packet stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFault {
    /// The frame never arrives.
    Drop,
    /// The frame arrives twice.
    Duplicate,
    /// The frame arrives after its successor.
    Reorder,
    /// The frame arrives with its VLAN TPID byte flipped — it parses, but
    /// carries no recognisable tenant tag.
    Corrupt,
}

/// A seeded, replayable schedule of faults. Every coordinate is exact, so
/// two runs of the same plan against the same traffic fail identically.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    worker: BTreeMap<(usize, u64), WorkerFault>,
    dispatcher: BTreeMap<(usize, u64), Duration>,
    control_disconnects: BTreeSet<u64>,
    packet: BTreeMap<u64, PacketFault>,
}

/// Bounds for [`FaultPlan::randomized`]: how much schedule to generate and
/// over what horizon.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Worker shards available as panic/stall targets.
    pub shards: usize,
    /// Burst-index horizon faults are scheduled within.
    pub burst_horizon: u64,
    /// Worker panics to schedule.
    pub worker_panics: usize,
    /// Worker stalls to schedule.
    pub worker_stalls: usize,
    /// Duration of each scheduled stall.
    pub stall: Duration,
    /// Packet-index horizon for wire-level faults.
    pub packet_horizon: u64,
    /// Wire-level packet faults to schedule.
    pub packet_faults: usize,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a worker panic at `(shard, burst)`.
    pub fn with_worker_panic(mut self, shard: usize, burst: u64) -> Self {
        self.worker.insert((shard, burst), WorkerFault::Panic);
        self
    }

    /// Schedules a worker stall of `stall` at `(shard, burst)`.
    pub fn with_worker_stall(mut self, shard: usize, burst: u64, stall: Duration) -> Self {
        self.worker
            .insert((shard, burst), WorkerFault::Stall(stall));
        self
    }

    /// Schedules a dispatcher stall (a wedge, if long) of `stall` at
    /// `(dispatcher, chunk)`.
    pub fn with_dispatcher_stall(mut self, dispatcher: usize, chunk: u64, stall: Duration) -> Self {
        self.dispatcher.insert((dispatcher, chunk), stall);
        self
    }

    /// Schedules the control connection carrying request `request` to be
    /// torn down mid-exchange (consumed by the service-level harness).
    pub fn with_control_disconnect(mut self, request: u64) -> Self {
        self.control_disconnects.insert(request);
        self
    }

    /// Schedules a wire-level fault on the packet at `index`.
    pub fn with_packet_fault(mut self, index: u64, fault: PacketFault) -> Self {
        self.packet.insert(index, fault);
        self
    }

    /// Derives a whole schedule from `seed`: the same seed and spec always
    /// produce the same plan, so a failing chaos run is reproduced by its
    /// seed alone.
    pub fn randomized(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..spec.worker_panics {
            let shard = rng.gen_range(0..spec.shards.max(1) as u64) as usize;
            let burst = rng.gen_range(0..spec.burst_horizon.max(1));
            plan.worker.insert((shard, burst), WorkerFault::Panic);
        }
        for _ in 0..spec.worker_stalls {
            let shard = rng.gen_range(0..spec.shards.max(1) as u64) as usize;
            let burst = rng.gen_range(0..spec.burst_horizon.max(1));
            // Panics win ties: a shard that stalls and then dies is just a
            // shard that dies.
            plan.worker
                .entry((shard, burst))
                .or_insert(WorkerFault::Stall(spec.stall));
        }
        for _ in 0..spec.packet_faults {
            let index = rng.gen_range(0..spec.packet_horizon.max(1));
            let fault = match rng.gen_range(0..4u64) {
                0 => PacketFault::Drop,
                1 => PacketFault::Duplicate,
                2 => PacketFault::Reorder,
                _ => PacketFault::Corrupt,
            };
            plan.packet.insert(index, fault);
        }
        plan
    }

    /// The fault (if any) scheduled for worker `shard` at `burst`.
    pub fn worker_fault(&self, shard: usize, burst: u64) -> Option<WorkerFault> {
        self.worker.get(&(shard, burst)).copied()
    }

    /// The stall (if any) scheduled for dispatcher `dispatcher` at `chunk`.
    pub fn dispatcher_stall(&self, dispatcher: usize, chunk: u64) -> Option<Duration> {
        self.dispatcher.get(&(dispatcher, chunk)).copied()
    }

    /// True when the control connection carrying request `request` should
    /// be torn down.
    pub fn control_disconnect(&self, request: u64) -> bool {
        self.control_disconnects.contains(&request)
    }

    /// True when any worker fault is scheduled (used by harnesses to decide
    /// whether supervision is required).
    pub fn has_worker_faults(&self) -> bool {
        !self.worker.is_empty()
    }

    /// Scheduled worker faults, in coordinate order.
    pub fn worker_faults(&self) -> impl Iterator<Item = ((usize, u64), WorkerFault)> + '_ {
        self.worker.iter().map(|(k, v)| (*k, *v))
    }

    /// Applies the wire-level packet faults to a frame stream: drops,
    /// duplicates, adjacent-pair reorders, and TPID-byte corruption, all at
    /// their exact scheduled indices. Pure and deterministic — the chaos
    /// harness runs it in front of the socket, the runtime never sees it.
    pub fn apply_to_frames(&self, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(frames.len() + self.packet.len());
        let mut deferred: Option<Vec<u8>> = None;
        for (index, frame) in frames.iter().enumerate() {
            match self.packet.get(&(index as u64)) {
                Some(PacketFault::Drop) => {}
                Some(PacketFault::Duplicate) => {
                    out.push(frame.clone());
                    out.push(frame.clone());
                }
                Some(PacketFault::Reorder) => {
                    if let Some(held) = deferred.take() {
                        out.push(held);
                    }
                    deferred = Some(frame.clone());
                    continue;
                }
                Some(PacketFault::Corrupt) => {
                    let mut corrupted = frame.clone();
                    if let Some(byte) = corrupted.get_mut(12) {
                        *byte ^= 0xFF;
                    }
                    out.push(corrupted);
                }
                None => out.push(frame.clone()),
            }
            if let Some(held) = deferred.take() {
                out.push(held);
            }
        }
        if let Some(held) = deferred {
            out.push(held);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let spec = FaultSpec {
            shards: 8,
            burst_horizon: 1000,
            worker_panics: 3,
            worker_stalls: 4,
            stall: Duration::from_millis(5),
            packet_horizon: 10_000,
            packet_faults: 50,
        };
        let a = FaultPlan::randomized(42, &spec);
        let b = FaultPlan::randomized(42, &spec);
        assert_eq!(a.worker, b.worker);
        assert_eq!(a.packet, b.packet);
        assert!(a.has_worker_faults());
        let c = FaultPlan::randomized(43, &spec);
        assert_ne!(
            (a.worker, a.packet),
            (c.worker, c.packet),
            "different seeds diverge"
        );
    }

    #[test]
    fn explicit_coordinates_are_exact() {
        let plan = FaultPlan::new()
            .with_worker_panic(2, 17)
            .with_worker_stall(1, 5, Duration::from_millis(3))
            .with_dispatcher_stall(0, 9, Duration::from_millis(1))
            .with_control_disconnect(4);
        assert_eq!(plan.worker_fault(2, 17), Some(WorkerFault::Panic));
        assert_eq!(
            plan.worker_fault(1, 5),
            Some(WorkerFault::Stall(Duration::from_millis(3)))
        );
        assert_eq!(plan.worker_fault(2, 16), None);
        assert_eq!(plan.dispatcher_stall(0, 9), Some(Duration::from_millis(1)));
        assert!(plan.control_disconnect(4));
        assert!(!plan.control_disconnect(5));
    }

    #[test]
    fn frame_faults_apply_at_exact_indices() {
        let frames: Vec<Vec<u8>> = (0u8..6).map(|i| vec![i; 16]).collect();
        let plan = FaultPlan::new()
            .with_packet_fault(0, PacketFault::Drop)
            .with_packet_fault(1, PacketFault::Duplicate)
            .with_packet_fault(3, PacketFault::Reorder)
            .with_packet_fault(5, PacketFault::Corrupt);
        let out = plan.apply_to_frames(&frames);
        let firsts: Vec<u8> = out.iter().map(|f| f[0]).collect();
        // 0 dropped; 1 duplicated; 3 swapped behind 4; 5 corrupted at byte 12.
        assert_eq!(firsts, vec![1, 1, 2, 4, 3, 5]);
        assert_eq!(out.last().unwrap()[12], 5 ^ 0xFF, "TPID byte flipped");
        assert_eq!(out.last().unwrap().len(), 16, "length preserved");
    }

    #[test]
    fn trailing_reorder_still_delivers_the_frame() {
        let frames: Vec<Vec<u8>> = (0u8..3).map(|i| vec![i; 16]).collect();
        let plan = FaultPlan::new().with_packet_fault(2, PacketFault::Reorder);
        let out = plan.apply_to_frames(&frames);
        assert_eq!(out.len(), 3, "nothing lost at the stream tail");
    }
}
