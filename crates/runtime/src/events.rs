//! Control-plane event tracing: a fixed-capacity ring of timestamped,
//! structured events, exportable as Chrome trace-event JSON.
//!
//! Every consequential control-plane action leaves a record here: epoch
//! publication and per-shard acknowledgement, module load/update/unload,
//! incremental rule installs, reconfiguration windows, state export/inject,
//! shard retirement, RETA rewrites, log compaction, and whole-resize spans.
//! The data path never writes to the trace — emission sits on the control
//! paths (`publish`, `reshard`, `compact_log`) and the per-epoch
//! acknowledgement in the shard loop, all of which are off the per-packet
//! hot path — so tracing is always on and costs nothing per packet.
//!
//! The buffer is a bounded ring: when it fills, the *oldest* events are
//! dropped (and counted in [`EventTrace::dropped`]) so a long-running
//! runtime keeps its most recent history rather than its oldest.
//!
//! [`EventTrace::to_chrome_trace`] renders the ring in the Chrome
//! trace-event format — load the file in `chrome://tracing` or Perfetto
//! and a full reshard reads as a story: the resize span (`ph: "X"`) over
//! the control track, with export/inject/retire/RETA instants inside it
//! and per-shard acknowledgement instants on each shard's own track.
//! [`chrome_trace_to_events`] parses that JSON back into structured events
//! (the round-trip the test suite pins down).

use menshen_json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default event-ring capacity (events, not bytes).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// One timestamped control-plane event. Timestamps are nanoseconds since
/// the runtime's clock origin (the same base as every latency stamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlEvent {
    /// Nanoseconds since runtime start.
    pub ts_ns: u64,
    /// What happened.
    pub kind: ControlEventKind,
}

/// The structured payload of a control-plane event.
///
/// Fields are `u64` across the board so the Chrome-trace `args` round-trip
/// is exact (JSON numbers are doubles; every value here is far below
/// 2^53).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlEventKind {
    /// A control batch became epoch `epoch` with `ops` operations.
    EpochPublished {
        /// The published epoch.
        epoch: u64,
        /// Operations in the batch.
        ops: u64,
    },
    /// Shard `shard` finished applying epoch `epoch` (the ack).
    EpochApplied {
        /// The acknowledged epoch.
        epoch: u64,
        /// The acknowledging shard.
        shard: u64,
    },
    /// A module was loaded.
    ModuleLoaded {
        /// The module ID.
        module: u64,
    },
    /// A module was hitlessly updated.
    ModuleUpdated {
        /// The module ID.
        module: u64,
    },
    /// A module was unloaded.
    ModuleUnloaded {
        /// The module ID.
        module: u64,
    },
    /// Incremental rules were installed into one module stage.
    RulesInstalled {
        /// The module ID.
        module: u64,
        /// The target stage.
        stage: u64,
        /// Rules in the batch.
        rules: u64,
    },
    /// A reconfiguration window opened for a module.
    ReconfigBegan {
        /// The module ID.
        module: u64,
    },
    /// A reconfiguration window closed.
    ReconfigEnded {
        /// The module ID.
        module: u64,
    },
    /// A statistics snapshot was requested of every shard.
    SnapshotRequested {
        /// The epoch carrying the request.
        epoch: u64,
    },
    /// The acknowledged log prefix was folded into the checkpoint.
    LogCompacted {
        /// The new base epoch.
        through_epoch: u64,
        /// Entries dropped from the live log.
        entries_dropped: u64,
    },
    /// A live resize began.
    ResizeStarted {
        /// Shards before.
        from_shards: u64,
        /// Shards after.
        to_shards: u64,
    },
    /// Tenant state was extracted for migration.
    StateExported {
        /// Modules whose state was exported.
        modules: u64,
        /// Export applied to shards at or beyond this index.
        from_shard: u64,
    },
    /// Migrated state was injected into a shard.
    StateInjected {
        /// The receiving shard.
        shard: u64,
        /// Modules injected.
        modules: u64,
    },
    /// Shards at or beyond `kept` were retired.
    ShardsRetired {
        /// Surviving shard count.
        kept: u64,
    },
    /// The RSS indirection table was rewritten.
    RetaRewritten {
        /// RETA entries.
        buckets: u64,
        /// Active shard count after the rewrite.
        shards: u64,
    },
    /// A worker shard died (panic caught and contained) and was taken out
    /// of the steering table.
    ShardFailed {
        /// The dead shard.
        shard: u64,
        /// Nanoseconds between the worker's death and the supervisor
        /// noticing it.
        detection_ns: u64,
    },
    /// A shard stopped making progress while its rings held work — routed
    /// around, but left running in case it wakes.
    ShardWedged {
        /// The wedged shard.
        shard: u64,
        /// Nanoseconds since the shard's last heartbeat.
        stalled_ns: u64,
    },
    /// A failed shard was replaced by a standby replica and steered back in.
    ShardRecovered {
        /// The recovered shard slot.
        shard: u64,
        /// Nanoseconds the slot was out of service (death to re-steer).
        pause_ns: u64,
        /// In-flight packets that could not be recovered.
        lost: u64,
    },
    /// A live resize completed (rendered as a Chrome duration span).
    ResizeCompleted {
        /// Shards before.
        from_shards: u64,
        /// Shards after.
        to_shards: u64,
        /// When the resize began (nanoseconds since runtime start).
        start_ns: u64,
        /// The measured packet-visible pause, nanoseconds.
        pause_ns: u64,
        /// Modules whose state migrated.
        migrated_modules: u64,
        /// Stateful words migrated.
        migrated_words: u64,
    },
}

impl ControlEventKind {
    /// The event's Chrome-trace name (also the discriminator the importer
    /// matches on).
    pub fn name(&self) -> &'static str {
        match self {
            ControlEventKind::EpochPublished { .. } => "epoch_published",
            ControlEventKind::EpochApplied { .. } => "epoch_applied",
            ControlEventKind::ModuleLoaded { .. } => "module_loaded",
            ControlEventKind::ModuleUpdated { .. } => "module_updated",
            ControlEventKind::ModuleUnloaded { .. } => "module_unloaded",
            ControlEventKind::RulesInstalled { .. } => "rules_installed",
            ControlEventKind::ReconfigBegan { .. } => "reconfig_began",
            ControlEventKind::ReconfigEnded { .. } => "reconfig_ended",
            ControlEventKind::SnapshotRequested { .. } => "snapshot_requested",
            ControlEventKind::LogCompacted { .. } => "log_compacted",
            ControlEventKind::ResizeStarted { .. } => "resize_started",
            ControlEventKind::StateExported { .. } => "state_exported",
            ControlEventKind::StateInjected { .. } => "state_injected",
            ControlEventKind::ShardsRetired { .. } => "shards_retired",
            ControlEventKind::RetaRewritten { .. } => "reta_rewritten",
            ControlEventKind::ShardFailed { .. } => "shard_failed",
            ControlEventKind::ShardWedged { .. } => "shard_wedged",
            ControlEventKind::ShardRecovered { .. } => "shard_recovered",
            ControlEventKind::ResizeCompleted { .. } => "resize_completed",
        }
    }

    /// The event's argument fields as `(key, value)` pairs, in declaration
    /// order.
    fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            ControlEventKind::EpochPublished { epoch, ops } => {
                vec![("epoch", epoch), ("ops", ops)]
            }
            ControlEventKind::EpochApplied { epoch, shard } => {
                vec![("epoch", epoch), ("shard", shard)]
            }
            ControlEventKind::ModuleLoaded { module } => vec![("module", module)],
            ControlEventKind::ModuleUpdated { module } => vec![("module", module)],
            ControlEventKind::ModuleUnloaded { module } => vec![("module", module)],
            ControlEventKind::RulesInstalled {
                module,
                stage,
                rules,
            } => vec![("module", module), ("stage", stage), ("rules", rules)],
            ControlEventKind::ReconfigBegan { module } => vec![("module", module)],
            ControlEventKind::ReconfigEnded { module } => vec![("module", module)],
            ControlEventKind::SnapshotRequested { epoch } => vec![("epoch", epoch)],
            ControlEventKind::LogCompacted {
                through_epoch,
                entries_dropped,
            } => vec![
                ("through_epoch", through_epoch),
                ("entries_dropped", entries_dropped),
            ],
            ControlEventKind::ResizeStarted {
                from_shards,
                to_shards,
            } => vec![("from_shards", from_shards), ("to_shards", to_shards)],
            ControlEventKind::StateExported {
                modules,
                from_shard,
            } => vec![("modules", modules), ("from_shard", from_shard)],
            ControlEventKind::StateInjected { shard, modules } => {
                vec![("shard", shard), ("modules", modules)]
            }
            ControlEventKind::ShardsRetired { kept } => vec![("kept", kept)],
            ControlEventKind::RetaRewritten { buckets, shards } => {
                vec![("buckets", buckets), ("shards", shards)]
            }
            ControlEventKind::ShardFailed {
                shard,
                detection_ns,
            } => vec![("shard", shard), ("detection_ns", detection_ns)],
            ControlEventKind::ShardWedged { shard, stalled_ns } => {
                vec![("shard", shard), ("stalled_ns", stalled_ns)]
            }
            ControlEventKind::ShardRecovered {
                shard,
                pause_ns,
                lost,
            } => vec![("shard", shard), ("pause_ns", pause_ns), ("lost", lost)],
            ControlEventKind::ResizeCompleted {
                from_shards,
                to_shards,
                start_ns,
                pause_ns,
                migrated_modules,
                migrated_words,
            } => vec![
                ("from_shards", from_shards),
                ("to_shards", to_shards),
                ("start_ns", start_ns),
                ("pause_ns", pause_ns),
                ("migrated_modules", migrated_modules),
                ("migrated_words", migrated_words),
            ],
        }
    }

    /// The Chrome-trace thread ID this event renders on: shard events on
    /// their shard's track (tid = shard + 1), control-plane events on
    /// track 0.
    fn tid(&self) -> u64 {
        match *self {
            ControlEventKind::EpochApplied { shard, .. } => shard + 1,
            ControlEventKind::StateInjected { shard, .. } => shard + 1,
            ControlEventKind::ShardFailed { shard, .. } => shard + 1,
            ControlEventKind::ShardWedged { shard, .. } => shard + 1,
            ControlEventKind::ShardRecovered { shard, .. } => shard + 1,
            _ => 0,
        }
    }
}

impl ControlEvent {
    /// Renders one Chrome trace-event object. Instant events use `ph: "i"`
    /// with global scope; [`ControlEventKind::ResizeCompleted`] becomes a
    /// complete-span `ph: "X"` covering the whole resize. The exact
    /// nanosecond timestamp rides along in `args.ts_ns` (Chrome's `ts` is
    /// microseconds, which would otherwise lose precision).
    pub fn to_chrome(&self) -> Json {
        let mut args: Vec<(String, Json)> = self
            .kind
            .args()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::from(v)))
            .collect();
        args.push(("ts_ns".to_owned(), Json::from(self.ts_ns)));
        let mut event = Json::obj([
            ("name", Json::from(self.kind.name())),
            ("cat", Json::from("control")),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(self.kind.tid())),
            ("args", Json::obj(args)),
        ]);
        match self.kind {
            ControlEventKind::ResizeCompleted { start_ns, .. } => {
                event.set("ph", Json::from("X"));
                event.set("ts", Json::from(start_ns as f64 / 1_000.0));
                event.set(
                    "dur",
                    Json::from(self.ts_ns.saturating_sub(start_ns) as f64 / 1_000.0),
                );
            }
            _ => {
                event.set("ph", Json::from("i"));
                event.set("s", Json::from("g"));
                event.set("ts", Json::from(self.ts_ns as f64 / 1_000.0));
            }
        }
        event
    }

    /// Parses one Chrome trace-event object produced by
    /// [`to_chrome`](Self::to_chrome) back into a structured event.
    pub fn from_chrome(event: &Json) -> Result<ControlEvent, String> {
        let name = match event.get("name") {
            Some(Json::Str(name)) => name.as_str(),
            other => return Err(format!("event without a name: {other:?}")),
        };
        let args = event.get("args").ok_or("event without args")?;
        let field = |key: &str| -> Result<u64, String> {
            match args.get(key) {
                Some(Json::Num(value)) => Ok(*value as u64),
                other => Err(format!("{name}: missing numeric arg {key:?}: {other:?}")),
            }
        };
        let kind = match name {
            "epoch_published" => ControlEventKind::EpochPublished {
                epoch: field("epoch")?,
                ops: field("ops")?,
            },
            "epoch_applied" => ControlEventKind::EpochApplied {
                epoch: field("epoch")?,
                shard: field("shard")?,
            },
            "module_loaded" => ControlEventKind::ModuleLoaded {
                module: field("module")?,
            },
            "module_updated" => ControlEventKind::ModuleUpdated {
                module: field("module")?,
            },
            "module_unloaded" => ControlEventKind::ModuleUnloaded {
                module: field("module")?,
            },
            "rules_installed" => ControlEventKind::RulesInstalled {
                module: field("module")?,
                stage: field("stage")?,
                rules: field("rules")?,
            },
            "reconfig_began" => ControlEventKind::ReconfigBegan {
                module: field("module")?,
            },
            "reconfig_ended" => ControlEventKind::ReconfigEnded {
                module: field("module")?,
            },
            "snapshot_requested" => ControlEventKind::SnapshotRequested {
                epoch: field("epoch")?,
            },
            "log_compacted" => ControlEventKind::LogCompacted {
                through_epoch: field("through_epoch")?,
                entries_dropped: field("entries_dropped")?,
            },
            "resize_started" => ControlEventKind::ResizeStarted {
                from_shards: field("from_shards")?,
                to_shards: field("to_shards")?,
            },
            "state_exported" => ControlEventKind::StateExported {
                modules: field("modules")?,
                from_shard: field("from_shard")?,
            },
            "state_injected" => ControlEventKind::StateInjected {
                shard: field("shard")?,
                modules: field("modules")?,
            },
            "shards_retired" => ControlEventKind::ShardsRetired {
                kept: field("kept")?,
            },
            "reta_rewritten" => ControlEventKind::RetaRewritten {
                buckets: field("buckets")?,
                shards: field("shards")?,
            },
            "shard_failed" => ControlEventKind::ShardFailed {
                shard: field("shard")?,
                detection_ns: field("detection_ns")?,
            },
            "shard_wedged" => ControlEventKind::ShardWedged {
                shard: field("shard")?,
                stalled_ns: field("stalled_ns")?,
            },
            "shard_recovered" => ControlEventKind::ShardRecovered {
                shard: field("shard")?,
                pause_ns: field("pause_ns")?,
                lost: field("lost")?,
            },
            "resize_completed" => ControlEventKind::ResizeCompleted {
                from_shards: field("from_shards")?,
                to_shards: field("to_shards")?,
                start_ns: field("start_ns")?,
                pause_ns: field("pause_ns")?,
                migrated_modules: field("migrated_modules")?,
                migrated_words: field("migrated_words")?,
            },
            unknown => return Err(format!("unknown event name {unknown:?}")),
        };
        Ok(ControlEvent {
            ts_ns: field("ts_ns")?,
            kind,
        })
    }
}

/// Parses a whole Chrome trace document (the `traceEvents` form that
/// [`EventTrace::to_chrome_trace`] produces) back into structured events.
pub fn chrome_trace_to_events(trace: &Json) -> Result<Vec<ControlEvent>, String> {
    let events = match trace.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => return Err(format!("no traceEvents array: {other:?}")),
    };
    events.iter().map(ControlEvent::from_chrome).collect()
}

struct TraceInner {
    events: VecDeque<ControlEvent>,
    dropped: u64,
}

/// The fixed-capacity control-plane event ring. Interior-mutable (a mutex,
/// acceptable because every writer is a control-plane path or a per-epoch
/// shard acknowledgement — never the per-packet hot path).
pub struct EventTrace {
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl Default for EventTrace {
    fn default() -> Self {
        EventTrace::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventTrace {
    /// A trace ring holding at most `capacity` events (oldest evicted
    /// first). A zero capacity disables recording entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        EventTrace {
            capacity,
            inner: Mutex::new(TraceInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn emit(&self, ts_ns: u64, kind: ControlEventKind) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("event trace poisoned");
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(ControlEvent { ts_ns, kind });
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<ControlEvent> {
        self.inner
            .lock()
            .expect("event trace poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event trace poisoned").dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("event trace poisoned")
            .events
            .len()
    }

    /// True when nothing has been recorded (or capacity is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the ring as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`) — write it to a
    /// file and open it in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> Json {
        let events: Vec<Json> = self
            .inner
            .lock()
            .expect("event trace poisoned")
            .events
            .iter()
            .map(ControlEvent::to_chrome)
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<ControlEventKind> {
        vec![
            ControlEventKind::EpochPublished { epoch: 3, ops: 2 },
            ControlEventKind::EpochApplied { epoch: 3, shard: 1 },
            ControlEventKind::ModuleLoaded { module: 7 },
            ControlEventKind::ModuleUpdated { module: 7 },
            ControlEventKind::ModuleUnloaded { module: 7 },
            ControlEventKind::RulesInstalled {
                module: 7,
                stage: 2,
                rules: 10_000,
            },
            ControlEventKind::ReconfigBegan { module: 7 },
            ControlEventKind::ReconfigEnded { module: 7 },
            ControlEventKind::SnapshotRequested { epoch: 4 },
            ControlEventKind::LogCompacted {
                through_epoch: 4,
                entries_dropped: 3,
            },
            ControlEventKind::ResizeStarted {
                from_shards: 2,
                to_shards: 4,
            },
            ControlEventKind::StateExported {
                modules: 3,
                from_shard: 0,
            },
            ControlEventKind::StateInjected {
                shard: 2,
                modules: 3,
            },
            ControlEventKind::ShardsRetired { kept: 2 },
            ControlEventKind::RetaRewritten {
                buckets: 128,
                shards: 4,
            },
            ControlEventKind::ShardFailed {
                shard: 1,
                detection_ns: 40_000,
            },
            ControlEventKind::ShardWedged {
                shard: 2,
                stalled_ns: 9_000_000,
            },
            ControlEventKind::ShardRecovered {
                shard: 1,
                pause_ns: 600_000,
                lost: 17,
            },
            ControlEventKind::ResizeCompleted {
                from_shards: 2,
                to_shards: 4,
                start_ns: 1_000_000,
                pause_ns: 250_000,
                migrated_modules: 3,
                migrated_words: 4096,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_chrome_json() {
        let trace = EventTrace::default();
        for (index, kind) in every_kind().into_iter().enumerate() {
            trace.emit(1_000_000 + index as u64 * 500, kind);
        }
        let original = trace.events();
        // Through the exporter, through text, through the parser, back.
        let text = trace.to_chrome_trace().pretty();
        let parsed = Json::parse(&text).expect("chrome trace parses as JSON");
        let recovered = chrome_trace_to_events(&parsed).expect("events reconstruct");
        assert_eq!(recovered, original, "lossless round trip");
    }

    #[test]
    fn chrome_events_carry_required_viewer_fields() {
        let event = ControlEvent {
            ts_ns: 2_500,
            kind: ControlEventKind::EpochApplied { epoch: 1, shard: 3 },
        };
        let json = event.to_chrome();
        for key in ["name", "ph", "ts", "pid", "tid", "args"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("tid"), Some(&Json::from(4u64)), "shard track");
        let span = ControlEvent {
            ts_ns: 9_000,
            kind: ControlEventKind::ResizeCompleted {
                from_shards: 1,
                to_shards: 2,
                start_ns: 4_000,
                pause_ns: 1_000,
                migrated_modules: 1,
                migrated_words: 0,
            },
        }
        .to_chrome();
        assert_eq!(span.get("ph"), Some(&Json::from("X")));
        assert_eq!(
            span.get("ts"),
            Some(&Json::from(4.0)),
            "span starts at start_ns"
        );
        assert_eq!(
            span.get("dur"),
            Some(&Json::from(5.0)),
            "span covers the resize"
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let trace = EventTrace::with_capacity(3);
        for epoch in 1..=5u64 {
            trace.emit(
                epoch * 10,
                ControlEventKind::EpochPublished { epoch, ops: 1 },
            );
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 2);
        let epochs: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| match e.kind {
                ControlEventKind::EpochPublished { epoch, .. } => epoch,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(epochs, vec![3, 4, 5], "oldest evicted first");

        let disabled = EventTrace::with_capacity(0);
        disabled.emit(1, ControlEventKind::ShardsRetired { kept: 1 });
        assert!(disabled.is_empty());
        assert_eq!(disabled.dropped(), 0);
    }
}
