//! Worker threads of the dispatch plane: shards and dispatchers.
//!
//! A **shard** is deliberately boring — that is the point of the design. It
//! owns a full [`MenshenPipeline`] replica and loops over exactly three
//! steps: apply pending control-plane epochs (in published order), pop the
//! next burst from one of its SPSC input rings (one ring per dispatcher,
//! drained round-robin, all sharing one [`Parker`] so any producer can wake
//! an idle shard), process it with the allocation-free batched data path.
//! All cross-thread coordination happens at burst granularity through the
//! [`Shared`] state: the epoch log on the way in, the progress board
//! (applied epoch, bursts completed, traffic tallies, on-demand snapshots)
//! on the way out.
//!
//! A **dispatcher** is one thread of the parallel dispatch plane
//! (`RuntimeOptions::dispatchers ≥ 1`): it pops raw packet chunks from its
//! own input ring (the model of one NIC RX queue), steers every packet with
//! its own [`crate::Steerer`] clone into per-shard scratch, and hands full
//! bursts to its row of shard rings — so ring synchronisation happens once
//! per (dispatcher, shard, burst), never per packet. Partial bursts are
//! flushed whenever the input ring runs dry, which is exactly the quiesce
//! point the control plane's flush barrier waits for.
//!
//! Each shard also keeps two local [`LatencyHistogram`]s — per-packet
//! sojourn time (ring wait + service, measured from the ingress stamp in
//! [`menshen_packet::Packet::timestamp_ns`]) and per-burst service time —
//! plus, at snapshot time, its input rings' depth high-watermark and current
//! occupancy, so backpressure is visible in telemetry. Recording is
//! shard-local and lock-free; the control plane only sees the data when a
//! `Snapshot` epoch exports it.

use crate::control::{EpochEntry, EpochLog};
use crate::ring::{Consumer, Parker, Producer};
use crate::rss::Steerer;
use menshen_core::packet_filter::FilterCounters;
use menshen_core::{LatencyHistogram, MenshenPipeline, ModuleCounters, SystemStats, Verdict};
use menshen_packet::Packet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What travels through the rings: one burst of packets.
pub(crate) type Burst = Vec<Packet>;

/// Iterations a shard spins over its empty rings before parking.
const IDLE_SPIN_LIMIT: u32 = 128;

/// Per-shard traffic tallies, updated once per burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Bursts processed.
    pub bursts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all reasons).
    pub dropped: u64,
}

/// A shard's local latency recorders: per-packet sojourn time and per-burst
/// service time, both in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// Per-packet latency: dispatcher ingress stamp → burst completion
    /// (queueing in the ring plus pipeline service).
    pub packet_ns: LatencyHistogram,
    /// Per-burst service time: the wall-clock cost of one
    /// `process_batch_into` call.
    pub burst_ns: LatencyHistogram,
}

/// A snapshot of one shard's input-ring depths, taken at `Snapshot` epochs
/// so queueing/backpressure is visible in telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingDepth {
    /// The deepest any of this shard's input rings has ever been, in bursts.
    pub high_watermark: u64,
    /// Bursts queued across this shard's input rings at snapshot time.
    pub occupancy: u64,
}

/// A shard's exported statistics snapshot, produced on demand by the
/// [`crate::ControlOp::Snapshot`] operation.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Per-module traffic counters of this shard's replica.
    pub counters: Vec<(u16, ModuleCounters)>,
    /// Device statistics of this shard's system-level module.
    pub system: SystemStats,
    /// This shard's packet-filter counters.
    pub filter: FilterCounters,
    /// Cumulative per-packet latency recorded by this shard.
    pub latency: LatencyHistogram,
    /// Cumulative per-burst service time recorded by this shard.
    pub burst_latency: LatencyHistogram,
    /// Input-ring depth telemetry (zero in deterministic mode, where no
    /// rings exist).
    pub ring: RingDepth,
}

/// One shard's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardProgress {
    /// Highest epoch this shard has fully applied.
    pub applied_epoch: u64,
    /// Bursts completed (matched against bursts submitted for inline-mode
    /// `flush`).
    pub bursts_done: u64,
    /// Running traffic tallies.
    pub stats: ShardStats,
    /// Snapshot exported by the most recent `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// First error of the most recent epoch that failed on this shard, with
    /// the epoch it belongs to.
    pub last_error: Option<(u64, String)>,
    /// True once the worker thread has exited (shutdown or panic). Waiters
    /// must never block on an exited shard's progress.
    pub exited: bool,
}

/// One dispatcher's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct DispatcherProgress {
    /// Packets this dispatcher has handed to shard rings (partial bursts
    /// still in its scratch are *not* counted — the flush barrier waits for
    /// this to reach the submitted count, which only happens after the
    /// dispatcher's quiesce-point flush).
    pub packets_dispatched: u64,
    /// Bursts this dispatcher has pushed onto shard rings.
    pub bursts_dispatched: u64,
    /// Packets pushed per destination shard — the flush barrier sums these
    /// across dispatchers to know how much each shard still owes.
    pub per_shard: Vec<u64>,
    /// True once the dispatcher thread has exited (shutdown or failure).
    pub exited: bool,
    /// The shard whose ring closed under this dispatcher, if that is why it
    /// exited.
    pub failed_shard: Option<usize>,
}

/// The progress board: one slot per shard plus one per dispatcher, guarded
/// by a single mutex so the shared condvar can wait on any combination.
#[derive(Debug, Default)]
pub(crate) struct ProgressBoard {
    pub shards: Vec<ShardProgress>,
    pub dispatchers: Vec<DispatcherProgress>,
}

/// State shared between the runtime (control plane) and all worker threads.
pub(crate) struct Shared {
    /// The compactable log of published control epochs.
    pub log: Mutex<EpochLog>,
    /// Epoch of the newest published entry; checked without taking the log
    /// lock on the per-burst fast path. `SeqCst` so the shard parkers'
    /// flag/recheck wakeup protocol covers epoch publication too.
    pub published: AtomicU64,
    /// The progress board (shards + dispatchers).
    pub progress: Mutex<ProgressBoard>,
    /// Notified whenever any progress slot advances.
    pub cv: Condvar,
    /// The runtime's clock origin: ingress stamps and latency measurements
    /// are nanoseconds since this instant, so dispatchers and shards share
    /// a time base.
    pub start: Instant,
}

impl Shared {
    pub(crate) fn new(shards: usize, dispatchers: usize) -> Self {
        Shared {
            log: Mutex::new(EpochLog::new()),
            published: AtomicU64::new(0),
            progress: Mutex::new(ProgressBoard {
                shards: vec![ShardProgress::default(); shards],
                dispatchers: vec![DispatcherProgress::default(); dispatchers],
            }),
            cv: Condvar::new(),
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the runtime's clock origin.
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Applies one published entry to a pipeline replica. Returns the snapshot
/// (if the entry requested one) and the first error message (if any op
/// failed). Later ops still run after a failure so replicas cannot diverge on
/// which prefix of the entry they applied.
pub(crate) fn apply_entry(
    pipeline: &mut MenshenPipeline,
    entry: &EpochEntry,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> (Option<ShardSnapshot>, Option<String>) {
    let mut error = None;
    let mut wants_snapshot = false;
    for op in &entry.ops {
        if matches!(op, crate::ControlOp::Snapshot) {
            wants_snapshot = true;
            continue;
        }
        if let Err(e) = op.apply(pipeline) {
            error.get_or_insert_with(|| e.to_string());
        }
    }
    let snapshot = wants_snapshot.then(|| take_snapshot(pipeline, telemetry, ring));
    (snapshot, error)
}

/// Exports a replica's per-module counters, device statistics and latency
/// telemetry.
pub(crate) fn take_snapshot(
    pipeline: &MenshenPipeline,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> ShardSnapshot {
    let counters = pipeline
        .loaded_modules()
        .into_iter()
        .map(|module| {
            (
                module.value(),
                pipeline.module_counters(module).unwrap_or_default(),
            )
        })
        .collect();
    ShardSnapshot {
        counters,
        system: pipeline.system().stats(),
        filter: pipeline.filter().counters(),
        latency: telemetry.packet_ns.clone(),
        burst_latency: telemetry.burst_ns.clone(),
        ring,
    }
}

/// The current ring-depth telemetry across a shard's input rings.
fn ring_depth(inputs: &[Consumer<Burst>]) -> RingDepth {
    RingDepth {
        high_watermark: inputs
            .iter()
            .map(|ring| ring.depth_high_watermark())
            .max()
            .unwrap_or(0),
        occupancy: inputs.iter().map(|ring| ring.occupancy() as u64).sum(),
    }
}

/// Applies every not-yet-applied epoch to `pipeline` and advertises the new
/// applied epoch on the progress board. `applied` is the highest epoch this
/// shard has already applied (its log cursor — compaction-safe, because the
/// log only ever drops epochs every shard has acknowledged).
pub(crate) fn apply_pending(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    shared: &Shared,
    applied: &mut u64,
    telemetry: &ShardTelemetry,
    inputs: &[Consumer<Burst>],
) {
    // Fast path: nothing new published since this shard's cursor.
    if *applied >= shared.published.load(Ordering::SeqCst) {
        return;
    }
    // Copy the pending suffix out of the log so heavyweight ops (module
    // loads) never run while holding the log lock.
    let pending: Vec<EpochEntry> = {
        let log = shared.log.lock().expect("log lock poisoned");
        log.entries_after(*applied)
    };
    for entry in &pending {
        let (snapshot, error) = apply_entry(pipeline, entry, telemetry, ring_depth(inputs));
        *applied = entry.epoch;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.applied_epoch = entry.epoch;
        if let Some(snapshot) = snapshot {
            slot.snapshot = Some(snapshot);
        }
        if let Some(message) = error {
            slot.last_error = Some((entry.epoch, message));
        }
        drop(progress);
        shared.cv.notify_all();
    }
}

/// Marks a shard as exited on the progress board when the worker returns
/// *or panics*, so `wait_for_epoch`/`flush` can never block forever on a
/// dead shard.
struct ShardExitGuard {
    shared: Arc<Shared>,
    shard_index: usize,
}

impl Drop for ShardExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        progress.shards[self.shard_index].exited = true;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The shard thread body: apply pending epochs, pop a burst from one of the
/// input rings (round-robin over dispatchers), process, tally — until every
/// ring closes. With all rings empty the shard spins briefly, then parks on
/// the shared parker; dispatchers, the inline submitter, and the control
/// plane all wake it through that parker.
pub(crate) fn run_worker(
    shard_index: usize,
    mut pipeline: MenshenPipeline,
    inputs: Vec<Consumer<Burst>>,
    parker: Arc<Parker>,
    shared: Arc<Shared>,
) {
    let _exit_guard = ShardExitGuard {
        shared: Arc::clone(&shared),
        shard_index,
    };
    let mut applied = 0u64;
    let mut telemetry = ShardTelemetry::default();
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut next_ring = 0usize;
    let mut idle_spins = 0u32;
    loop {
        apply_pending(
            shard_index,
            &mut pipeline,
            &shared,
            &mut applied,
            &telemetry,
            &inputs,
        );
        // Round-robin over the per-dispatcher input rings so no dispatcher
        // can starve another.
        let mut burst = None;
        for offset in 0..inputs.len() {
            let ring = (next_ring + offset) % inputs.len();
            if let Some(packets) = inputs[ring].try_pop() {
                next_ring = (ring + 1) % inputs.len();
                burst = Some(packets);
                break;
            }
        }
        let Some(packets) = burst else {
            if inputs.iter().all(|ring| ring.is_finished()) {
                break;
            }
            idle_spins += 1;
            if idle_spins < IDLE_SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                // Park until any producer publishes a burst, every ring
                // finishes, or a new control epoch needs applying.
                parker.park_until(|| {
                    inputs.iter().any(|ring| ring.occupancy() > 0)
                        || inputs.iter().all(|ring| ring.is_finished())
                        || shared.published.load(Ordering::SeqCst) > applied
                });
                idle_spins = 0;
            }
            continue;
        };
        idle_spins = 0;
        let service_start = Instant::now();
        pipeline.process_batch_into(&packets, &mut verdicts);
        let service_ns = service_start.elapsed().as_nanos() as u64;
        let done_ns = shared.now_ns();
        telemetry.burst_ns.record(service_ns);
        for packet in &packets {
            telemetry
                .packet_ns
                .record(done_ns.saturating_sub(packet.timestamp_ns));
        }
        let forwarded = verdicts.iter().filter(|v| v.is_forwarded()).count() as u64;
        let total = packets.len() as u64;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.bursts_done += 1;
        slot.stats.bursts += 1;
        slot.stats.packets += total;
        slot.stats.forwarded += forwarded;
        slot.stats.dropped += total - forwarded;
        drop(progress);
        shared.cv.notify_all();
    }
    // Epochs published after the final burst must still be acknowledged so a
    // concurrent `wait_for_epoch` cannot hang across shutdown.
    apply_pending(
        shard_index,
        &mut pipeline,
        &shared,
        &mut applied,
        &telemetry,
        &inputs,
    );
}

/// Marks a dispatcher as exited (and records the shard that failed it, if
/// any) when the thread returns or panics.
struct DispatcherExitGuard {
    shared: Arc<Shared>,
    dispatcher_index: usize,
    failed_shard: Option<usize>,
}

impl Drop for DispatcherExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.dispatchers[self.dispatcher_index];
        slot.exited = true;
        slot.failed_shard = self.failed_shard;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The dispatcher thread body: pop a chunk of ingress packets from this
/// dispatcher's input ring, Toeplitz-steer every packet into per-shard
/// scratch, and push *full* bursts onto this dispatcher's row of shard
/// rings — ring synchronisation once per (dispatcher, shard, burst).
/// Partial bursts are flushed whenever the input ring runs dry: that is the
/// dispatcher's quiesce point, after which its `packets_dispatched` equals
/// everything it ever received, which is exactly what the control plane's
/// flush barrier waits for before publishing an epoch.
pub(crate) fn run_dispatcher(
    dispatcher_index: usize,
    steerer: Steerer,
    input: Consumer<Burst>,
    outputs: Vec<Producer<Burst>>,
    burst_size: usize,
    shared: Arc<Shared>,
) {
    let mut exit_guard = DispatcherExitGuard {
        shared: Arc::clone(&shared),
        dispatcher_index,
        failed_shard: None,
    };
    // One accounting site for every burst handoff: takes the shard's scratch
    // and pushes it, bumping the dispatch tallies on success. Returns false
    // when the shard's ring has closed.
    struct DispatchState {
        scatter: Vec<Vec<Packet>>,
        packets: u64,
        bursts: u64,
        per_shard: Vec<u64>,
    }
    impl DispatchState {
        fn push_scratch(
            &mut self,
            outputs: &[Producer<Burst>],
            shard: usize,
            burst_size: usize,
        ) -> bool {
            let burst = std::mem::replace(&mut self.scatter[shard], Vec::with_capacity(burst_size));
            let packets = burst.len() as u64;
            if outputs[shard].push(burst).is_err() {
                return false;
            }
            self.packets += packets;
            self.bursts += 1;
            self.per_shard[shard] += packets;
            true
        }

        fn advertise(&self, shared: &Shared, dispatcher_index: usize) {
            let mut progress = shared.progress.lock().expect("progress lock poisoned");
            let slot = &mut progress.dispatchers[dispatcher_index];
            slot.packets_dispatched = self.packets;
            slot.bursts_dispatched = self.bursts;
            slot.per_shard.clear();
            slot.per_shard.extend_from_slice(&self.per_shard);
            drop(progress);
            shared.cv.notify_all();
        }
    }
    let mut state = DispatchState {
        scatter: (0..outputs.len())
            .map(|_| Vec::with_capacity(burst_size))
            .collect(),
        packets: 0,
        bursts: 0,
        per_shard: vec![0u64; outputs.len()],
    };
    'run: while let Some(chunk) = input.pop() {
        for packet in chunk {
            let shard = steerer.shard_for(&packet);
            state.scatter[shard].push(packet);
            if state.scatter[shard].len() >= burst_size
                && !state.push_scratch(&outputs, shard, burst_size)
            {
                exit_guard.failed_shard = Some(shard);
                break 'run;
            }
        }
        // Quiesce point: no further chunk is immediately available, so
        // flush partial bursts — every packet received so far is now in
        // flight — and advertise progress for the flush barrier.
        if input.occupancy() == 0 {
            for shard in 0..outputs.len() {
                if !state.scatter[shard].is_empty()
                    && !state.push_scratch(&outputs, shard, burst_size)
                {
                    exit_guard.failed_shard = Some(shard);
                    break 'run;
                }
            }
        }
        state.advertise(&shared, dispatcher_index);
    }
    // Input closed (or a shard ring failed): flush whatever scratch remains
    // toward still-open rings, then let the producers drop — which closes
    // this dispatcher's row of shard rings.
    for shard in 0..outputs.len() {
        if !state.scatter[shard].is_empty() {
            // Best effort on the way out: a closed ring here just means the
            // shard is already gone too.
            let _ = state.push_scratch(&outputs, shard, burst_size);
        }
    }
    state.advertise(&shared, dispatcher_index);
}
