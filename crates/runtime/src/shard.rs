//! Worker threads of the dispatch plane: shards and dispatchers.
//!
//! A **shard** is deliberately boring — that is the point of the design. It
//! owns a full [`MenshenPipeline`] replica and loops over exactly three
//! steps: apply pending control-plane epochs (in published order), pop the
//! next burst from one of its SPSC input rings (one ring per dispatcher,
//! drained round-robin, all sharing one [`Parker`] so any producer can wake
//! an idle shard), process it with the allocation-free batched data path.
//! All cross-thread coordination happens at burst granularity through the
//! [`Shared`] state: the epoch log on the way in, the progress board
//! (applied epoch, bursts completed, traffic tallies, on-demand snapshots)
//! on the way out.
//!
//! A **dispatcher** is one thread of the parallel dispatch plane
//! (`RuntimeOptions::dispatchers ≥ 1`): it pops raw packet chunks from its
//! own input ring (the model of one NIC RX queue), steers every packet with
//! its own [`crate::Steerer`] clone into per-shard scratch, and hands full
//! bursts to its row of shard rings — so ring synchronisation happens once
//! per (dispatcher, shard, burst), never per packet. Partial bursts are
//! flushed whenever the input ring runs dry, which is exactly the quiesce
//! point the control plane's flush barrier waits for.
//!
//! Each shard also keeps two local [`LatencyHistogram`]s — per-packet
//! sojourn time (ring wait + service, measured from the ingress stamp in
//! [`menshen_packet::Packet::timestamp_ns`]) and per-burst service time —
//! plus, at snapshot time, its input rings' depth high-watermark and current
//! occupancy, so backpressure is visible in telemetry. Recording is
//! shard-local and lock-free; the control plane only sees the data when a
//! `Snapshot` epoch exports it.

use crate::control::{EpochEntry, EpochLog};
use crate::events::{ControlEventKind, EventTrace};
use crate::faults::{FaultPlan, WorkerFault};
use crate::ring::{Consumer, Parker, Producer, PushError};
use crate::rss::Steerer;
use menshen_core::packet_filter::FilterCounters;
use menshen_core::{
    LatencyHistogram, MenshenPipeline, ModuleCounters, ModuleState, StageProfile, StateDigest,
    SystemStats, TenantTelemetry, Verdict,
};
use menshen_packet::Packet;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What travels through a *dispatcher's* input ring: one chunk of raw
/// ingress packets, not yet steered.
pub(crate) type Burst = Vec<Packet>;

/// What travels through a *shard's* input ring: one burst of steered
/// packets plus the state digests of packets the replicated-module plane
/// steered elsewhere. Digests are bookkeeping, not traffic — only
/// `packets` feeds the dispatch tallies, the flush barrier and the
/// conservation audit.
#[derive(Debug, Default)]
pub(crate) struct ShardBurst {
    /// Steered packets, processed by the shard's pipeline replica.
    pub packets: Vec<Packet>,
    /// State digests of replicated-module packets owned by *other* shards,
    /// interleaved with `packets` via [`StateDigest::before`]: a digest
    /// replays after `packets[..before]` and before `packets[before..]`.
    /// `before` values are nondecreasing within a burst.
    pub digests: Vec<StateDigest>,
}

/// Processes one shard burst: the shard's own packets through the batched
/// data path, with each foreign-packet digest replayed at its recorded
/// interleave point, so every replica of a replicated module observes the
/// module's packets in the same global order. `scratch` is a reusable
/// verdict buffer (the batch path clears its output vector, so segments are
/// collected there and appended).
pub(crate) fn process_shard_burst(
    pipeline: &mut MenshenPipeline,
    packets: &[Packet],
    digests: &[StateDigest],
    verdicts: &mut Vec<Verdict>,
    scratch: &mut Vec<Verdict>,
) {
    if digests.is_empty() {
        pipeline.process_batch_into(packets, verdicts);
        return;
    }
    verdicts.clear();
    verdicts.reserve(packets.len());
    let mut cursor = 0usize;
    for digest in digests {
        let boundary = (digest.before() as usize).min(packets.len());
        if boundary > cursor {
            pipeline.process_batch_into(&packets[cursor..boundary], scratch);
            verdicts.append(scratch);
            cursor = boundary;
        }
        pipeline.apply_state_digest(digest);
    }
    if cursor < packets.len() {
        pipeline.process_batch_into(&packets[cursor..], scratch);
        verdicts.append(scratch);
    }
}

/// A transmit hook the data plane invokes once per processed packet, with
/// the *original* ingress packet (its `ingress_port` names the rx queue it
/// arrived on) and the verdict the pipeline produced (which carries the
/// rewritten packet for forwards). Socket backends implement this to echo
/// verdicts back out of the box; in threaded mode it is the only way packet
/// outcomes leave the worker threads, whose verdict streams are otherwise
/// consumed as telemetry.
///
/// Workers call `transmit` on the hot path, after the burst's pipeline pass
/// and before its progress-board update — so by the time a flush barrier
/// returns, every processed packet has been handed to the sink.
/// Implementations must be cheap and must never panic (a panicking sink
/// takes its worker shard down).
///
/// Install one with [`crate::ShardedRuntime::set_egress`]; workers adopt a
/// newly staged sink at their next burst boundary.
pub trait EgressSink: Send + Sync {
    /// Hands one processed packet and its verdict to the sink.
    fn transmit(&self, packet: &Packet, verdict: &Verdict);
}

/// Iterations a shard spins over its empty rings before parking.
const IDLE_SPIN_LIMIT: u32 = 128;

/// Per-shard traffic tallies, updated once per burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Bursts processed.
    pub bursts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all reasons).
    pub dropped: u64,
}

/// A shard's local latency recorders: per-packet sojourn time and per-burst
/// service time, both in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// Per-packet latency: dispatcher ingress stamp → burst completion
    /// (queueing in the ring plus pipeline service).
    pub packet_ns: LatencyHistogram,
    /// Per-burst service time: the wall-clock cost of one
    /// `process_batch_into` call.
    pub burst_ns: LatencyHistogram,
    /// Per-tenant SLO telemetry (sojourn histogram + verdict ledger), keyed
    /// by module ID. Tenant 0 collects packets that never resolved to a
    /// module (no VLAN tag, VLAN with no loaded module).
    pub tenants: BTreeMap<u16, TenantTelemetry>,
}

impl ShardTelemetry {
    /// Attributes one packet's verdict and sojourn to its tenant.
    pub fn record_verdict(&mut self, verdict: &Verdict, sojourn_ns: u64) {
        self.tenants
            .entry(verdict_tenant(verdict))
            .or_default()
            .record(verdict, sojourn_ns);
    }
}

/// The tenant a verdict is attributed to: the packet's module ID, or 0 for
/// packets that never resolved to a module (no VLAN tag, unknown module).
pub(crate) fn verdict_tenant(verdict: &Verdict) -> u16 {
    match verdict {
        Verdict::Forwarded { module_id, .. } => *module_id,
        Verdict::Dropped { module_id, .. } => module_id.unwrap_or(0),
    }
}

/// The tenant a *not yet processed* packet is attributed to for shed
/// accounting: its VLAN ID (which is the module ID in Menshen's tenancy
/// model), or 0 when untagged.
pub(crate) fn packet_tenant(packet: &Packet) -> u16 {
    packet.vlan_id().map(|id| id.value()).unwrap_or(0)
}

/// Renders a caught panic payload as a message (the common `&str`/`String`
/// payloads verbatim, anything else generically).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

/// A snapshot of one shard's input-ring depths, taken at `Snapshot` epochs
/// so queueing/backpressure is visible in telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingDepth {
    /// The deepest any of this shard's input rings has ever been, in bursts.
    pub high_watermark: u64,
    /// Bursts queued across this shard's input rings at snapshot time.
    pub occupancy: u64,
}

/// A shard's exported statistics snapshot, produced on demand by the
/// [`crate::ControlOp::Snapshot`] operation.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Per-module traffic counters of this shard's replica.
    pub counters: Vec<(u16, ModuleCounters)>,
    /// Device statistics of this shard's system-level module.
    pub system: SystemStats,
    /// This shard's packet-filter counters.
    pub filter: FilterCounters,
    /// Cumulative per-packet latency recorded by this shard.
    pub latency: LatencyHistogram,
    /// Cumulative per-burst service time recorded by this shard.
    pub burst_latency: LatencyHistogram,
    /// Cumulative per-tenant SLO telemetry recorded by this shard, sorted
    /// by module ID.
    pub tenants: Vec<(u16, TenantTelemetry)>,
    /// Sampled per-stage timing from this shard's replica (empty unless the
    /// `profiling` cargo feature is enabled in `menshen-core`).
    pub profile: StageProfile,
    /// Input-ring depth telemetry (zero in deterministic mode, where no
    /// rings exist).
    pub ring: RingDepth,
}

/// One shard's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardProgress {
    /// Highest epoch this shard has fully applied.
    pub applied_epoch: u64,
    /// Bursts completed (matched against bursts submitted for inline-mode
    /// `flush`).
    pub bursts_done: u64,
    /// Running traffic tallies.
    pub stats: ShardStats,
    /// Snapshot exported by the most recent `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// Dynamic state extracted by the most recent `ExportState` op, tagged
    /// with the epoch that requested it. The resharding control path takes
    /// these, merges them per module and republishes them as `InjectState`.
    pub exported: Option<(u64, Vec<ModuleState>)>,
    /// First error of the most recent epoch that failed on this shard, with
    /// the epoch it belongs to.
    pub last_error: Option<(u64, String)>,
    /// True once the worker thread has exited (shutdown, retirement or
    /// panic). Waiters must never block on an exited shard's progress.
    pub exited: bool,
    /// The panic message of a *contained* worker failure — set by the dying
    /// worker just before it exits, so the supervisor can tell an abnormal
    /// death from orderly shutdown/retirement.
    pub failure: Option<String>,
    /// When (nanoseconds since runtime start) the worker died. Detection
    /// latency is measured against this.
    pub exited_at_ns: Option<u64>,
    /// The worker's last sign of life (nanoseconds since runtime start),
    /// posted with every burst completion. A stale heartbeat *while the
    /// shard's rings hold work* marks a wedged shard.
    pub heartbeat_ns: u64,
    /// Packets bound for this slot that failure made unprocessable: the
    /// burst in flight when the worker died, plus the ring residue the
    /// supervisor drained. Feeds the conservation audit's `lost_to_failure`.
    pub lost_packets: u64,
    /// Processing credit inherited from this slot's previous incarnations —
    /// a recovered casualty's processed + lost packets. The flush barrier
    /// adds it to the replacement worker's (from-zero) counters so the
    /// per-shard dispatch tallies still reconcile across a respawn.
    pub flush_offset: u64,
}

/// One dispatcher's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct DispatcherProgress {
    /// Packets this dispatcher has handed to shard rings (partial bursts
    /// still in its scratch are *not* counted — the flush barrier waits for
    /// this to reach the submitted count, which only happens after the
    /// dispatcher's quiesce-point flush).
    pub packets_dispatched: u64,
    /// Bursts this dispatcher has pushed onto shard rings.
    pub bursts_dispatched: u64,
    /// Packets pushed per destination shard — the flush barrier sums these
    /// across dispatchers to know how much each shard still owes.
    pub per_shard: Vec<u64>,
    /// True once the dispatcher thread has exited (shutdown or failure).
    pub exited: bool,
    /// The most recent shard whose ring closed under this dispatcher. Since
    /// the chaos work a closed shard ring no longer kills the dispatcher
    /// (the burst is counted in `lost_per_shard` and dispatch continues);
    /// this survives as a diagnostic.
    pub failed_shard: Option<usize>,
    /// The steering version this dispatcher last adopted. The supervisor
    /// waits for every live dispatcher to reach a staged version before
    /// draining a dead shard's rings, so no in-flight push can race the
    /// residue count.
    pub steering_adopted: u64,
    /// Packets shed per tenant because a shard ring stayed full past the
    /// bounded wait — the overloaded tenant's own backpressure drops.
    pub shed_tenants: BTreeMap<u16, u64>,
    /// Packets lost per destination shard because its ring closed
    /// mid-stream (the degraded path: a worker death that left no
    /// drainable rings behind).
    pub lost_per_shard: Vec<u64>,
    /// State digests this dispatcher generated for replicated-module
    /// packets (one per packet per non-owning shard). Bookkeeping, not
    /// packets: excluded from `packets_dispatched` and the flush barrier.
    pub digests_dispatched: u64,
    /// Wire bytes of those digests — the replication overhead the bench
    /// plane reports as bytes/packet.
    pub digest_bytes_dispatched: u64,
}

/// The progress board: one slot per shard plus one per dispatcher, guarded
/// by a single mutex so the shared condvar can wait on any combination.
#[derive(Debug, Default)]
pub(crate) struct ProgressBoard {
    pub shards: Vec<ShardProgress>,
    pub dispatchers: Vec<DispatcherProgress>,
}

/// A pending topology/steering change for one dispatcher thread, staged by
/// the resharding control path and applied by the dispatcher *before it
/// steers its next packet*. Resharding only ever publishes these while the
/// whole plane is quiesced (flush barrier + no concurrent submitter), so a
/// dispatcher that is parked simply finds the update waiting when the next
/// chunk wakes it.
pub(crate) struct DispatcherUpdate {
    /// The steerer to use from now on (new RETA, shard count, pin set).
    pub steerer: Steerer,
    /// Keep only the first `keep` shard rings; the rest are dropped (their
    /// producers close — the retired workers are already gone).
    pub keep: usize,
    /// Producers for newly stood-up shards, appended after `keep`.
    pub append: Vec<Producer<ShardBurst>>,
    /// In-place slot replacements — `(slot, producer)` pairs that swap one
    /// surviving slot's producer for a fresh ring. Shard recovery uses this
    /// to steer a respawned replacement back into an existing slot without
    /// disturbing its neighbours; dropping the old producer closes the dead
    /// (already drained) ring.
    pub replace: Vec<(usize, Producer<ShardBurst>)>,
}

impl DispatcherUpdate {
    /// Composes a later update onto an unapplied earlier one, so a
    /// dispatcher that slept through several reshards applies their net
    /// effect in one step.
    pub(crate) fn then(self, next: DispatcherUpdate) -> DispatcherUpdate {
        // Later slot replacements win over earlier ones for the same slot;
        // earlier replacements survive only if the later topology keeps
        // their slot.
        fn merge_replace(
            earlier: Vec<(usize, Producer<ShardBurst>)>,
            later: Vec<(usize, Producer<ShardBurst>)>,
            limit: usize,
        ) -> Vec<(usize, Producer<ShardBurst>)> {
            let mut merged: Vec<(usize, Producer<ShardBurst>)> = earlier
                .into_iter()
                .filter(|(slot, _)| *slot < limit)
                .collect();
            for (slot, producer) in later {
                if let Some(entry) = merged.iter_mut().find(|(s, _)| *s == slot) {
                    entry.1 = producer;
                } else {
                    merged.push((slot, producer));
                }
            }
            merged
        }
        if next.keep <= self.keep {
            // The later truncation discards everything the earlier update
            // appended (and possibly more of the originals).
            let keep = next.keep;
            DispatcherUpdate {
                steerer: next.steerer,
                keep,
                append: next.append,
                replace: merge_replace(self.replace, next.replace, keep),
            }
        } else {
            // The later update keeps `next.keep - self.keep` of the rings
            // the earlier one appended.
            let mut append = self.append;
            append.truncate(next.keep - self.keep);
            append.extend(next.append);
            DispatcherUpdate {
                steerer: next.steerer,
                keep: self.keep,
                append,
                replace: merge_replace(self.replace, next.replace, usize::MAX),
            }
        }
    }
}

/// State shared between the runtime (control plane) and all worker threads.
pub(crate) struct Shared {
    /// The compactable log of published control epochs.
    pub log: Mutex<EpochLog>,
    /// Epoch of the newest published entry; checked without taking the log
    /// lock on the per-burst fast path. `SeqCst` so the shard parkers'
    /// flag/recheck wakeup protocol covers epoch publication too.
    pub published: AtomicU64,
    /// The progress board (shards + dispatchers).
    pub progress: Mutex<ProgressBoard>,
    /// Notified whenever any progress slot advances.
    pub cv: Condvar,
    /// The runtime's clock origin: ingress stamps and latency measurements
    /// are nanoseconds since this instant, so dispatchers and shards share
    /// a time base.
    pub start: Instant,
    /// Bumped once per staged steering/topology change; dispatchers compare
    /// it against their last-seen value at chunk boundaries (one relaxed
    /// load per chunk on the hot path) and drain their update slot when it
    /// moved.
    pub steering_version: AtomicU64,
    /// One staged-update slot per dispatcher (empty for inline dispatch).
    pub dispatcher_updates: Mutex<Vec<Option<DispatcherUpdate>>>,
    /// Bumped once per [`EgressSink`] change; workers compare it against
    /// their last-seen value at burst boundaries (one atomic load per burst
    /// on the hot path) and reload the slot below when it moved — the same
    /// staged-pickup protocol the dispatchers use for steering changes.
    pub egress_version: AtomicU64,
    /// The currently installed egress sink, if any.
    pub egress: Mutex<Option<Arc<dyn EgressSink>>>,
    /// The control-plane event trace: every publish, per-shard ack, resize
    /// step and RETA rewrite leaves a timestamped record here. Shard threads
    /// write only at epoch boundaries, never per packet.
    pub events: EventTrace,
    /// The armed fault-injection schedule, if any. Workers and dispatchers
    /// consult it per burst/chunk — but only after the one-relaxed-load
    /// `faults_armed` check below, so a production runtime pays a single
    /// branch per burst for the whole chaos plane.
    pub faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Fast-path gate for `faults`.
    pub faults_armed: AtomicBool,
    /// One slot per shard where a dying worker parks its input-ring
    /// consumers. Keeping the consumers alive keeps the rings *open*, so
    /// in-flight dispatcher pushes still land instead of erroring — every
    /// unprocessed packet is then either the dying worker's in-flight burst
    /// (counted by the worker) or ring residue the supervisor drains and
    /// counts. That is what makes `lost_to_failure` exact rather than an
    /// estimate.
    pub wreckage: Mutex<Vec<Option<Vec<Consumer<ShardBurst>>>>>,
}

impl Shared {
    pub(crate) fn new(shards: usize, dispatchers: usize) -> Self {
        Shared {
            log: Mutex::new(EpochLog::new()),
            published: AtomicU64::new(0),
            progress: Mutex::new(ProgressBoard {
                shards: vec![ShardProgress::default(); shards],
                dispatchers: vec![DispatcherProgress::default(); dispatchers],
            }),
            cv: Condvar::new(),
            start: Instant::now(),
            steering_version: AtomicU64::new(0),
            dispatcher_updates: Mutex::new((0..dispatchers).map(|_| None).collect()),
            egress_version: AtomicU64::new(0),
            egress: Mutex::new(None),
            events: EventTrace::default(),
            faults: Mutex::new(None),
            faults_armed: AtomicBool::new(false),
            wreckage: Mutex::new((0..shards).map(|_| None).collect()),
        }
    }

    /// Nanoseconds since the runtime's clock origin.
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The fault (if any) scheduled for worker `shard` at its `burst`-th
    /// popped burst. One relaxed load when no plan is armed.
    pub(crate) fn worker_fault(&self, shard: usize, burst: u64) -> Option<WorkerFault> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.faults
            .lock()
            .expect("fault plan lock poisoned")
            .as_ref()
            .and_then(|plan| plan.worker_fault(shard, burst))
    }

    /// The stall (if any) scheduled for dispatcher `dispatcher` at its
    /// `chunk`-th popped chunk.
    pub(crate) fn dispatcher_fault(&self, dispatcher: usize, chunk: u64) -> Option<Duration> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.faults
            .lock()
            .expect("fault plan lock poisoned")
            .as_ref()
            .and_then(|plan| plan.dispatcher_stall(dispatcher, chunk))
    }

    /// Stages `update` for dispatcher `index`, composing onto any update it
    /// has not applied yet, and bumps the steering version.
    pub(crate) fn stage_dispatcher_update(&self, index: usize, update: DispatcherUpdate) {
        let mut slots = self
            .dispatcher_updates
            .lock()
            .expect("dispatcher update lock poisoned");
        let slot = &mut slots[index];
        *slot = Some(match slot.take() {
            Some(pending) => pending.then(update),
            None => update,
        });
        drop(slots);
        self.steering_version.fetch_add(1, Ordering::SeqCst);
    }
}

/// Everything one applied epoch produced on one shard.
#[derive(Default)]
pub(crate) struct EntryOutcome {
    /// Snapshot, if the entry contained a `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// Dynamic state extracted by `ExportState` ops addressed to this shard.
    pub exported: Option<Vec<ModuleState>>,
    /// First error message, if any op failed.
    pub error: Option<String>,
    /// True when a `Retire` op addressed this shard: the worker must exit
    /// after acknowledging the epoch.
    pub retired: bool,
}

/// Applies one published entry to shard `shard_index`'s pipeline replica.
/// Later ops still run after a failure so replicas cannot diverge on which
/// prefix of the entry they applied. The per-shard ops (snapshot, state
/// export/inject, retirement) are resolved here, where the shard index is
/// known; `ControlOp::apply` treats them as no-ops so configuration replicas
/// replayed from the log stay config-only.
pub(crate) fn apply_entry(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    entry: &EpochEntry,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> EntryOutcome {
    let mut outcome = EntryOutcome::default();
    let mut wants_snapshot = false;
    for op in &entry.ops {
        match op {
            crate::ControlOp::Snapshot => {
                wants_snapshot = true;
                continue;
            }
            crate::ControlOp::ExportState {
                modules,
                from_shard,
            } => {
                if shard_index >= *from_shard {
                    let exports = outcome.exported.get_or_insert_with(Vec::new);
                    for module in modules {
                        if let Some(state) = pipeline.take_module_state(*module) {
                            exports.push(state);
                        }
                    }
                }
                continue;
            }
            crate::ControlOp::InjectState { shard, state } => {
                if *shard == shard_index {
                    if let Err(e) = pipeline.import_module_state(state) {
                        outcome.error.get_or_insert_with(|| e.to_string());
                    }
                }
                continue;
            }
            crate::ControlOp::ExportStateSnapshot { modules, shard } => {
                if shard_index == *shard {
                    let exports = outcome.exported.get_or_insert_with(Vec::new);
                    for module in modules {
                        if let Some(state) = pipeline.export_module_state(*module) {
                            exports.push(state);
                        }
                    }
                }
                continue;
            }
            crate::ControlOp::ReplaceState { shard, state } => {
                if *shard == shard_index {
                    // Replace-not-merge: clear the target's own words first
                    // (keeping its counter history), then import the
                    // snapshot — additive import onto zeroed words is
                    // assignment, so the replica ends bit-identical to the
                    // donor without double-counting traffic.
                    let module = menshen_core::ModuleId::new(state.module_id);
                    if let Some(own) = pipeline.take_module_state(module) {
                        let mut merged = (**state).clone();
                        merged.counters.add(&own.counters);
                        if let Err(e) = pipeline.import_module_state(&merged) {
                            outcome.error.get_or_insert_with(|| e.to_string());
                        }
                    }
                }
                continue;
            }
            crate::ControlOp::Retire { keep } => {
                if shard_index >= *keep {
                    outcome.retired = true;
                }
                continue;
            }
            _ => {}
        }
        if let Err(e) = op.apply(pipeline) {
            outcome.error.get_or_insert_with(|| e.to_string());
        }
    }
    outcome.snapshot = wants_snapshot.then(|| take_snapshot(pipeline, telemetry, ring));
    outcome
}

/// Exports a replica's per-module counters, device statistics and latency
/// telemetry.
pub(crate) fn take_snapshot(
    pipeline: &MenshenPipeline,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> ShardSnapshot {
    let counters = pipeline
        .loaded_modules()
        .into_iter()
        .map(|module| {
            (
                module.value(),
                pipeline.module_counters(module).unwrap_or_default(),
            )
        })
        .collect();
    ShardSnapshot {
        counters,
        system: pipeline.system().stats(),
        filter: pipeline.filter().counters(),
        latency: telemetry.packet_ns.clone(),
        burst_latency: telemetry.burst_ns.clone(),
        tenants: telemetry
            .tenants
            .iter()
            .map(|(tenant, view)| (*tenant, view.clone()))
            .collect(),
        profile: pipeline.stage_profile(),
        ring,
    }
}

/// The current ring-depth telemetry across a shard's input rings.
fn ring_depth(inputs: &[Consumer<ShardBurst>]) -> RingDepth {
    RingDepth {
        high_watermark: inputs
            .iter()
            .map(|ring| ring.depth_high_watermark())
            .max()
            .unwrap_or(0),
        occupancy: inputs.iter().map(|ring| ring.occupancy() as u64).sum(),
    }
}

/// Applies every not-yet-applied epoch to `pipeline` and advertises the new
/// applied epoch on the progress board. `applied` is the highest epoch this
/// shard has already applied (its log cursor — compaction-safe, because the
/// log only ever drops epochs every shard has acknowledged). Returns true
/// when an applied epoch retired this shard: the worker must exit after the
/// acknowledgement (which this function has already posted, so waiters never
/// hang on the departing shard).
pub(crate) fn apply_pending(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    shared: &Shared,
    applied: &mut u64,
    telemetry: &ShardTelemetry,
    inputs: &[Consumer<ShardBurst>],
) -> bool {
    // Fast path: nothing new published since this shard's cursor.
    if *applied >= shared.published.load(Ordering::SeqCst) {
        return false;
    }
    // Copy the pending suffix out of the log so heavyweight ops (module
    // loads) never run while holding the log lock.
    let pending: Vec<EpochEntry> = {
        let log = shared.log.lock().expect("log lock poisoned");
        log.entries_after(*applied)
    };
    let mut retired = false;
    for entry in &pending {
        let outcome = apply_entry(shard_index, pipeline, entry, telemetry, ring_depth(inputs));
        *applied = entry.epoch;
        retired |= outcome.retired;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.applied_epoch = entry.epoch;
        if let Some(snapshot) = outcome.snapshot {
            slot.snapshot = Some(snapshot);
        }
        if let Some(exports) = outcome.exported {
            slot.exported = Some((entry.epoch, exports));
        }
        if let Some(message) = outcome.error {
            slot.last_error = Some((entry.epoch, message));
        }
        drop(progress);
        shared.events.emit(
            shared.now_ns(),
            ControlEventKind::EpochApplied {
                epoch: entry.epoch,
                shard: shard_index as u64,
            },
        );
        shared.cv.notify_all();
    }
    retired
}

/// Marks a shard as exited on the progress board when the worker returns
/// *or panics*, so `wait_for_epoch`/`flush` can never block forever on a
/// dead shard.
struct ShardExitGuard {
    shared: Arc<Shared>,
    shard_index: usize,
}

impl Drop for ShardExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        progress.shards[self.shard_index].exited = true;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The shard thread body: apply pending epochs, pop a burst from one of the
/// input rings (round-robin over dispatchers), process, tally — until every
/// ring closes or a `Retire` epoch addresses this shard. With all rings
/// empty the shard spins briefly, then parks on the shared parker;
/// dispatchers, the inline submitter, and the control plane all wake it
/// through that parker.
///
/// `initial_epoch` is the epoch the shard's pipeline already embodies: 0 for
/// construction-time shards, and the current epoch for shards stood up by a
/// live resize from a log-reconstructed standby replica.
pub(crate) fn run_worker(
    shard_index: usize,
    mut pipeline: MenshenPipeline,
    inputs: Vec<Consumer<ShardBurst>>,
    parker: Arc<Parker>,
    shared: Arc<Shared>,
    initial_epoch: u64,
) {
    let _exit_guard = ShardExitGuard {
        shared: Arc::clone(&shared),
        shard_index,
    };
    let mut applied = initial_epoch;
    let mut telemetry = ShardTelemetry::default();
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut run_scratch: Vec<Verdict> = Vec::new();
    let mut next_ring = 0usize;
    let mut idle_spins = 0u32;
    // Bursts popped so far — the fault plan's per-worker coordinate.
    let mut burst_index = 0u64;
    // Seed the heartbeat so the wedge detector has a baseline even if the
    // first burst takes a while to arrive.
    {
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        progress.shards[shard_index].heartbeat_ns = shared.now_ns();
    }
    // Shard-local egress-sink cache, refreshed at burst boundaries when the
    // staged version moves. Workers stood up by a live resize start at
    // version 0 and adopt any already-installed sink on their first burst.
    let mut egress: Option<Arc<dyn EgressSink>> = None;
    let mut egress_seen = 0u64;
    loop {
        if apply_pending(
            shard_index,
            &mut pipeline,
            &shared,
            &mut applied,
            &telemetry,
            &inputs,
        ) {
            // Retired by a scale-in epoch. The resharding control path only
            // publishes retirement at a full quiesce (rings drained, state
            // already exported), so exiting here loses nothing; the epoch is
            // already acknowledged, so nobody waits on this shard again.
            return;
        }
        // Round-robin over the per-dispatcher input rings so no dispatcher
        // can starve another.
        let mut burst = None;
        for offset in 0..inputs.len() {
            let ring = (next_ring + offset) % inputs.len();
            if let Some(popped) = inputs[ring].try_pop() {
                next_ring = (ring + 1) % inputs.len();
                burst = Some(popped);
                break;
            }
        }
        let Some(burst) = burst else {
            if inputs.iter().all(|ring| ring.is_finished()) {
                break;
            }
            idle_spins += 1;
            if idle_spins < IDLE_SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                // Park until any producer publishes a burst, every ring
                // finishes, or a new control epoch needs applying.
                parker.park_until(|| {
                    inputs.iter().any(|ring| ring.occupancy() > 0)
                        || inputs.iter().all(|ring| ring.is_finished())
                        || shared.published.load(Ordering::SeqCst) > applied
                });
                idle_spins = 0;
            }
            continue;
        };
        idle_spins = 0;
        // Chaos hook: one relaxed load when disarmed. Stalls run outside the
        // containment (they are slowness, not death); panics fire inside it.
        let fault = shared.worker_fault(shard_index, burst_index);
        burst_index += 1;
        if let Some(WorkerFault::Stall(stall)) = fault {
            std::thread::sleep(stall);
        }
        // Panic containment: anything that unwinds out of the burst's
        // pipeline pass (an injected fault or an organic bug) is caught
        // here, where the worker's locals are still alive — so the dying
        // worker can post a final telemetry snapshot, count the in-flight
        // burst as lost, and park its ring consumers for the supervisor to
        // drain. The borrows are confined to this burst (AssertUnwindSafe
        // is sound: on Err every borrowed local is either discarded or
        // rebuilt from scratch by the next incarnation of this slot).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if matches!(fault, Some(WorkerFault::Panic)) {
                panic!("injected fault: worker {shard_index} killed at burst {burst_index}");
            }
            let service_start = Instant::now();
            process_shard_burst(
                &mut pipeline,
                &burst.packets,
                &burst.digests,
                &mut verdicts,
                &mut run_scratch,
            );
            let service_ns = service_start.elapsed().as_nanos() as u64;
            let done_ns = shared.now_ns();
            telemetry.burst_ns.record(service_ns);
            for (packet, verdict) in burst.packets.iter().zip(verdicts.iter()) {
                let sojourn_ns = done_ns.saturating_sub(packet.timestamp_ns);
                telemetry.packet_ns.record(sojourn_ns);
                telemetry.record_verdict(verdict, sojourn_ns);
            }
            // Verdict egress: hand every processed packet to the installed
            // sink *before* the progress-board update, so a flush barrier
            // returning implies every packet it covers has been transmitted.
            let version = shared.egress_version.load(Ordering::SeqCst);
            if version != egress_seen {
                egress_seen = version;
                egress = shared.egress.lock().expect("egress lock poisoned").clone();
            }
            if let Some(sink) = &egress {
                for (packet, verdict) in burst.packets.iter().zip(verdicts.iter()) {
                    sink.transmit(packet, verdict);
                }
            }
        }));
        if let Err(payload) = outcome {
            contain_worker_panic(
                shard_index,
                &pipeline,
                &telemetry,
                inputs,
                &shared,
                &*payload,
                burst.packets.len() as u64,
            );
            return;
        }
        let forwarded = verdicts.iter().filter(|v| v.is_forwarded()).count() as u64;
        let total = burst.packets.len() as u64;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.bursts_done += 1;
        slot.stats.bursts += 1;
        slot.stats.packets += total;
        slot.stats.forwarded += forwarded;
        slot.stats.dropped += total - forwarded;
        slot.heartbeat_ns = shared.now_ns();
        drop(progress);
        shared.cv.notify_all();
    }
    // Epochs published after the final burst must still be acknowledged so a
    // concurrent `wait_for_epoch` cannot hang across shutdown.
    let _ = apply_pending(
        shard_index,
        &mut pipeline,
        &shared,
        &mut applied,
        &telemetry,
        &inputs,
    );
}

/// A contained worker panic's last act, run with the dying worker's locals
/// still alive: post a final telemetry snapshot (so the casualty's ledgers
/// still fold into the books), record the failure and the in-flight burst's
/// packets as lost, and park the input-ring consumers in the wreckage slot.
/// Parking the consumers keeps the rings *open*: concurrent dispatcher
/// pushes land normally, and the supervisor later drains the residue and
/// counts it — which is what makes `lost_to_failure` exact.
fn contain_worker_panic(
    shard_index: usize,
    pipeline: &MenshenPipeline,
    telemetry: &ShardTelemetry,
    inputs: Vec<Consumer<ShardBurst>>,
    shared: &Shared,
    payload: &(dyn std::any::Any + Send),
    lost_in_flight: u64,
) {
    let message = panic_message(payload);
    let snapshot = take_snapshot(pipeline, telemetry, ring_depth(&inputs));
    let died_at = shared.now_ns();
    {
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.snapshot = Some(snapshot);
        slot.failure = Some(message);
        slot.exited_at_ns = Some(died_at);
        slot.lost_packets += lost_in_flight;
    }
    let mut wreckage = shared.wreckage.lock().expect("wreckage lock poisoned");
    if let Some(slot) = wreckage.get_mut(shard_index) {
        *slot = Some(inputs);
    }
    drop(wreckage);
    shared.cv.notify_all();
}

/// Marks a dispatcher as exited (and records the shard that failed it, if
/// any) when the thread returns or panics.
struct DispatcherExitGuard {
    shared: Arc<Shared>,
    dispatcher_index: usize,
    failed_shard: Option<usize>,
}

impl Drop for DispatcherExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.dispatchers[self.dispatcher_index];
        slot.exited = true;
        slot.failed_shard = self.failed_shard;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The dispatcher thread body: pop a chunk of ingress packets from this
/// dispatcher's input ring, Toeplitz-steer every packet into per-shard
/// scratch, and push *full* bursts onto this dispatcher's row of shard
/// rings — ring synchronisation once per (dispatcher, shard, burst).
/// Partial bursts are flushed whenever the input ring runs dry: that is the
/// dispatcher's quiesce point, after which its `packets_dispatched` equals
/// everything it ever received, which is exactly what the control plane's
/// flush barrier waits for before publishing an epoch.
pub(crate) fn run_dispatcher(
    dispatcher_index: usize,
    mut steerer: Steerer,
    input: Consumer<Burst>,
    mut outputs: Vec<Producer<ShardBurst>>,
    burst_size: usize,
    submit_wait: Duration,
    shared: Arc<Shared>,
) {
    let mut exit_guard = DispatcherExitGuard {
        shared: Arc::clone(&shared),
        dispatcher_index,
        failed_shard: None,
    };
    // One accounting site for every burst handoff: takes the shard's
    // scratch and pushes it with a bounded wait. Every consumed packet is
    // accounted exactly once — delivered (`per_shard`), shed per tenant on
    // a full ring past the deadline, or lost per shard on a closed ring —
    // so a dead or wedged shard can never wedge the dispatcher, and the
    // conservation audit still balances.
    struct DispatchState {
        scatter: Vec<Vec<Packet>>,
        /// Per shard, the digests of replicated-module packets steered to
        /// *other* shards, with `before` indices into the same shard's
        /// `scatter`. Flushed together with `scatter[shard]` — always — so
        /// the recorded interleave points stay valid.
        digest_scatter: Vec<Vec<StateDigest>>,
        packets: u64,
        bursts: u64,
        per_shard: Vec<u64>,
        shed_tenants: BTreeMap<u16, u64>,
        lost_per_shard: Vec<u64>,
        digests: u64,
        digest_bytes: u64,
        failed_shard: Option<usize>,
    }
    impl DispatchState {
        fn pending(&self, shard: usize) -> bool {
            !self.scatter[shard].is_empty() || !self.digest_scatter[shard].is_empty()
        }

        fn push_scratch(
            &mut self,
            outputs: &[Producer<ShardBurst>],
            shard: usize,
            burst_size: usize,
            wait: Duration,
        ) {
            let burst = ShardBurst {
                packets: std::mem::replace(
                    &mut self.scatter[shard],
                    Vec::with_capacity(burst_size),
                ),
                digests: std::mem::take(&mut self.digest_scatter[shard]),
            };
            let packets = burst.packets.len() as u64;
            // `packets` counts everything consumed from the input ring
            // (delivered, shed, or lost) so the stage-1 flush barrier never
            // waits on packets that can no longer move. Digests ride along
            // unaccounted here: they are generated bookkeeping, not
            // consumed traffic.
            self.packets += packets;
            match outputs[shard].push_deadline(burst, wait) {
                Ok(()) => {
                    self.bursts += 1;
                    self.per_shard[shard] += packets;
                }
                Err(PushError::Timeout(burst)) => {
                    // The ring stayed full past the bounded wait: shed the
                    // burst, attributed to the tenants that offered it. The
                    // overloaded (or failure-orphaned) tenant pays; other
                    // tenants' shards keep draining. Its digests drop with
                    // it — the degraded regime where an overloaded replica
                    // falls behind until rebuilt from a live peer.
                    for packet in &burst.packets {
                        *self.shed_tenants.entry(packet_tenant(packet)).or_insert(0) += 1;
                    }
                }
                Err(PushError::Closed(_)) => {
                    // Degraded path: the ring closed without a wreckage
                    // drain (worker died outside containment). Count the
                    // burst as lost and keep dispatching to the survivors.
                    self.lost_per_shard[shard] += packets;
                    self.failed_shard = Some(shard);
                }
            }
        }

        fn advertise(&self, shared: &Shared, dispatcher_index: usize) {
            let mut progress = shared.progress.lock().expect("progress lock poisoned");
            let slot = &mut progress.dispatchers[dispatcher_index];
            slot.packets_dispatched = self.packets;
            slot.bursts_dispatched = self.bursts;
            slot.per_shard.clear();
            slot.per_shard.extend_from_slice(&self.per_shard);
            slot.shed_tenants = self.shed_tenants.clone();
            slot.lost_per_shard.clear();
            slot.lost_per_shard.extend_from_slice(&self.lost_per_shard);
            slot.digests_dispatched = self.digests;
            slot.digest_bytes_dispatched = self.digest_bytes;
            slot.failed_shard = self.failed_shard;
            drop(progress);
            shared.cv.notify_all();
        }
    }
    let mut state = DispatchState {
        scatter: (0..outputs.len())
            .map(|_| Vec::with_capacity(burst_size))
            .collect(),
        digest_scatter: vec![Vec::new(); outputs.len()],
        packets: 0,
        bursts: 0,
        per_shard: vec![0u64; outputs.len()],
        shed_tenants: BTreeMap::new(),
        lost_per_shard: vec![0u64; outputs.len()],
        digests: 0,
        digest_bytes: 0,
        failed_shard: None,
    };
    // Dispatchers are only spawned at construction time, so version 0 is
    // always the state this thread's steerer and ring row were built from.
    let mut seen_version = 0u64;
    // Chunks popped so far — the fault plan's per-dispatcher coordinate.
    let mut chunk_index = 0u64;
    while let Some(chunk) = input.pop() {
        // Chaos hook: a scheduled dispatcher stall (wedge, if long).
        if let Some(stall) = shared.dispatcher_fault(dispatcher_index, chunk_index) {
            std::thread::sleep(stall);
        }
        chunk_index += 1;
        // Resharding/recovery handshake: before steering anything, adopt
        // any staged steering/topology change (new RETA + pin set, grown or
        // shrunk ring row, in-place slot replacements). The cost on the hot
        // path is one atomic load per chunk.
        let version = shared.steering_version.load(Ordering::SeqCst);
        if version != seen_version {
            seen_version = version;
            let staged = shared
                .dispatcher_updates
                .lock()
                .expect("dispatcher update lock poisoned")[dispatcher_index]
                .take();
            if let Some(update) = staged {
                // Flush partial bursts to the *old* rings first, so every
                // packet steered under the old table is either delivered or
                // counted before the rings change hands. (Resharding stages
                // updates only at a full quiesce, where this is a no-op;
                // failure recovery stages them live and relies on it.)
                for shard in 0..outputs.len() {
                    if state.pending(shard) {
                        state.push_scratch(&outputs, shard, burst_size, submit_wait);
                    }
                }
                steerer = update.steerer;
                // Dropping the truncated producers closes the retired
                // shards' rings; their workers are already gone.
                outputs.truncate(update.keep);
                outputs.extend(update.append);
                for (slot, producer) in update.replace {
                    if slot < outputs.len() {
                        // Swapping in the replacement drops (and closes)
                        // the dead, already-drained ring.
                        outputs[slot] = producer;
                    }
                }
                state.scatter.truncate(update.keep);
                state
                    .scatter
                    .resize_with(outputs.len(), || Vec::with_capacity(burst_size));
                state.digest_scatter.truncate(update.keep);
                state.digest_scatter.resize_with(outputs.len(), Vec::new);
                // Per-shard tallies follow the ring row: surviving shards
                // keep their cumulative counts (their progress slots
                // survived too), fresh shards start at zero.
                state.per_shard.truncate(update.keep);
                state.per_shard.resize(outputs.len(), 0);
                state.lost_per_shard.truncate(update.keep);
                state.lost_per_shard.resize(outputs.len(), 0);
            }
            // Acknowledge adoption — the supervisor waits for every live
            // dispatcher to reach the staged version before draining a dead
            // shard's rings, so no in-flight push can race the drain.
            let mut progress = shared.progress.lock().expect("progress lock poisoned");
            progress.dispatchers[dispatcher_index].steering_adopted = version;
            drop(progress);
            shared.cv.notify_all();
        }
        for packet in chunk {
            let shard = steerer.shard_for(&packet);
            // State-compute replication: a replicated-module packet's state
            // digest broadcasts to every *other* shard, stamped with the
            // receiver's current scatter depth so the replica replays it at
            // the exact interleave point the owner processes the packet at.
            // All of a replicated module's packets flow through one
            // dispatcher (steering affinity), so this order is the module's
            // global order.
            if let Some(spec) = steerer.digest_spec_for(&packet) {
                for other in 0..outputs.len() {
                    if other == shard {
                        continue;
                    }
                    let digest = spec.extract(&packet, state.scatter[other].len() as u32);
                    state.digests += 1;
                    state.digest_bytes += digest.wire_bytes() as u64;
                    state.digest_scatter[other].push(digest);
                    if state.digest_scatter[other].len() >= burst_size {
                        state.push_scratch(&outputs, other, burst_size, submit_wait);
                    }
                }
            }
            state.scatter[shard].push(packet);
            if state.scatter[shard].len() >= burst_size {
                state.push_scratch(&outputs, shard, burst_size, submit_wait);
            }
        }
        // Quiesce point: no further chunk is immediately available, so
        // flush partial bursts — every packet received so far is now in
        // flight — and advertise progress for the flush barrier.
        if input.occupancy() == 0 {
            for shard in 0..outputs.len() {
                if state.pending(shard) {
                    state.push_scratch(&outputs, shard, burst_size, submit_wait);
                }
            }
        }
        state.advertise(&shared, dispatcher_index);
    }
    // Input closed: flush whatever scratch remains toward still-open rings,
    // then let the producers drop — which closes this dispatcher's row of
    // shard rings.
    for shard in 0..outputs.len() {
        if state.pending(shard) {
            state.push_scratch(&outputs, shard, burst_size, submit_wait);
        }
    }
    exit_guard.failed_shard = state.failed_shard;
    state.advertise(&shared, dispatcher_index);
}
