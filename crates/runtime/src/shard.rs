//! Worker shards: one pipeline replica, one input ring, one thread.
//!
//! A shard is deliberately boring — that is the point of the design. It owns
//! a full [`MenshenPipeline`] replica and loops over exactly three steps:
//! apply pending control-plane epochs (in published order), pop the next
//! burst from its SPSC ring, process it with the allocation-free batched data
//! path. All cross-thread coordination happens at burst granularity through
//! the [`Shared`] state: the epoch log on the way in, the progress board
//! (applied epoch, bursts completed, traffic tallies, on-demand snapshots)
//! on the way out.
//!
//! Each shard also keeps two local [`LatencyHistogram`]s — per-packet
//! sojourn time (ring wait + service, measured from the dispatcher's ingress
//! stamp in [`menshen_packet::Packet::timestamp_ns`]) and per-burst service
//! time. Recording is shard-local and lock-free; the dispatcher only sees
//! the histograms when a `Snapshot` epoch exports them, and merges them
//! across shards (merging bucket counts is exact, so nothing is lost by
//! recording locally).

use crate::control::{EpochEntry, EpochLog};
use crate::ring::Consumer;
use menshen_core::packet_filter::FilterCounters;
use menshen_core::{LatencyHistogram, MenshenPipeline, ModuleCounters, SystemStats, Verdict};
use menshen_packet::Packet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What the dispatcher feeds a shard.
pub(crate) enum ShardInput {
    /// A burst of packets to process.
    Burst(Vec<Packet>),
    /// A wake-up so a blocked shard notices newly published epochs.
    Sync,
}

/// Per-shard traffic tallies, updated once per burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Bursts processed.
    pub bursts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all reasons).
    pub dropped: u64,
}

/// A shard's local latency recorders: per-packet sojourn time and per-burst
/// service time, both in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// Per-packet latency: dispatcher ingress stamp → burst completion
    /// (queueing in the ring plus pipeline service).
    pub packet_ns: LatencyHistogram,
    /// Per-burst service time: the wall-clock cost of one
    /// `process_batch_into` call.
    pub burst_ns: LatencyHistogram,
}

/// A shard's exported statistics snapshot, produced on demand by the
/// [`crate::ControlOp::Snapshot`] operation.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Per-module traffic counters of this shard's replica.
    pub counters: Vec<(u16, ModuleCounters)>,
    /// Device statistics of this shard's system-level module.
    pub system: SystemStats,
    /// This shard's packet-filter counters.
    pub filter: FilterCounters,
    /// Cumulative per-packet latency recorded by this shard.
    pub latency: LatencyHistogram,
    /// Cumulative per-burst service time recorded by this shard.
    pub burst_latency: LatencyHistogram,
}

/// One shard's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardProgress {
    /// Highest epoch this shard has fully applied.
    pub applied_epoch: u64,
    /// Bursts completed (matched against bursts submitted for `flush`).
    pub bursts_done: u64,
    /// Running traffic tallies.
    pub stats: ShardStats,
    /// Snapshot exported by the most recent `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// First error of the most recent epoch that failed on this shard, with
    /// the epoch it belongs to.
    pub last_error: Option<(u64, String)>,
    /// True once the worker thread has exited (shutdown or panic). Waiters
    /// must never block on an exited shard's progress.
    pub exited: bool,
}

/// State shared between the runtime (control plane + dispatcher) and all
/// shard threads.
pub(crate) struct Shared {
    /// The compactable log of published control epochs.
    pub log: Mutex<EpochLog>,
    /// Epoch of the newest published entry; checked without taking the log
    /// lock on the per-burst fast path.
    pub published: AtomicU64,
    /// One progress slot per shard.
    pub progress: Mutex<Vec<ShardProgress>>,
    /// Notified whenever any progress slot advances.
    pub cv: Condvar,
    /// The runtime's clock origin: ingress stamps and latency measurements
    /// are nanoseconds since this instant, so dispatcher and shards share a
    /// time base.
    pub start: Instant,
}

impl Shared {
    pub(crate) fn new(shards: usize) -> Self {
        Shared {
            log: Mutex::new(EpochLog::new()),
            published: AtomicU64::new(0),
            progress: Mutex::new(vec![ShardProgress::default(); shards]),
            cv: Condvar::new(),
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the runtime's clock origin.
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Applies one published entry to a pipeline replica. Returns the snapshot
/// (if the entry requested one) and the first error message (if any op
/// failed). Later ops still run after a failure so replicas cannot diverge on
/// which prefix of the entry they applied.
pub(crate) fn apply_entry(
    pipeline: &mut MenshenPipeline,
    entry: &EpochEntry,
    telemetry: &ShardTelemetry,
) -> (Option<ShardSnapshot>, Option<String>) {
    let mut error = None;
    let mut wants_snapshot = false;
    for op in &entry.ops {
        if matches!(op, crate::ControlOp::Snapshot) {
            wants_snapshot = true;
            continue;
        }
        if let Err(e) = op.apply(pipeline) {
            error.get_or_insert_with(|| e.to_string());
        }
    }
    let snapshot = wants_snapshot.then(|| take_snapshot(pipeline, telemetry));
    (snapshot, error)
}

/// Exports a replica's per-module counters, device statistics and latency
/// telemetry.
pub(crate) fn take_snapshot(
    pipeline: &MenshenPipeline,
    telemetry: &ShardTelemetry,
) -> ShardSnapshot {
    let counters = pipeline
        .loaded_modules()
        .into_iter()
        .map(|module| {
            (
                module.value(),
                pipeline.module_counters(module).unwrap_or_default(),
            )
        })
        .collect();
    ShardSnapshot {
        counters,
        system: pipeline.system().stats(),
        filter: pipeline.filter().counters(),
        latency: telemetry.packet_ns.clone(),
        burst_latency: telemetry.burst_ns.clone(),
    }
}

/// Applies every not-yet-applied epoch to `pipeline` and advertises the new
/// applied epoch on the progress board. `applied` is the highest epoch this
/// shard has already applied (its log cursor — compaction-safe, because the
/// log only ever drops epochs every shard has acknowledged).
pub(crate) fn apply_pending(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    shared: &Shared,
    applied: &mut u64,
    telemetry: &ShardTelemetry,
) {
    // Fast path: nothing new published since this shard's cursor.
    if *applied >= shared.published.load(Ordering::Acquire) {
        return;
    }
    // Copy the pending suffix out of the log so heavyweight ops (module
    // loads) never run while holding the log lock.
    let pending: Vec<EpochEntry> = {
        let log = shared.log.lock().expect("log lock poisoned");
        log.entries_after(*applied)
    };
    for entry in &pending {
        let (snapshot, error) = apply_entry(pipeline, entry, telemetry);
        *applied = entry.epoch;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress[shard_index];
        slot.applied_epoch = entry.epoch;
        if let Some(snapshot) = snapshot {
            slot.snapshot = Some(snapshot);
        }
        if let Some(message) = error {
            slot.last_error = Some((entry.epoch, message));
        }
        drop(progress);
        shared.cv.notify_all();
    }
}

/// Marks a shard as exited on the progress board when the worker returns
/// *or panics*, so `wait_for_epoch`/`flush` can never block forever on a
/// dead shard.
struct ExitGuard {
    shared: Arc<Shared>,
    shard_index: usize,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        progress[self.shard_index].exited = true;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The shard thread body: apply pending epochs, pop, process, tally — until
/// the ring closes.
pub(crate) fn run_worker(
    shard_index: usize,
    mut pipeline: MenshenPipeline,
    input: Consumer<ShardInput>,
    shared: Arc<Shared>,
) {
    let _exit_guard = ExitGuard {
        shared: Arc::clone(&shared),
        shard_index,
    };
    let mut applied = 0u64;
    let mut telemetry = ShardTelemetry::default();
    let mut verdicts: Vec<Verdict> = Vec::new();
    loop {
        apply_pending(
            shard_index,
            &mut pipeline,
            &shared,
            &mut applied,
            &telemetry,
        );
        match input.pop() {
            None => break,
            Some(ShardInput::Sync) => continue,
            Some(ShardInput::Burst(packets)) => {
                let service_start = Instant::now();
                pipeline.process_batch_into(&packets, &mut verdicts);
                let service_ns = service_start.elapsed().as_nanos() as u64;
                let done_ns = shared.now_ns();
                telemetry.burst_ns.record(service_ns);
                for packet in &packets {
                    telemetry
                        .packet_ns
                        .record(done_ns.saturating_sub(packet.timestamp_ns));
                }
                let forwarded = verdicts.iter().filter(|v| v.is_forwarded()).count() as u64;
                let total = packets.len() as u64;
                let mut progress = shared.progress.lock().expect("progress lock poisoned");
                let slot = &mut progress[shard_index];
                slot.bursts_done += 1;
                slot.stats.bursts += 1;
                slot.stats.packets += total;
                slot.stats.forwarded += forwarded;
                slot.stats.dropped += total - forwarded;
                drop(progress);
                shared.cv.notify_all();
            }
        }
    }
    // Epochs published after the final burst must still be acknowledged so a
    // concurrent `wait_for_epoch` cannot hang across shutdown.
    apply_pending(
        shard_index,
        &mut pipeline,
        &shared,
        &mut applied,
        &telemetry,
    );
}
