//! Worker threads of the dispatch plane: shards and dispatchers.
//!
//! A **shard** is deliberately boring — that is the point of the design. It
//! owns a full [`MenshenPipeline`] replica and loops over exactly three
//! steps: apply pending control-plane epochs (in published order), pop the
//! next burst from one of its SPSC input rings (one ring per dispatcher,
//! drained round-robin, all sharing one [`Parker`] so any producer can wake
//! an idle shard), process it with the allocation-free batched data path.
//! All cross-thread coordination happens at burst granularity through the
//! [`Shared`] state: the epoch log on the way in, the progress board
//! (applied epoch, bursts completed, traffic tallies, on-demand snapshots)
//! on the way out.
//!
//! A **dispatcher** is one thread of the parallel dispatch plane
//! (`RuntimeOptions::dispatchers ≥ 1`): it pops raw packet chunks from its
//! own input ring (the model of one NIC RX queue), steers every packet with
//! its own [`crate::Steerer`] clone into per-shard scratch, and hands full
//! bursts to its row of shard rings — so ring synchronisation happens once
//! per (dispatcher, shard, burst), never per packet. Partial bursts are
//! flushed whenever the input ring runs dry, which is exactly the quiesce
//! point the control plane's flush barrier waits for.
//!
//! Each shard also keeps two local [`LatencyHistogram`]s — per-packet
//! sojourn time (ring wait + service, measured from the ingress stamp in
//! [`menshen_packet::Packet::timestamp_ns`]) and per-burst service time —
//! plus, at snapshot time, its input rings' depth high-watermark and current
//! occupancy, so backpressure is visible in telemetry. Recording is
//! shard-local and lock-free; the control plane only sees the data when a
//! `Snapshot` epoch exports it.

use crate::control::{EpochEntry, EpochLog};
use crate::events::{ControlEventKind, EventTrace};
use crate::ring::{Consumer, Parker, Producer};
use crate::rss::Steerer;
use menshen_core::packet_filter::FilterCounters;
use menshen_core::{
    LatencyHistogram, MenshenPipeline, ModuleCounters, ModuleState, StageProfile, SystemStats,
    TenantTelemetry, Verdict,
};
use menshen_packet::Packet;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What travels through the rings: one burst of packets.
pub(crate) type Burst = Vec<Packet>;

/// A transmit hook the data plane invokes once per processed packet, with
/// the *original* ingress packet (its `ingress_port` names the rx queue it
/// arrived on) and the verdict the pipeline produced (which carries the
/// rewritten packet for forwards). Socket backends implement this to echo
/// verdicts back out of the box; in threaded mode it is the only way packet
/// outcomes leave the worker threads, whose verdict streams are otherwise
/// consumed as telemetry.
///
/// Workers call `transmit` on the hot path, after the burst's pipeline pass
/// and before its progress-board update — so by the time a flush barrier
/// returns, every processed packet has been handed to the sink.
/// Implementations must be cheap and must never panic (a panicking sink
/// takes its worker shard down).
///
/// Install one with [`crate::ShardedRuntime::set_egress`]; workers adopt a
/// newly staged sink at their next burst boundary.
pub trait EgressSink: Send + Sync {
    /// Hands one processed packet and its verdict to the sink.
    fn transmit(&self, packet: &Packet, verdict: &Verdict);
}

/// Iterations a shard spins over its empty rings before parking.
const IDLE_SPIN_LIMIT: u32 = 128;

/// Per-shard traffic tallies, updated once per burst.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Bursts processed.
    pub bursts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all reasons).
    pub dropped: u64,
}

/// A shard's local latency recorders: per-packet sojourn time and per-burst
/// service time, both in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct ShardTelemetry {
    /// Per-packet latency: dispatcher ingress stamp → burst completion
    /// (queueing in the ring plus pipeline service).
    pub packet_ns: LatencyHistogram,
    /// Per-burst service time: the wall-clock cost of one
    /// `process_batch_into` call.
    pub burst_ns: LatencyHistogram,
    /// Per-tenant SLO telemetry (sojourn histogram + verdict ledger), keyed
    /// by module ID. Tenant 0 collects packets that never resolved to a
    /// module (no VLAN tag, VLAN with no loaded module).
    pub tenants: BTreeMap<u16, TenantTelemetry>,
}

impl ShardTelemetry {
    /// Attributes one packet's verdict and sojourn to its tenant.
    pub fn record_verdict(&mut self, verdict: &Verdict, sojourn_ns: u64) {
        self.tenants
            .entry(verdict_tenant(verdict))
            .or_default()
            .record(verdict, sojourn_ns);
    }
}

/// The tenant a verdict is attributed to: the packet's module ID, or 0 for
/// packets that never resolved to a module (no VLAN tag, unknown module).
pub(crate) fn verdict_tenant(verdict: &Verdict) -> u16 {
    match verdict {
        Verdict::Forwarded { module_id, .. } => *module_id,
        Verdict::Dropped { module_id, .. } => module_id.unwrap_or(0),
    }
}

/// A snapshot of one shard's input-ring depths, taken at `Snapshot` epochs
/// so queueing/backpressure is visible in telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingDepth {
    /// The deepest any of this shard's input rings has ever been, in bursts.
    pub high_watermark: u64,
    /// Bursts queued across this shard's input rings at snapshot time.
    pub occupancy: u64,
}

/// A shard's exported statistics snapshot, produced on demand by the
/// [`crate::ControlOp::Snapshot`] operation.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Per-module traffic counters of this shard's replica.
    pub counters: Vec<(u16, ModuleCounters)>,
    /// Device statistics of this shard's system-level module.
    pub system: SystemStats,
    /// This shard's packet-filter counters.
    pub filter: FilterCounters,
    /// Cumulative per-packet latency recorded by this shard.
    pub latency: LatencyHistogram,
    /// Cumulative per-burst service time recorded by this shard.
    pub burst_latency: LatencyHistogram,
    /// Cumulative per-tenant SLO telemetry recorded by this shard, sorted
    /// by module ID.
    pub tenants: Vec<(u16, TenantTelemetry)>,
    /// Sampled per-stage timing from this shard's replica (empty unless the
    /// `profiling` cargo feature is enabled in `menshen-core`).
    pub profile: StageProfile,
    /// Input-ring depth telemetry (zero in deterministic mode, where no
    /// rings exist).
    pub ring: RingDepth,
}

/// One shard's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardProgress {
    /// Highest epoch this shard has fully applied.
    pub applied_epoch: u64,
    /// Bursts completed (matched against bursts submitted for inline-mode
    /// `flush`).
    pub bursts_done: u64,
    /// Running traffic tallies.
    pub stats: ShardStats,
    /// Snapshot exported by the most recent `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// Dynamic state extracted by the most recent `ExportState` op, tagged
    /// with the epoch that requested it. The resharding control path takes
    /// these, merges them per module and republishes them as `InjectState`.
    pub exported: Option<(u64, Vec<ModuleState>)>,
    /// First error of the most recent epoch that failed on this shard, with
    /// the epoch it belongs to.
    pub last_error: Option<(u64, String)>,
    /// True once the worker thread has exited (shutdown, retirement or
    /// panic). Waiters must never block on an exited shard's progress.
    pub exited: bool,
}

/// One dispatcher's slice of the progress board.
#[derive(Debug, Clone, Default)]
pub(crate) struct DispatcherProgress {
    /// Packets this dispatcher has handed to shard rings (partial bursts
    /// still in its scratch are *not* counted — the flush barrier waits for
    /// this to reach the submitted count, which only happens after the
    /// dispatcher's quiesce-point flush).
    pub packets_dispatched: u64,
    /// Bursts this dispatcher has pushed onto shard rings.
    pub bursts_dispatched: u64,
    /// Packets pushed per destination shard — the flush barrier sums these
    /// across dispatchers to know how much each shard still owes.
    pub per_shard: Vec<u64>,
    /// True once the dispatcher thread has exited (shutdown or failure).
    pub exited: bool,
    /// The shard whose ring closed under this dispatcher, if that is why it
    /// exited.
    pub failed_shard: Option<usize>,
}

/// The progress board: one slot per shard plus one per dispatcher, guarded
/// by a single mutex so the shared condvar can wait on any combination.
#[derive(Debug, Default)]
pub(crate) struct ProgressBoard {
    pub shards: Vec<ShardProgress>,
    pub dispatchers: Vec<DispatcherProgress>,
}

/// A pending topology/steering change for one dispatcher thread, staged by
/// the resharding control path and applied by the dispatcher *before it
/// steers its next packet*. Resharding only ever publishes these while the
/// whole plane is quiesced (flush barrier + no concurrent submitter), so a
/// dispatcher that is parked simply finds the update waiting when the next
/// chunk wakes it.
pub(crate) struct DispatcherUpdate {
    /// The steerer to use from now on (new RETA, shard count, pin set).
    pub steerer: Steerer,
    /// Keep only the first `keep` shard rings; the rest are dropped (their
    /// producers close — the retired workers are already gone).
    pub keep: usize,
    /// Producers for newly stood-up shards, appended after `keep`.
    pub append: Vec<Producer<Burst>>,
}

impl DispatcherUpdate {
    /// Composes a later update onto an unapplied earlier one, so a
    /// dispatcher that slept through several reshards applies their net
    /// effect in one step.
    pub(crate) fn then(self, next: DispatcherUpdate) -> DispatcherUpdate {
        if next.keep <= self.keep {
            // The later truncation discards everything the earlier update
            // appended (and possibly more of the originals).
            DispatcherUpdate {
                steerer: next.steerer,
                keep: next.keep,
                append: next.append,
            }
        } else {
            // The later update keeps `next.keep - self.keep` of the rings
            // the earlier one appended.
            let mut append = self.append;
            append.truncate(next.keep - self.keep);
            append.extend(next.append);
            DispatcherUpdate {
                steerer: next.steerer,
                keep: self.keep,
                append,
            }
        }
    }
}

/// State shared between the runtime (control plane) and all worker threads.
pub(crate) struct Shared {
    /// The compactable log of published control epochs.
    pub log: Mutex<EpochLog>,
    /// Epoch of the newest published entry; checked without taking the log
    /// lock on the per-burst fast path. `SeqCst` so the shard parkers'
    /// flag/recheck wakeup protocol covers epoch publication too.
    pub published: AtomicU64,
    /// The progress board (shards + dispatchers).
    pub progress: Mutex<ProgressBoard>,
    /// Notified whenever any progress slot advances.
    pub cv: Condvar,
    /// The runtime's clock origin: ingress stamps and latency measurements
    /// are nanoseconds since this instant, so dispatchers and shards share
    /// a time base.
    pub start: Instant,
    /// Bumped once per staged steering/topology change; dispatchers compare
    /// it against their last-seen value at chunk boundaries (one relaxed
    /// load per chunk on the hot path) and drain their update slot when it
    /// moved.
    pub steering_version: AtomicU64,
    /// One staged-update slot per dispatcher (empty for inline dispatch).
    pub dispatcher_updates: Mutex<Vec<Option<DispatcherUpdate>>>,
    /// Bumped once per [`EgressSink`] change; workers compare it against
    /// their last-seen value at burst boundaries (one atomic load per burst
    /// on the hot path) and reload the slot below when it moved — the same
    /// staged-pickup protocol the dispatchers use for steering changes.
    pub egress_version: AtomicU64,
    /// The currently installed egress sink, if any.
    pub egress: Mutex<Option<Arc<dyn EgressSink>>>,
    /// The control-plane event trace: every publish, per-shard ack, resize
    /// step and RETA rewrite leaves a timestamped record here. Shard threads
    /// write only at epoch boundaries, never per packet.
    pub events: EventTrace,
}

impl Shared {
    pub(crate) fn new(shards: usize, dispatchers: usize) -> Self {
        Shared {
            log: Mutex::new(EpochLog::new()),
            published: AtomicU64::new(0),
            progress: Mutex::new(ProgressBoard {
                shards: vec![ShardProgress::default(); shards],
                dispatchers: vec![DispatcherProgress::default(); dispatchers],
            }),
            cv: Condvar::new(),
            start: Instant::now(),
            steering_version: AtomicU64::new(0),
            dispatcher_updates: Mutex::new((0..dispatchers).map(|_| None).collect()),
            egress_version: AtomicU64::new(0),
            egress: Mutex::new(None),
            events: EventTrace::default(),
        }
    }

    /// Nanoseconds since the runtime's clock origin.
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Stages `update` for dispatcher `index`, composing onto any update it
    /// has not applied yet, and bumps the steering version.
    pub(crate) fn stage_dispatcher_update(&self, index: usize, update: DispatcherUpdate) {
        let mut slots = self
            .dispatcher_updates
            .lock()
            .expect("dispatcher update lock poisoned");
        let slot = &mut slots[index];
        *slot = Some(match slot.take() {
            Some(pending) => pending.then(update),
            None => update,
        });
        drop(slots);
        self.steering_version.fetch_add(1, Ordering::SeqCst);
    }
}

/// Everything one applied epoch produced on one shard.
#[derive(Default)]
pub(crate) struct EntryOutcome {
    /// Snapshot, if the entry contained a `Snapshot` op.
    pub snapshot: Option<ShardSnapshot>,
    /// Dynamic state extracted by `ExportState` ops addressed to this shard.
    pub exported: Option<Vec<ModuleState>>,
    /// First error message, if any op failed.
    pub error: Option<String>,
    /// True when a `Retire` op addressed this shard: the worker must exit
    /// after acknowledging the epoch.
    pub retired: bool,
}

/// Applies one published entry to shard `shard_index`'s pipeline replica.
/// Later ops still run after a failure so replicas cannot diverge on which
/// prefix of the entry they applied. The per-shard ops (snapshot, state
/// export/inject, retirement) are resolved here, where the shard index is
/// known; `ControlOp::apply` treats them as no-ops so configuration replicas
/// replayed from the log stay config-only.
pub(crate) fn apply_entry(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    entry: &EpochEntry,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> EntryOutcome {
    let mut outcome = EntryOutcome::default();
    let mut wants_snapshot = false;
    for op in &entry.ops {
        match op {
            crate::ControlOp::Snapshot => {
                wants_snapshot = true;
                continue;
            }
            crate::ControlOp::ExportState {
                modules,
                from_shard,
            } => {
                if shard_index >= *from_shard {
                    let exports = outcome.exported.get_or_insert_with(Vec::new);
                    for module in modules {
                        if let Some(state) = pipeline.take_module_state(*module) {
                            exports.push(state);
                        }
                    }
                }
                continue;
            }
            crate::ControlOp::InjectState { shard, state } => {
                if *shard == shard_index {
                    if let Err(e) = pipeline.import_module_state(state) {
                        outcome.error.get_or_insert_with(|| e.to_string());
                    }
                }
                continue;
            }
            crate::ControlOp::Retire { keep } => {
                if shard_index >= *keep {
                    outcome.retired = true;
                }
                continue;
            }
            _ => {}
        }
        if let Err(e) = op.apply(pipeline) {
            outcome.error.get_or_insert_with(|| e.to_string());
        }
    }
    outcome.snapshot = wants_snapshot.then(|| take_snapshot(pipeline, telemetry, ring));
    outcome
}

/// Exports a replica's per-module counters, device statistics and latency
/// telemetry.
pub(crate) fn take_snapshot(
    pipeline: &MenshenPipeline,
    telemetry: &ShardTelemetry,
    ring: RingDepth,
) -> ShardSnapshot {
    let counters = pipeline
        .loaded_modules()
        .into_iter()
        .map(|module| {
            (
                module.value(),
                pipeline.module_counters(module).unwrap_or_default(),
            )
        })
        .collect();
    ShardSnapshot {
        counters,
        system: pipeline.system().stats(),
        filter: pipeline.filter().counters(),
        latency: telemetry.packet_ns.clone(),
        burst_latency: telemetry.burst_ns.clone(),
        tenants: telemetry
            .tenants
            .iter()
            .map(|(tenant, view)| (*tenant, view.clone()))
            .collect(),
        profile: pipeline.stage_profile(),
        ring,
    }
}

/// The current ring-depth telemetry across a shard's input rings.
fn ring_depth(inputs: &[Consumer<Burst>]) -> RingDepth {
    RingDepth {
        high_watermark: inputs
            .iter()
            .map(|ring| ring.depth_high_watermark())
            .max()
            .unwrap_or(0),
        occupancy: inputs.iter().map(|ring| ring.occupancy() as u64).sum(),
    }
}

/// Applies every not-yet-applied epoch to `pipeline` and advertises the new
/// applied epoch on the progress board. `applied` is the highest epoch this
/// shard has already applied (its log cursor — compaction-safe, because the
/// log only ever drops epochs every shard has acknowledged). Returns true
/// when an applied epoch retired this shard: the worker must exit after the
/// acknowledgement (which this function has already posted, so waiters never
/// hang on the departing shard).
pub(crate) fn apply_pending(
    shard_index: usize,
    pipeline: &mut MenshenPipeline,
    shared: &Shared,
    applied: &mut u64,
    telemetry: &ShardTelemetry,
    inputs: &[Consumer<Burst>],
) -> bool {
    // Fast path: nothing new published since this shard's cursor.
    if *applied >= shared.published.load(Ordering::SeqCst) {
        return false;
    }
    // Copy the pending suffix out of the log so heavyweight ops (module
    // loads) never run while holding the log lock.
    let pending: Vec<EpochEntry> = {
        let log = shared.log.lock().expect("log lock poisoned");
        log.entries_after(*applied)
    };
    let mut retired = false;
    for entry in &pending {
        let outcome = apply_entry(shard_index, pipeline, entry, telemetry, ring_depth(inputs));
        *applied = entry.epoch;
        retired |= outcome.retired;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.applied_epoch = entry.epoch;
        if let Some(snapshot) = outcome.snapshot {
            slot.snapshot = Some(snapshot);
        }
        if let Some(exports) = outcome.exported {
            slot.exported = Some((entry.epoch, exports));
        }
        if let Some(message) = outcome.error {
            slot.last_error = Some((entry.epoch, message));
        }
        drop(progress);
        shared.events.emit(
            shared.now_ns(),
            ControlEventKind::EpochApplied {
                epoch: entry.epoch,
                shard: shard_index as u64,
            },
        );
        shared.cv.notify_all();
    }
    retired
}

/// Marks a shard as exited on the progress board when the worker returns
/// *or panics*, so `wait_for_epoch`/`flush` can never block forever on a
/// dead shard.
struct ShardExitGuard {
    shared: Arc<Shared>,
    shard_index: usize,
}

impl Drop for ShardExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        progress.shards[self.shard_index].exited = true;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The shard thread body: apply pending epochs, pop a burst from one of the
/// input rings (round-robin over dispatchers), process, tally — until every
/// ring closes or a `Retire` epoch addresses this shard. With all rings
/// empty the shard spins briefly, then parks on the shared parker;
/// dispatchers, the inline submitter, and the control plane all wake it
/// through that parker.
///
/// `initial_epoch` is the epoch the shard's pipeline already embodies: 0 for
/// construction-time shards, and the current epoch for shards stood up by a
/// live resize from a log-reconstructed standby replica.
pub(crate) fn run_worker(
    shard_index: usize,
    mut pipeline: MenshenPipeline,
    inputs: Vec<Consumer<Burst>>,
    parker: Arc<Parker>,
    shared: Arc<Shared>,
    initial_epoch: u64,
) {
    let _exit_guard = ShardExitGuard {
        shared: Arc::clone(&shared),
        shard_index,
    };
    let mut applied = initial_epoch;
    let mut telemetry = ShardTelemetry::default();
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut next_ring = 0usize;
    let mut idle_spins = 0u32;
    // Shard-local egress-sink cache, refreshed at burst boundaries when the
    // staged version moves. Workers stood up by a live resize start at
    // version 0 and adopt any already-installed sink on their first burst.
    let mut egress: Option<Arc<dyn EgressSink>> = None;
    let mut egress_seen = 0u64;
    loop {
        if apply_pending(
            shard_index,
            &mut pipeline,
            &shared,
            &mut applied,
            &telemetry,
            &inputs,
        ) {
            // Retired by a scale-in epoch. The resharding control path only
            // publishes retirement at a full quiesce (rings drained, state
            // already exported), so exiting here loses nothing; the epoch is
            // already acknowledged, so nobody waits on this shard again.
            return;
        }
        // Round-robin over the per-dispatcher input rings so no dispatcher
        // can starve another.
        let mut burst = None;
        for offset in 0..inputs.len() {
            let ring = (next_ring + offset) % inputs.len();
            if let Some(packets) = inputs[ring].try_pop() {
                next_ring = (ring + 1) % inputs.len();
                burst = Some(packets);
                break;
            }
        }
        let Some(packets) = burst else {
            if inputs.iter().all(|ring| ring.is_finished()) {
                break;
            }
            idle_spins += 1;
            if idle_spins < IDLE_SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                // Park until any producer publishes a burst, every ring
                // finishes, or a new control epoch needs applying.
                parker.park_until(|| {
                    inputs.iter().any(|ring| ring.occupancy() > 0)
                        || inputs.iter().all(|ring| ring.is_finished())
                        || shared.published.load(Ordering::SeqCst) > applied
                });
                idle_spins = 0;
            }
            continue;
        };
        idle_spins = 0;
        let service_start = Instant::now();
        pipeline.process_batch_into(&packets, &mut verdicts);
        let service_ns = service_start.elapsed().as_nanos() as u64;
        let done_ns = shared.now_ns();
        telemetry.burst_ns.record(service_ns);
        for (packet, verdict) in packets.iter().zip(verdicts.iter()) {
            let sojourn_ns = done_ns.saturating_sub(packet.timestamp_ns);
            telemetry.packet_ns.record(sojourn_ns);
            telemetry.record_verdict(verdict, sojourn_ns);
        }
        // Verdict egress: hand every processed packet to the installed sink
        // *before* the progress-board update, so a flush barrier returning
        // implies every packet it covers has been transmitted.
        let version = shared.egress_version.load(Ordering::SeqCst);
        if version != egress_seen {
            egress_seen = version;
            egress = shared.egress.lock().expect("egress lock poisoned").clone();
        }
        if let Some(sink) = &egress {
            for (packet, verdict) in packets.iter().zip(verdicts.iter()) {
                sink.transmit(packet, verdict);
            }
        }
        let forwarded = verdicts.iter().filter(|v| v.is_forwarded()).count() as u64;
        let total = packets.len() as u64;
        let mut progress = shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.shards[shard_index];
        slot.bursts_done += 1;
        slot.stats.bursts += 1;
        slot.stats.packets += total;
        slot.stats.forwarded += forwarded;
        slot.stats.dropped += total - forwarded;
        drop(progress);
        shared.cv.notify_all();
    }
    // Epochs published after the final burst must still be acknowledged so a
    // concurrent `wait_for_epoch` cannot hang across shutdown.
    let _ = apply_pending(
        shard_index,
        &mut pipeline,
        &shared,
        &mut applied,
        &telemetry,
        &inputs,
    );
}

/// Marks a dispatcher as exited (and records the shard that failed it, if
/// any) when the thread returns or panics.
struct DispatcherExitGuard {
    shared: Arc<Shared>,
    dispatcher_index: usize,
    failed_shard: Option<usize>,
}

impl Drop for DispatcherExitGuard {
    fn drop(&mut self) {
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        let slot = &mut progress.dispatchers[self.dispatcher_index];
        slot.exited = true;
        slot.failed_shard = self.failed_shard;
        drop(progress);
        self.shared.cv.notify_all();
    }
}

/// The dispatcher thread body: pop a chunk of ingress packets from this
/// dispatcher's input ring, Toeplitz-steer every packet into per-shard
/// scratch, and push *full* bursts onto this dispatcher's row of shard
/// rings — ring synchronisation once per (dispatcher, shard, burst).
/// Partial bursts are flushed whenever the input ring runs dry: that is the
/// dispatcher's quiesce point, after which its `packets_dispatched` equals
/// everything it ever received, which is exactly what the control plane's
/// flush barrier waits for before publishing an epoch.
pub(crate) fn run_dispatcher(
    dispatcher_index: usize,
    mut steerer: Steerer,
    input: Consumer<Burst>,
    mut outputs: Vec<Producer<Burst>>,
    burst_size: usize,
    shared: Arc<Shared>,
) {
    let mut exit_guard = DispatcherExitGuard {
        shared: Arc::clone(&shared),
        dispatcher_index,
        failed_shard: None,
    };
    // One accounting site for every burst handoff: takes the shard's scratch
    // and pushes it, bumping the dispatch tallies on success. Returns false
    // when the shard's ring has closed.
    struct DispatchState {
        scatter: Vec<Vec<Packet>>,
        packets: u64,
        bursts: u64,
        per_shard: Vec<u64>,
    }
    impl DispatchState {
        fn push_scratch(
            &mut self,
            outputs: &[Producer<Burst>],
            shard: usize,
            burst_size: usize,
        ) -> bool {
            let burst = std::mem::replace(&mut self.scatter[shard], Vec::with_capacity(burst_size));
            let packets = burst.len() as u64;
            if outputs[shard].push(burst).is_err() {
                return false;
            }
            self.packets += packets;
            self.bursts += 1;
            self.per_shard[shard] += packets;
            true
        }

        fn advertise(&self, shared: &Shared, dispatcher_index: usize) {
            let mut progress = shared.progress.lock().expect("progress lock poisoned");
            let slot = &mut progress.dispatchers[dispatcher_index];
            slot.packets_dispatched = self.packets;
            slot.bursts_dispatched = self.bursts;
            slot.per_shard.clear();
            slot.per_shard.extend_from_slice(&self.per_shard);
            drop(progress);
            shared.cv.notify_all();
        }
    }
    let mut state = DispatchState {
        scatter: (0..outputs.len())
            .map(|_| Vec::with_capacity(burst_size))
            .collect(),
        packets: 0,
        bursts: 0,
        per_shard: vec![0u64; outputs.len()],
    };
    // Dispatchers are only spawned at construction time, so version 0 is
    // always the state this thread's steerer and ring row were built from.
    let mut seen_version = 0u64;
    'run: while let Some(chunk) = input.pop() {
        // Resharding handshake: before steering anything, adopt any staged
        // steering/topology change (new RETA + pin set, grown or shrunk ring
        // row). Updates are staged only while the plane is quiesced, so this
        // never races a partial burst; the cost on the hot path is one
        // relaxed-ish atomic load per chunk.
        let version = shared.steering_version.load(Ordering::SeqCst);
        if version != seen_version {
            seen_version = version;
            let staged = shared
                .dispatcher_updates
                .lock()
                .expect("dispatcher update lock poisoned")[dispatcher_index]
                .take();
            if let Some(update) = staged {
                steerer = update.steerer;
                // Dropping the truncated producers closes the retired
                // shards' rings; their workers are already gone.
                outputs.truncate(update.keep);
                outputs.extend(update.append);
                state.scatter.truncate(update.keep);
                state
                    .scatter
                    .resize_with(outputs.len(), || Vec::with_capacity(burst_size));
                // Per-shard tallies follow the ring row: surviving shards
                // keep their cumulative counts (their progress slots
                // survived too), fresh shards start at zero.
                state.per_shard.truncate(update.keep);
                state.per_shard.resize(outputs.len(), 0);
            }
        }
        for packet in chunk {
            let shard = steerer.shard_for(&packet);
            state.scatter[shard].push(packet);
            if state.scatter[shard].len() >= burst_size
                && !state.push_scratch(&outputs, shard, burst_size)
            {
                exit_guard.failed_shard = Some(shard);
                break 'run;
            }
        }
        // Quiesce point: no further chunk is immediately available, so
        // flush partial bursts — every packet received so far is now in
        // flight — and advertise progress for the flush barrier.
        if input.occupancy() == 0 {
            for shard in 0..outputs.len() {
                if !state.scatter[shard].is_empty()
                    && !state.push_scratch(&outputs, shard, burst_size)
                {
                    exit_guard.failed_shard = Some(shard);
                    break 'run;
                }
            }
        }
        state.advertise(&shared, dispatcher_index);
    }
    // Input closed (or a shard ring failed): flush whatever scratch remains
    // toward still-open rings, then let the producers drop — which closes
    // this dispatcher's row of shard rings.
    for shard in 0..outputs.len() {
        if !state.scatter[shard].is_empty() {
            // Best effort on the way out: a closed ring here just means the
            // shard is already gone too.
            let _ = state.push_scratch(&outputs, shard, burst_size);
        }
    }
    state.advertise(&shared, dispatcher_index);
}
